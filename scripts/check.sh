#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, and lints.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
