#!/usr/bin/env bash
# Full verification gate: formatting, release build, the workspace linter,
# the plan-quality gate, clippy, and the whole test suite. Run from
# anywhere; operates on the repository root. Each step names itself so a
# failure is attributable at a glance.
#
# All cargo invocations run --locked: the container is offline and the
# lockfile is the only dependency truth, so a drifted Cargo.toml fails
# loudly here instead of mid-build.
set -uo pipefail
cd "$(dirname "$0")/.."

failed=0
mkdir -p target

step() {
    local name="$1"
    shift
    echo "==> ${name}"
    if ! "$@"; then
        echo "FAILED: ${name}" >&2
        failed=1
    fi
}

planlint() {
    if ! cargo run -q --locked -p planlint -- --out target/planlint.json; then
        echo "planlint: report written to target/planlint.json" >&2
        return 1
    fi
}

# Concurrency-readiness gate: Send/Sync reachability against the committed
# CONC_ALLOWLIST.txt (which may only shrink), lock-order cycle detection,
# and atomics discipline. See DESIGN.md §15.
conclint() {
    if ! cargo run -q --locked -p lint -- --conc --out target/conclint.json; then
        echo "conclint: report written to target/conclint.json" >&2
        return 1
    fi
}

sqllint() {
    if ! cargo run -q --locked -p lint -- --sql --out target/sqllint.json; then
        echo "sqllint: report written to target/sqllint.json" >&2
        return 1
    fi
}

bench_driver() {
    cargo run -q --locked --release -p xmlrel-bench -- \
        --out target/BENCH.json --trace target/trace.json \
        --metrics target/metrics.txt --scale 0.1 \
        --access-log target/access.log --stats target/stats.json
}

# Bench-trajectory gate: the fresh run must not regress against the
# committed baseline. Thresholds are loose (5x, 20ms) because the baseline
# was recorded on different hardware; a real regression (quadratic join,
# lost index) blows past both, machine noise does not. The same step
# checks the fresh run's throughput-under-contention rows: aggregate qps
# at 8 client threads must reach min(3.0, 0.8 x cores) times the
# single-thread qps, so a reintroduced serialization point in the
# concurrent serving path fails here on any hardware.
bench_trajectory() {
    cargo run -q --locked --release -p xmlrel-obs-report -- \
        --threshold 5 --min-us 20000 BENCH_BASELINE.json target/BENCH.json
}

step "cargo fmt --check"  cargo fmt --all --check
step "release build"      cargo build --release --locked
step "xmlrel-lint"        cargo run -q --locked -p lint -- --out target/lint.json
step "conclint"           conclint
step "sqllint"            sqllint
step "planlint"           planlint
step "bench driver"       bench_driver
step "bench trajectory"   bench_trajectory
step "clippy"             cargo clippy --workspace --all-targets --locked -- -D warnings
step "tests"              cargo test -q --workspace --locked

if [ "${failed}" -ne 0 ]; then
    echo "check.sh: one or more steps failed" >&2
    exit 1
fi
echo "check.sh: all steps passed"
