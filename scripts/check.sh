#!/usr/bin/env bash
# Full verification gate: formatting, release build, the workspace linter,
# clippy, and the whole test suite. Run from anywhere; operates on the
# repository root. Each step names itself so a failure is attributable at
# a glance.
set -uo pipefail
cd "$(dirname "$0")/.."

failed=0

step() {
    local name="$1"
    shift
    echo "==> ${name}"
    if ! "$@"; then
        echo "FAILED: ${name}" >&2
        failed=1
    fi
}

step "cargo fmt --check"  cargo fmt --all --check
step "release build"      cargo build --release
step "xmlrel-lint"        cargo run -q -p lint
step "clippy"             cargo clippy --workspace --all-targets -- -D warnings
step "tests"              cargo test -q --workspace

if [ "${failed}" -ne 0 ]; then
    echo "check.sh: one or more steps failed" >&2
    exit 1
fi
echo "check.sh: all steps passed"
