//! FLWOR demonstration: the tutorial's running query shapes over the
//! bibliography corpus, including id-reference joins and constructors.
//!
//! ```sh
//! cargo run --example xquery_demo
//! ```

use xmlrel::shredder::IntervalScheme;
use xmlrel::xmlgen::auction::{generate_xml, AuctionConfig};
use xmlrel::{Scheme, XmlStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open()?;
    let xml = generate_xml(&AuctionConfig::at_scale(0.1));
    store.load_str("auction", &xml)?;

    // The tutorial's slide-30 FLWOR, adapted to the auction corpus:
    // selection + order by + value return.
    println!("-- seniors, ordered by name --");
    let q = "for $p in /site/people/person \
             where $p/profile/age > 60 \
             order by $p/name \
             return $p/name/text()";
    for item in store.request(q).run()?.items.iter().take(8) {
        println!("  {item}");
    }

    // Join on an id reference (seller -> person), with a constructor.
    println!("\n-- auctions sold by people over 50 --");
    let q = "for $a in /site/open_auctions/open_auction, \
                 $p in /site/people/person \
             where $a/seller/@person = $p/@id and $p/profile/age > 50 \
             return <sale>{$p/name/text()}</sale>";
    let sales = store.request(q).run()?;
    println!("  {} sales; first: {:?}", sales.len(), sales.items.first());

    // Existential predicate + contains().
    println!("\n-- items whose description mentions 'gold' --");
    let q = "/site/regions/region/item[contains(description, 'gold')]/name/text()";
    let items = store.request(q).run()?;
    println!("  {} items", items.len());
    for item in items.items.iter().take(5) {
        println!("  {item}");
    }

    // Positional access.
    println!("\n-- the second item of each region --");
    for item in store
        .request("/site/regions/region/item[2]/name/text()")
        .run()?
        .items
    {
        println!("  {item}");
    }

    // Show the SQL for the join query (the tutorial's point: FLWOR joins
    // become relational joins).
    let t = store
        .request(
            "for $a in /site/open_auctions/open_auction, $p in /site/people/person \
         where $a/seller/@person = $p/@id return $p/name/text()",
        )
        .translated()?;
    println!("\ntranslated join SQL:\n  {}", t.sql);
    Ok(())
}
