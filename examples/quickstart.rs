//! Quickstart: store a document, query it, look at the generated SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xmlrel::{Scheme, XmlStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a mapping scheme. The interval (pre/size/level) encoding is
    //    the best general-purpose choice: native descendant axis, document
    //    order for free.
    let mut store = XmlStore::new(Scheme::Interval(xmlrel::shredder::IntervalScheme::new()))?;

    // 2. Shred a document into relational tables.
    let bib = r#"<bib>
        <book year="1994">
            <title>TCP/IP Illustrated</title>
            <author><lastname>Stevens</lastname></author>
            <price>65</price>
        </book>
        <book year="2000">
            <title>Data on the Web</title>
            <author><firstname>Serge</firstname><lastname>Abiteboul</lastname></author>
            <price>39</price>
        </book>
    </bib>"#;
    let (_doc_id, stats) = store.load_str("bib.xml", bib)?;
    println!(
        "shredded: {} elements, {} attributes, {} text nodes -> {} rows",
        stats.elements, stats.attributes, stats.texts, stats.rows
    );

    // 3. Query with XPath. The store translates to SQL, runs it on the
    //    embedded engine, and publishes results as XML / values.
    let titles = store.query("/bib/book[@year > 1995]/title/text()")?;
    println!("\nrecent titles: {:?}", titles.items);

    let authors = store.query("//author")?;
    println!("\nauthors as fragments:");
    for a in &authors.items {
        println!("  {a}");
    }

    // 4. FLWOR works too.
    let flwor = store.query(
        "for $b in /bib/book where $b/price < 50 \
         order by $b/title return <cheap>{$b/title/text()}</cheap>",
    )?;
    println!("\ncheap books: {:?}", flwor.items);

    // 5. Inspect the SQL the translator generated.
    let t = store.translate("/bib/book[@year > 1995]/title/text()")?;
    println!("\ngenerated SQL:\n  {}", t.sql);

    // 6. Round-trip: the stored relations reproduce the document exactly.
    let rebuilt = store.reconstruct("bib.xml")?;
    println!("\nreconstructed {} bytes of XML", rebuilt.len());
    Ok(())
}
