//! Quickstart: store a document, query it, look at the generated SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xmlrel::{Scheme, XmlStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a mapping scheme. The interval (pre/size/level) encoding is
    //    the best general-purpose choice: native descendant axis, document
    //    order for free.
    let mut store =
        XmlStore::builder(Scheme::Interval(xmlrel::shredder::IntervalScheme::new())).open()?;

    // 2. Shred a document into relational tables.
    let bib = r#"<bib>
        <book year="1994">
            <title>TCP/IP Illustrated</title>
            <author><lastname>Stevens</lastname></author>
            <price>65</price>
        </book>
        <book year="2000">
            <title>Data on the Web</title>
            <author><firstname>Serge</firstname><lastname>Abiteboul</lastname></author>
            <price>39</price>
        </book>
    </bib>"#;
    let (_doc_id, stats) = store.load_str("bib.xml", bib)?;
    println!(
        "shredded: {} elements, {} attributes, {} text nodes -> {} rows",
        stats.elements, stats.attributes, stats.texts, stats.rows
    );

    // 3. Query with XPath. The store translates to SQL, runs it on the
    //    embedded engine, and publishes results as XML / values.
    let titles = store
        .request("/bib/book[@year > 1995]/title/text()")
        .run()?;
    println!("\nrecent titles: {:?}", titles.items);

    let authors = store.request("//author").run()?;
    println!("\nauthors as fragments:");
    for a in &authors.items {
        println!("  {a}");
    }

    // 4. FLWOR works too.
    let flwor = store
        .request(
            "for $b in /bib/book where $b/price < 50 \
         order by $b/title return <cheap>{$b/title/text()}</cheap>",
        )
        .run()?;
    println!("\ncheap books: {:?}", flwor.items);

    // 5. Inspect the SQL the translator generated.
    let t = store
        .request("/bib/book[@year > 1995]/title/text()")
        .translated()?;
    println!("\ngenerated SQL:\n  {}", t.sql);

    // 6. Round-trip: the stored relations reproduce the document exactly.
    let rebuilt = store.reconstruct("bib.xml")?;
    println!("\nreconstructed {} bytes of XML", rebuilt.len());
    Ok(())
}
