//! Update demonstration: subtree inserts and deletes under the two order
//! encodings where they differ (interval renumbering vs Dewey locality).
//!
//! ```sh
//! cargo run --release --example updates
//! ```

use xmlrel::shredder::{DeweyScheme, IntervalScheme};
use xmlrel::xmlgen::auction::{generate, AuctionConfig};
use xmlrel::xmlpar::Document;
use xmlrel::{Scheme, XmlStore};
use xmlrel_core::update::{
    dewey_delete_subtree, dewey_insert_child, interval_delete_subtree, interval_insert_child,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = generate(&AuctionConfig::at_scale(0.2));
    let fragment = Document::parse(
        r#"<person id="late-arrival"><name>Late Arrival</name><emailaddress>late@x</emailaddress></person>"#,
    )?;

    // ---- interval scheme ---------------------------------------------------
    let mut ivl = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open()?;
    let (doc_id, _) = ivl.load_document("auction", &doc)?;

    // Find /site/people's pre number via a translated query.
    let rows = ivl.request("/site/people").rows()?;
    let people_pre = rows[0][1].as_int().expect("pre");

    let before = ivl.request("/site/people/person").count()?;
    let stats = ivl.with_db_mut(|db| interval_insert_child(db, doc_id, people_pre, &fragment))?;
    let after = ivl.request("/site/people/person").count()?;
    println!("interval insert:");
    println!("  persons {before} -> {after}");
    println!(
        "  rows inserted: {}, pre-existing rows renumbered: {}",
        stats.rows_inserted, stats.rows_renumbered
    );

    // The new person is queryable immediately.
    let hit = ivl
        .request("/site/people/person[@id = 'late-arrival']/name/text()")
        .run()?;
    println!("  lookup: {:?}", hit.items);

    // And deletable; the document stays consistent.
    let rows = ivl
        .request("/site/people/person[@id = 'late-arrival']")
        .rows()?;
    let victim_pre = rows[0][1].as_int().expect("pre");
    let dstats = ivl.with_db_mut(|db| interval_delete_subtree(db, doc_id, victim_pre))?;
    println!(
        "  delete: {} rows removed, {} renumbered; persons back to {}",
        dstats.rows_deleted,
        dstats.rows_renumbered,
        ivl.request("/site/people/person").count()?
    );

    // ---- dewey scheme --------------------------------------------------------
    let mut dwy = XmlStore::builder(Scheme::Dewey(DeweyScheme::new())).open()?;
    let (doc_id, _) = dwy.load_document("auction", &doc)?;
    let rows = dwy.request("/site/people").rows()?;
    let people_key = rows[0][1].as_text().expect("key").to_string();

    let stats = dwy.with_db_mut(|db| dewey_insert_child(db, doc_id, &people_key, &fragment))?;
    println!("\ndewey insert:");
    println!(
        "  rows inserted: {}, pre-existing rows renumbered: {}  <- locality",
        stats.rows_inserted, stats.rows_renumbered
    );
    let hit = dwy
        .request("/site/people/person[@id = 'late-arrival']/name/text()")
        .run()?;
    println!("  lookup: {:?}", hit.items);

    let rows = dwy
        .request("/site/people/person[@id = 'late-arrival']")
        .rows()?;
    let victim_key = rows[0][1].as_text().expect("key").to_string();
    let dstats = dwy.with_db_mut(|db| dewey_delete_subtree(db, doc_id, &victim_key))?;
    println!(
        "  delete: {} rows removed, {} renumbered",
        dstats.rows_deleted, dstats.rows_renumbered
    );

    // Both stores reconstruct the original document exactly after the
    // insert+delete round trip.
    let original = xmlrel::xmlpar::serialize::to_string(&doc);
    assert_eq!(ivl.reconstruct("auction")?, original);
    assert_eq!(dwy.reconstruct("auction")?, original);
    println!("\nboth schemes reconstruct the original document exactly after the round trip");
    Ok(())
}
