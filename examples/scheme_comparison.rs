//! Scheme comparison on the auction corpus: storage, join counts, and
//! answer agreement across all six mapping schemes.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use xmlrel::xmlgen::auction::{generate, AuctionConfig, AUCTION_DTD};
use xmlrel::xmlgen::AUCTION_QUERIES;
use xmlrel::{all_schemes, XmlStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AuctionConfig::at_scale(0.2);
    let doc = generate(&cfg);
    println!(
        "corpus: auction scale {} ({} elements)\n",
        cfg.scale,
        doc.element_count()
    );

    let mut stores: Vec<XmlStore> = Vec::new();
    for scheme in all_schemes(AUCTION_DTD)? {
        let mut store = XmlStore::builder(scheme).open()?;
        store.load_document("auction", &doc)?;
        stores.push(store);
    }

    // Storage comparison (experiment E1's shape).
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12}",
        "scheme", "tables", "rows", "heap B", "index B"
    );
    for store in &stores {
        let st = store.storage_stats();
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>12}",
            store.scheme().name(),
            st.tables,
            st.rows,
            st.heap_bytes,
            st.index_bytes
        );
    }

    // Join counts per query (experiment E6's shape).
    println!("\njoins in translated SQL:");
    print!("{:<6}", "query");
    for store in &stores {
        print!(" {:>10}", store.scheme().name());
    }
    println!();
    for q in AUCTION_QUERIES {
        print!("{:<6}", q.id);
        for store in &stores {
            match store.join_count(q.text) {
                Ok(n) => print!(" {n:>10}"),
                Err(_) => print!(" {:>10}", "-"),
            }
        }
        println!();
    }

    // Agreement: every scheme that can answer a query returns the same
    // number of results.
    println!("\nresult counts (agreement check):");
    for q in AUCTION_QUERIES {
        let mut counts = Vec::new();
        for store in &mut stores {
            match store.request(q.text).count() {
                Ok(n) => counts.push((store.scheme().name(), n)),
                Err(_) => counts.push((store.scheme().name(), usize::MAX)),
            }
        }
        let answered: Vec<usize> = counts
            .iter()
            .map(|(_, n)| *n)
            .filter(|&n| n != usize::MAX)
            .collect();
        let agree = answered.windows(2).all(|w| w[0] == w[1]);
        println!(
            "{:<6} {:?} {}",
            q.id,
            counts
                .iter()
                .map(|(s, n)| if *n == usize::MAX {
                    format!("{s}:-")
                } else {
                    format!("{s}:{n}")
                })
                .collect::<Vec<_>>(),
            if agree { "OK" } else { "MISMATCH" }
        );
    }
    Ok(())
}
