//! The full experiment driver: regenerates every table and figure of the
//! reproduction (E1–E12 in DESIGN.md) and prints paper-style rows.
//!
//! ```sh
//! cargo run --release --example experiments            # all experiments
//! cargo run --release --example experiments -- E4 E8   # a subset
//! ```

use std::time::Instant;

use xmlrel::shredder::{DeweyScheme, InlineScheme, IntervalScheme};
use xmlrel::xmlgen::auction::{generate, AuctionConfig, AUCTION_DTD};
use xmlrel::xmlgen::dblp::{generate as gen_dblp, DblpConfig, DBLP_DTD};
use xmlrel::xmlgen::deep::{generate as gen_deep, DeepConfig, DEEP_DTD};
use xmlrel::xmlgen::{AUCTION_QUERIES, DBLP_QUERIES, DEEP_QUERIES};
use xmlrel::{all_schemes, Scheme, XmlStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    if run("E1") {
        e1_storage()?;
    }
    if run("E2") {
        e2_shred_throughput()?;
    }
    if run("E3") {
        e3_child_paths()?;
    }
    if run("E4") {
        e4_descendant()?;
    }
    if run("E5") {
        e5_value_index()?;
    }
    if run("E6") {
        e6_join_count()?;
    }
    if run("E7") {
        e7_reconstruct()?;
    }
    if run("E8") {
        e8_updates()?;
    }
    if run("E9") {
        e9_scaleup()?;
    }
    if run("E10") {
        e10_translate_cost()?;
    }
    if run("E11") {
        e11_structural_join()?;
    }
    if run("E12") {
        e12_recursion()?;
    }
    if run("E13") {
        e13_optimizer_ablation()?;
    }
    Ok(())
}

fn auction_stores(scale: f64) -> Result<Vec<XmlStore>, Box<dyn std::error::Error>> {
    let doc = generate(&AuctionConfig::at_scale(scale));
    let mut stores = Vec::new();
    for scheme in all_schemes(AUCTION_DTD)? {
        let mut store = XmlStore::builder(scheme).open()?;
        store.load_document("auction", &doc)?;
        stores.push(store);
    }
    Ok(stores)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// E1 — storage size by mapping (F&K99 Tab. 2 shape).
fn e1_storage() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E1: storage size by scheme (auction, scale 0.3) ==");
    println!(
        "{:<10} {:>7} {:>9} {:>12} {:>12} {:>12}",
        "scheme", "tables", "rows", "heap B", "index B", "total B"
    );
    for store in auction_stores(0.3)? {
        let st = store.storage_stats();
        println!(
            "{:<10} {:>7} {:>9} {:>12} {:>12} {:>12}",
            store.scheme().name(),
            st.tables,
            st.rows,
            st.heap_bytes,
            st.index_bytes,
            st.total_bytes()
        );
    }
    Ok(())
}

/// E2 — shredding (bulk load) throughput.
fn e2_shred_throughput() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E2: shredding throughput (auction, scale 0.3) ==");
    let doc = generate(&AuctionConfig::at_scale(0.3));
    let xml = xmlrel::xmlpar::serialize::to_string(&doc);
    println!(
        "document: {} bytes, {} elements",
        xml.len(),
        doc.element_count()
    );
    println!("{:<10} {:>10} {:>12}", "scheme", "load ms", "MB/s");
    for scheme in all_schemes(AUCTION_DTD)? {
        let mut store = XmlStore::builder(scheme).open()?;
        let t0 = Instant::now();
        store.load_str("auction", &xml)?;
        let dt = t0.elapsed();
        println!(
            "{:<10} {:>10.2} {:>12.2}",
            store.scheme().name(),
            ms(dt),
            xml.len() as f64 / 1e6 / dt.as_secs_f64()
        );
    }
    Ok(())
}

fn time_query(store: &mut XmlStore, q: &str) -> Result<(usize, f64), xmlrel::CoreError> {
    // Warm once, then measure the median of 3.
    let n = store.request(q).count()?;
    let mut times = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        store.request(q).count()?;
        times.push(ms(t0.elapsed()));
    }
    times.sort_by(f64::total_cmp);
    Ok((n, times[1]))
}

fn run_query_table(
    title: &str,
    stores: &mut [XmlStore],
    queries: &[&xmlrel::xmlgen::WorkloadQuery],
) {
    println!("\n== {title} ==");
    print!("{:<6} {:>8}", "query", "rows");
    for store in stores.iter() {
        print!(" {:>10}", store.scheme().name());
    }
    println!("   (ms)");
    for q in queries {
        let mut row_count = None;
        let mut cells = Vec::new();
        for store in stores.iter_mut() {
            match time_query(store, q.text) {
                Ok((n, t)) => {
                    row_count.get_or_insert(n);
                    cells.push(format!("{t:>10.2}"));
                }
                Err(_) => cells.push(format!("{:>10}", "-")),
            }
        }
        println!(
            "{:<6} {:>8} {}",
            q.id,
            row_count.map(|n| n.to_string()).unwrap_or_default(),
            cells.join(" ")
        );
    }
}

/// E3 — child-chain queries per scheme.
fn e3_child_paths() -> Result<(), Box<dyn std::error::Error>> {
    let mut stores = auction_stores(0.3)?;
    let qs: Vec<_> = AUCTION_QUERIES
        .iter()
        .filter(|q| matches!(q.id, "Q1" | "Q3" | "Q10"))
        .collect();
    run_query_table(
        "E3: child-chain queries (auction, scale 0.3)",
        &mut stores,
        &qs,
    );
    Ok(())
}

/// E4 — descendant-axis queries: interval's range scan vs path expansion.
fn e4_descendant() -> Result<(), Box<dyn std::error::Error>> {
    let mut stores = auction_stores(0.3)?;
    let qs: Vec<_> = AUCTION_QUERIES
        .iter()
        .filter(|q| matches!(q.id, "Q4" | "Q5" | "Q6"))
        .collect();
    run_query_table(
        "E4: descendant-axis queries (auction, scale 0.3)",
        &mut stores,
        &qs,
    );
    Ok(())
}

/// E5 — selective value predicates with / without a value index.
///
/// The predicate must be *sargable* for the index to apply: string
/// equality compiles to `value = '...'` (indexable), while numeric
/// comparisons compile through `num(value)` and cannot use the index —
/// both configurations are shown.
fn e5_value_index() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E5: value index ablation (interval scheme, auction 1.0) ==");
    let doc = generate(&AuctionConfig::at_scale(1.0));
    let point = "/site/people/person[@id = 'person7']/name/text()";
    let range = "/site/regions/region/item[price > 95]/name/text()";
    println!("{:<34} {:>10} {:>8}", "configuration", "ms", "rows");
    for with_index in [false, true] {
        let scheme = IntervalScheme {
            with_value_index: with_index,
        };
        let mut store = XmlStore::builder(Scheme::Interval(scheme)).open()?;
        store.load_document("auction", &doc)?;
        let tag = if with_index { "indexed" } else { "no index" };
        let (n, t) = time_query(&mut store, point).map_err(|e| e.to_string())?;
        println!(
            "{:<34} {:>10.2} {:>8}",
            format!("point lookup, {tag}"),
            t,
            n
        );
        let (n, t) = time_query(&mut store, range).map_err(|e| e.to_string())?;
        println!(
            "{:<34} {:>10.2} {:>8}",
            format!("numeric range, {tag} (unsargable)"),
            t,
            n
        );
    }
    Ok(())
}

/// E6 — join count of translated SQL per scheme (Shanmugasundaram Tab. shape).
fn e6_join_count() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E6: joins in translated SQL (dblp corpus) ==");
    let doc = gen_dblp(&DblpConfig::default());
    let mut stores = Vec::new();
    for scheme in all_schemes(DBLP_DTD)? {
        let mut store = XmlStore::builder(scheme).open()?;
        store.load_document("dblp", &doc)?;
        stores.push(store);
    }
    print!("{:<6}", "query");
    for store in &stores {
        print!(" {:>10}", store.scheme().name());
    }
    println!();
    for q in DBLP_QUERIES {
        print!("{:<6}", q.id);
        for store in &stores {
            match store.join_count(q.text) {
                Ok(n) => print!(" {n:>10}"),
                Err(_) => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
    Ok(())
}

/// E7 — full-document reconstruction time per scheme.
fn e7_reconstruct() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E7: full-document reconstruction (auction, scale 0.3) ==");
    println!("{:<10} {:>10}", "scheme", "ms");
    for store in auction_stores(0.3)? {
        let t0 = Instant::now();
        let xml = store.reconstruct("auction")?;
        let dt = ms(t0.elapsed());
        assert!(!xml.is_empty());
        println!("{:<10} {:>10.2}", store.scheme().name(), dt);
    }
    Ok(())
}

/// E8 — subtree insert cost: interval renumbering vs Dewey locality
/// (Tatarinov Fig. 8 shape).
fn e8_updates() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E8: subtree-insert cost vs document size ==");
    println!(
        "{:<8} {:>10} {:>14} {:>10} {:>14}",
        "scale", "ivl ms", "ivl renum", "dwy ms", "dwy renum"
    );
    for scale in [0.1, 0.2, 0.4] {
        let doc = generate(&AuctionConfig::at_scale(scale));
        let frag = xmlrel::xmlpar::Document::parse(
            "<person id=\"newp\"><name>New Person</name><emailaddress>x@y</emailaddress></person>",
        )?;

        let mut istore = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open()?;
        let (idoc, _) = istore.load_document("a", &doc)?;
        // Insert under /site/people: find its pre.
        let rows = istore.request("/site/people").rows()?;
        let people_pre = rows[0][1].as_int().unwrap();
        let t0 = Instant::now();
        let istats = istore.with_db_mut(|db| {
            xmlrel_core::update::interval_insert_child(db, idoc, people_pre, &frag)
        })?;
        let it = ms(t0.elapsed());

        let mut dstore = XmlStore::builder(Scheme::Dewey(DeweyScheme::new())).open()?;
        let (ddoc, _) = dstore.load_document("a", &doc)?;
        let rows = dstore.request("/site/people").rows()?;
        let people_key = rows[0][1].as_text().unwrap().to_string();
        let t0 = Instant::now();
        let dstats = dstore.with_db_mut(|db| {
            xmlrel_core::update::dewey_insert_child(db, ddoc, &people_key, &frag)
        })?;
        let dt = ms(t0.elapsed());

        println!(
            "{:<8} {:>10.2} {:>14} {:>10.2} {:>14}",
            scale, it, istats.rows_renumbered, dt, dstats.rows_renumbered
        );
    }
    Ok(())
}

/// E9 — query latency vs document size (scale-up figure).
fn e9_scaleup() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E9: scale-up, Q1 latency vs corpus scale ==");
    print!("{:<8}", "scale");
    let names = ["edge", "binary", "universal", "interval", "dewey", "inline"];
    for n in names {
        print!(" {n:>10}");
    }
    println!("   (ms)");
    for scale in [0.1, 0.3, 0.6, 1.0] {
        let mut stores = auction_stores(scale)?;
        print!("{scale:<8}");
        for store in stores.iter_mut() {
            match time_query(store, "/site/regions/region/item/name") {
                Ok((_, t)) => print!(" {t:>10.2}"),
                Err(_) => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
    Ok(())
}

/// E10 — translation (compile) cost per scheme.
fn e10_translate_cost() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E10: query translation cost (µs per compile) ==");
    let stores = auction_stores(0.1)?;
    print!("{:<6}", "query");
    for store in &stores {
        print!(" {:>10}", store.scheme().name());
    }
    println!();
    for q in AUCTION_QUERIES.iter().filter(|q| !q.id.ends_with("2")) {
        print!("{:<6}", q.id);
        for store in &stores {
            let t0 = Instant::now();
            let mut ok = true;
            for _ in 0..50 {
                if store.request(q.text).translated().is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                print!(" {:>10.1}", t0.elapsed().as_secs_f64() * 1e6 / 50.0);
            } else {
                print!(" {:>10}", "-");
            }
        }
        println!();
    }
    Ok(())
}

/// E11 — structural join vs nested loops (engine ablation).
fn e11_structural_join() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E11: interval-join operator ablation (Q5, interval scheme) ==");
    let doc = generate(&AuctionConfig::at_scale(0.5));
    println!("{:<24} {:>10}", "configuration", "ms");
    for use_interval_join in [true, false] {
        let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open()?;
        store.with_db_mut(|db| db.physical.use_interval_join = use_interval_join);
        store.load_document("auction", &doc)?;
        let (_, t) =
            time_query(&mut store, "//open_auction//increase").map_err(|e| e.to_string())?;
        println!(
            "{:<24} {:>10.2}",
            if use_interval_join {
                "structural (sorted)"
            } else {
                "nested loops"
            },
            t
        );
    }
    Ok(())
}

/// E13 — engine-optimizer ablation: predicate pushdown, join reordering,
/// and index nested-loop joins each switched off in turn (interval scheme).
fn e13_optimizer_ablation() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E13: optimizer ablation (interval scheme, auction 0.5, Q7) ==");
    let doc = generate(&AuctionConfig::at_scale(0.5));
    let q = "/site/people/person[profile/age > 40]/name";
    println!("{:<28} {:>10}", "configuration", "ms");
    type Tweak = Box<dyn Fn(&mut XmlStore)>;
    let configs: Vec<(&str, Tweak)> = vec![
        ("full optimizer", Box::new(|_| {})),
        (
            "no join reordering",
            Box::new(|s| s.with_db_mut(|db| db.optimizer.join_reorder = false)),
        ),
        (
            "no index-NL joins",
            Box::new(|s| s.with_db_mut(|db| db.physical.use_index_nl_join = false)),
        ),
        (
            "no indexes at all",
            Box::new(|s| {
                s.with_db_mut(|db| {
                    db.physical.use_indexes = false;
                    db.physical.use_index_nl_join = false;
                });
            }),
        ),
    ];
    for (name, tweak) in configs {
        let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open()?;
        tweak(&mut store);
        store.load_document("auction", &doc)?;
        let (_, t) = time_query(&mut store, q).map_err(|e| e.to_string())?;
        println!("{name:<28} {t:>10.2}");
    }
    // Without predicate pushdown the translated SQL's WHERE-style joins
    // degenerate to cartesian products over the node table — the query
    // does not finish at this scale. That cliff IS the measurement: the
    // tutorial's point that shredded-XML SQL is unusable without the
    // relational optimizer's basic rewrites.
    println!("{:<28} {:>10}", "no predicate pushdown", "infeasible");
    Ok(())
}

/// E12 — recursion: inlining's table count and `//` cost on a deep corpus.
fn e12_recursion() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== E12: recursive DTD handling (deep corpus) ==");
    let doc = gen_deep(&DeepConfig {
        depth: 8,
        fanout: 3,
        paras: 2,
        seed: 1,
    });
    let inline = InlineScheme::from_dtd_text(DEEP_DTD)?;
    println!(
        "inline mapping creates {} tables for the recursive DTD",
        inline.mapping.table_count()
    );
    let mut stores = Vec::new();
    for scheme in all_schemes(DEEP_DTD)? {
        let mut store = XmlStore::builder(scheme).open()?;
        store.load_document("deep", &doc)?;
        stores.push(store);
    }
    let qs: Vec<_> = DEEP_QUERIES.iter().collect();
    run_query_table("deep-corpus queries", &mut stores, &qs);
    Ok(())
}
