//! Durability demo: write through the WAL, crash hard (no shutdown),
//! recover on reopen.
//!
//! ```sh
//! cargo run --example durability                    # in-process demo
//! cargo run --example durability -- write /tmp/d    # write, then abort()
//! cargo run --example durability -- read /tmp/d     # recover and print
//! ```

use xmlrel::reldb::Database;
use xmlrel::shredder::IntervalScheme;
use xmlrel::{Scheme, XmlStore};

const BIB: &str =
    r#"<bib><book year="1994"><title>TCP</title><author>Stevens</author></book></bib>"#;

fn write(dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::open(format!("{dir}/db"))?;
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")?;
    db.execute("INSERT INTO t VALUES (1, 'a')")?;
    db.checkpoint()?; // row 1 lives in the snapshot
    db.execute("INSERT INTO t VALUES (2, 'b')")?; // row 2 lives in the WAL

    let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .path(format!("{dir}/docs"))
        .open()?;
    store.load_str("bib", BIB)?;
    store.persist()?;

    println!("wrote 2 rows and 1 document under {dir}");
    Ok(())
}

fn read(dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::open(format!("{dir}/db"))?;
    let q = db.query("SELECT id, v FROM t ORDER BY id")?;
    println!("recovered {} rows: {:?}", q.rows.len(), q.rows);

    let store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .path(format!("{dir}/docs"))
        .open()?;
    println!("recovered document: {}", store.reconstruct("bib")?);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| "demo".into());
    match (mode.as_str(), args.next()) {
        ("write", Some(dir)) => {
            write(&dir)?;
            println!("aborting without shutdown — reopen recovers");
            std::process::abort();
        }
        ("read", Some(dir)) => read(&dir),
        ("demo", None) => {
            let dir = std::env::temp_dir().join("xmlrel-durability-demo");
            let _ = std::fs::remove_dir_all(&dir);
            let dir = dir.to_string_lossy().into_owned();
            write(&dir)?;
            println!("-- reopening --");
            read(&dir)?;
            std::fs::remove_dir_all(&dir)?;
            Ok(())
        }
        _ => {
            eprintln!("usage: durability [write DIR | read DIR]");
            std::process::exit(2);
        }
    }
}
