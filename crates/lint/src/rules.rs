//! Lint rules over the token stream produced by [`crate::lexer`].
//!
//! All rules apply to non-test library code only: tokens inside
//! `#[cfg(test)]` modules or `#[test]` functions are exempt, as are files
//! the walker classifies as test/bench/example sources.
//!
//! A violation on a line can be suppressed with a `// lint:allow(rule)`
//! comment either trailing the offending line or alone on the line above
//! it. A suppression must name the rule(s) it silences; a bare
//! `lint:allow` is itself a violation.

use crate::lexer::{Comment, Lexed, Tok, TokKind};
use std::collections::{HashMap, HashSet};

/// Every rule this linter knows about.
pub const RULES: &[&str] = &[
    "no-unwrap",
    "no-expect",
    "no-panic",
    "no-unreachable",
    "no-todo",
    "no-index",
    "no-len-truncate",
    "no-cost-truncate",
    "no-untraced-entrypoint",
    "no-unledgered-query",
    "no-undeadlined-loop",
    "no-untimed-lock",
    "bare-allow",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lint one lexed file. `file` is used only for reporting.
pub fn check(file: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let test_mask = test_region_mask(toks);
    let (suppressions, mut out) = parse_suppressions(file, &lexed.comments);

    let mut raw: Vec<Violation> = Vec::new();
    for (i, in_test) in test_mask.iter().enumerate() {
        if !in_test {
            raw.extend(check_at(file, toks, i));
        }
    }
    raw.extend(check_entrypoints(file, toks, &test_mask));
    raw.extend(check_ledger_feed(file, toks, &test_mask));
    raw.extend(check_undeadlined_loops(file, toks, &test_mask));
    raw.extend(check_untimed_locks(file, toks, &test_mask));

    for v in raw {
        let suppressed = suppressions
            .get(&v.line)
            .map(|set| set.contains(v.rule))
            .unwrap_or(false);
        if !suppressed {
            out.push(v);
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Run every token-anchored rule at position `i`.
fn check_at(file: &str, toks: &[Tok], i: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let t = &toks[i];
    let mk = |rule: &'static str, line: u32, message: String| Violation {
        file: file.to_string(),
        line,
        rule,
        message,
    };

    if t.kind == TokKind::Ident {
        let prev_dot = i > 0 && is_punct(&toks[i - 1], ".");
        let next_paren = matches!(toks.get(i + 1), Some(n) if is_punct(n, "("));
        let next_bang = matches!(toks.get(i + 1), Some(n) if is_punct(n, "!"));
        match t.text.as_str() {
            "unwrap" if prev_dot && next_paren => {
                out.push(mk(
                    "no-unwrap",
                    t.line,
                    "`.unwrap()` in library code; propagate an error or \
                     handle the None/Err case"
                        .into(),
                ));
            }
            "expect" if prev_dot && next_paren => {
                out.push(mk(
                    "no-expect",
                    t.line,
                    "`.expect(..)` in library code; propagate an error \
                     instead of panicking"
                        .into(),
                ));
            }
            "panic" if next_bang => {
                out.push(mk(
                    "no-panic",
                    t.line,
                    "`panic!` in library code; return an error variant".into(),
                ));
            }
            "unreachable" if next_bang => {
                out.push(mk(
                    "no-unreachable",
                    t.line,
                    "`unreachable!` in library code; make the invariant a \
                     typed error so corrupt input cannot abort the process"
                        .into(),
                ));
            }
            "todo" | "unimplemented" if next_bang => {
                out.push(mk(
                    "no-todo",
                    t.line,
                    format!("`{}!` left in library code", t.text),
                ));
            }
            _ => {}
        }

        // no-len-truncate: `.len() as <narrow-int>` silently truncates on
        // 64-bit targets; lengths must be bounds-checked first.
        if t.text == "len"
            && prev_dot
            && next_paren
            && matches!(toks.get(i + 2), Some(n) if is_punct(n, ")"))
            && matches!(toks.get(i + 3), Some(n) if n.kind == TokKind::Ident && n.text == "as")
        {
            if let Some(ty) = toks.get(i + 4) {
                if matches!(
                    ty.text.as_str(),
                    "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                ) {
                    out.push(mk(
                        "no-len-truncate",
                        t.line,
                        format!(
                            "`.len() as {}` truncates silently; bounds-check \
                             the length and return an error on overflow",
                            ty.text
                        ),
                    ));
                }
            }
        }
    }

    // no-cost-truncate: `<cost-ish expr> as u64` / `as usize` rounds an
    // estimated cost or cardinality toward zero, silently collapsing
    // fractional estimates (a 0.3-row leaf becomes 0). Estimates must stay
    // f64 end to end; only `plan::cost` itself may convert, explicitly.
    if t.kind == TokKind::Ident
        && t.text == "as"
        && !in_cost_module(file)
        && matches!(
            toks.get(i + 1),
            Some(ty) if ty.kind == TokKind::Ident && is_int_type(&ty.text)
        )
    {
        if let Some(name) = costish_cast_source(toks, i) {
            out.push(mk(
                "no-cost-truncate",
                t.line,
                format!(
                    "`{name} .. as {}` truncates an estimated cost/cardinality; \
                     keep estimates in f64 and convert inside `plan::cost` \
                     (or round explicitly at the consumer)",
                    toks[i + 1].text
                ),
            ));
        }
    }

    // no-index: integer-literal subscript `expr[0]` on an expression. The
    // preceding token must end an expression (identifier, `)`, or `]`) so
    // array literals `[0, 1]`, attribute brackets `#[..]`, and types
    // `[u8; 4]` do not match.
    if is_punct(t, "[")
        && i > 0
        && expression_end(&toks[i - 1])
        && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Int)
        && matches!(toks.get(i + 2), Some(n) if is_punct(n, "]"))
    {
        out.push(mk(
            "no-index",
            t.line,
            format!(
                "integer-literal subscript `[{}]` panics when out of \
                 bounds; use `.get({})` or a checked accessor",
                toks[i + 1].text,
                toks[i + 1].text
            ),
        ));
    }

    out
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// no-untraced-entrypoint: the files that form the public execution
/// surface must keep their entry points observable. Every non-deprecated
/// `pub fn` named `query*` / `execute*` / `run*` in them has to open a
/// trace span (any `span` identifier in its body counts), so profiles and
/// chrome traces cover the whole query path by construction.
const ENTRYPOINT_FILES: &[&str] = &[
    "core/src/store.rs",
    "core\\src\\store.rs",
    "reldb/src/db.rs",
    "reldb\\src\\db.rs",
];

fn is_entrypoint_name(name: &str) -> bool {
    name.starts_with("query") || name.starts_with("execute") || name.starts_with("run")
}

fn check_entrypoints(file: &str, toks: &[Tok], test_mask: &[bool]) -> Vec<Violation> {
    if !ENTRYPOINT_FILES.iter().any(|s| file.ends_with(s)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !is_entrypoint_name(&name.text) {
            continue;
        }
        let Some(sig_start) = signature_start(toks, i) else {
            continue; // not `pub`
        };
        if is_deprecated_item(toks, sig_start) {
            continue; // shims on their way out are exempt
        }
        if body_contains_span(toks, i + 2) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: name.line,
            rule: "no-untraced-entrypoint",
            message: format!(
                "public entry point `{}` never opens a trace span; add \
                 `let _span = trace::span(..)` so profiles and chrome \
                 traces cover it",
                name.text
            ),
        });
    }
    out
}

/// Walk backwards over fn modifiers (`async`, `unsafe`, `const`,
/// `extern` with its ABI string, a `pub(..)` restriction) and return the
/// index of the `pub` token that starts the signature, or None if the fn
/// is private.
fn signature_start(toks: &[Tok], fn_pos: usize) -> Option<usize> {
    let mut j = fn_pos;
    while j > 0 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "async" | "unsafe" | "const" | "extern")
        {
            j -= 1;
        } else if t.kind == TokKind::Str {
            j -= 1; // extern ABI string
        } else if is_punct(t, ")") {
            // `pub(crate)` / `pub(super)`: skip back to the matching `(`.
            let mut depth = 1usize;
            let mut k = j - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                if is_punct(&toks[k], ")") {
                    depth += 1;
                } else if is_punct(&toks[k], "(") {
                    depth -= 1;
                }
            }
            if depth > 0 {
                return None;
            }
            j = k;
        } else if t.kind == TokKind::Ident && t.text == "pub" {
            return Some(j - 1);
        } else {
            return None;
        }
    }
    None
}

/// Is the item whose signature starts at `sig_start` annotated
/// `#[deprecated]` (possibly among other attributes)?
fn is_deprecated_item(toks: &[Tok], sig_start: usize) -> bool {
    let mut j = sig_start;
    loop {
        if j < 3 || !is_punct(&toks[j - 1], "]") {
            return false;
        }
        let mut depth = 1usize;
        let mut k = j - 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if is_punct(&toks[k], "]") {
                depth += 1;
            } else if is_punct(&toks[k], "[") {
                depth -= 1;
            }
        }
        if depth > 0 || k == 0 || !is_punct(&toks[k - 1], "#") {
            return false;
        }
        if matches!(
            toks.get(k + 1),
            Some(t) if t.kind == TokKind::Ident && t.text == "deprecated"
        ) {
            return true;
        }
        j = k - 1; // keep scanning earlier attributes
    }
}

/// no-unledgered-query: the store's execution surface must feed the
/// query ledger, the same way `no-untraced-entrypoint` keeps it traced.
/// In `core/src/store.rs`, every non-deprecated `pub fn` named `query*` /
/// `execute*` / `run*` has to reach the ledger — an identifier `ledger`
/// or `fetch` (the recording choke point every terminal executes through)
/// in its body counts — and any `fn fetch` in the file must itself
/// mention `ledger`, which closes the loop: entry points go through
/// `fetch`, and `fetch` records.
const LEDGER_FILES: &[&str] = &["core/src/store.rs", "core\\src\\store.rs"];

fn check_ledger_feed(file: &str, toks: &[Tok], test_mask: &[bool]) -> Vec<Violation> {
    if !LEDGER_FILES.iter().any(|s| file.ends_with(s)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident {
            continue;
        }
        if name.text == "fetch" {
            // The choke point itself, whatever its visibility.
            if !body_contains_ident(toks, i + 2, &["ledger"]) {
                out.push(Violation {
                    file: file.to_string(),
                    line: name.line,
                    rule: "no-unledgered-query",
                    message: "`fetch` is the query-recording choke point but never \
                              touches `ledger`; record the execution before returning"
                        .into(),
                });
            }
            continue;
        }
        if !is_entrypoint_name(&name.text) {
            continue;
        }
        let Some(sig_start) = signature_start(toks, i) else {
            continue; // not `pub`
        };
        if is_deprecated_item(toks, sig_start) {
            continue;
        }
        if body_contains_ident(toks, i + 2, &["ledger", "fetch"]) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: name.line,
            rule: "no-unledgered-query",
            message: format!(
                "public entry point `{}` never reaches the query ledger; \
                 execute through `fetch` or record via the `ledger` handle",
                name.text
            ),
        });
    }
    out
}

/// no-undeadlined-loop: blocking operator loops in the executor must
/// stay cancellable. In `reldb/src/exec/`, both `while let .. = ..next..`
/// drains and bare `loop { .. next .. }` drains pull from a child without
/// bound, so the loop has to poll the cooperative cancel/deadline check
/// (any `poll` identifier counts — `self.meter.poll(..)` or
/// `limits.poll(..)`). Otherwise a query past its deadline keeps burning
/// CPU until the operator runs dry.
const EXEC_DIRS: &[&str] = &["reldb/src/exec/", "reldb\\src\\exec\\"];

fn check_undeadlined_loops(file: &str, toks: &[Tok], test_mask: &[bool]) -> Vec<Violation> {
    if !EXEC_DIRS.iter().any(|s| file.contains(s)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Shape 2: `loop { … next … }` with no `poll` in the body. The drain
    // check happens inside the body (unlike while-let, there is no
    // condition), so a nested cancellable while-let inside a polling
    // outer loop does not double-report: any `poll` in scope clears it.
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "loop") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| is_punct(t, "{")) {
            continue;
        }
        let mut braces = 0usize;
        let mut drains = false;
        let mut polled = false;
        let mut k = i + 1;
        while let Some(t) = toks.get(k) {
            if is_punct(t, "{") {
                braces += 1;
            } else if is_punct(t, "}") {
                braces -= 1;
                if braces == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident && t.text == "next" {
                drains = true;
            } else if t.kind == TokKind::Ident && t.text == "poll" {
                polled = true;
            }
            k += 1;
        }
        if drains && !polled {
            out.push(Violation {
                file: file.to_string(),
                line: toks[i].line,
                rule: "no-undeadlined-loop",
                message: "`loop` drains a child via `next` without polling the \
                          cancel/deadline check; call `self.meter.poll(..)` (or \
                          `limits.poll(..)`) each iteration so a query past its \
                          deadline stops promptly"
                    .into(),
            });
        }
    }
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "while") {
            continue;
        }
        if !matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Ident && t.text == "let") {
            continue;
        }
        // The loop body `{` is the first brace outside parens/brackets
        // (struct literals need parens inside a while-let condition).
        let mut depth = 0isize;
        let mut j = i + 2;
        let body = loop {
            let Some(t) = toks.get(j) else { break None };
            if is_punct(t, "(") || is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") {
                depth -= 1;
            } else if depth == 0 && is_punct(t, "{") {
                break Some(j);
            }
            j += 1;
        };
        let Some(body) = body else { continue };
        let drains_child = toks[i + 2..body]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "next");
        if !drains_child {
            continue;
        }
        let mut braces = 0usize;
        let mut polled = false;
        let mut k = body;
        while let Some(t) = toks.get(k) {
            if is_punct(t, "{") {
                braces += 1;
            } else if is_punct(t, "}") {
                braces -= 1;
                if braces == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident && t.text == "poll" {
                polled = true;
            }
            k += 1;
        }
        if !polled {
            out.push(Violation {
                file: file.to_string(),
                line: toks[i].line,
                rule: "no-undeadlined-loop",
                message: "operator loop drains its child without polling the \
                          cancel/deadline check; call `self.meter.poll(..)` (or \
                          `limits.poll(..)`) each iteration so a query past its \
                          deadline stops promptly"
                    .into(),
            });
        }
    }
    out
}

/// no-untimed-lock: library code in the storage (`reldb`) and query
/// (`core`) crates must acquire locks through the instrumented wrappers
/// in `xmlrel_obs::timed_lock`, so every wait and hold lands in the
/// `lock_wait_us` / `lock_hold_us` contention histograms. A raw
/// `RwLock` or `Mutex` identifier in non-test code there is a lock the
/// flight recorder cannot see. Deliberately untimed cells (per-operator
/// hot paths where wrapper overhead would distort the numbers) carry a
/// `lint:allow(no-untimed-lock)` with their justification.
const LOCK_DIRS: &[&str] = &["reldb/src/", "reldb\\src\\", "core/src/", "core\\src\\"];

fn check_untimed_locks(file: &str, toks: &[Tok], test_mask: &[bool]) -> Vec<Violation> {
    if !LOCK_DIRS.iter().any(|s| file.contains(s)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "RwLock" | "Mutex") {
            out.push(Violation {
                file: file.to_string(),
                line: t.line,
                rule: "no-untimed-lock",
                message: format!(
                    "raw `{}` in storage/query library code is invisible to the \
                     contention histograms; use `xmlrel_obs::timed_lock::{}` so \
                     waits and holds are recorded",
                    t.text,
                    if t.text == "RwLock" {
                        "TimedRwLock"
                    } else {
                        "TimedMutex"
                    }
                ),
            });
        }
    }
    out
}

/// Does the fn whose tokens follow its name at `start` contain the
/// identifier `span` inside its body? Bodyless declarations (trait
/// methods ending in `;`) have nothing to trace and never match.
fn body_contains_span(toks: &[Tok], start: usize) -> bool {
    body_contains_ident(toks, start, &["span"])
}

/// Does the fn whose tokens follow its name at `start` contain any of the
/// given identifiers inside its body? Bodyless declarations (trait
/// methods ending in `;`) never match a missing-call rule.
fn body_contains_ident(toks: &[Tok], start: usize, names: &[&str]) -> bool {
    // Find the body's `{`: first brace outside the parameter list /
    // return type (tracked via paren and bracket depth).
    let mut depth = 0isize;
    let mut j = start;
    loop {
        let Some(t) = toks.get(j) else {
            return true; // malformed tail; nothing to report
        };
        if is_punct(t, "(") || is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            depth -= 1;
        } else if depth == 0 && is_punct(t, ";") {
            return true; // declaration without a body
        } else if depth == 0 && is_punct(t, "{") {
            break;
        }
        j += 1;
    }
    let mut braces = 0usize;
    while let Some(t) = toks.get(j) {
        if is_punct(t, "{") {
            braces += 1;
        } else if is_punct(t, "}") {
            braces -= 1;
            if braces == 0 {
                return false;
            }
        } else if t.kind == TokKind::Ident && names.iter().any(|n| t.text == *n) {
            return true;
        }
        j += 1;
    }
    false
}

/// The unified estimator is the one place allowed to move between floats
/// and integers; everywhere else must go through it.
fn in_cost_module(file: &str) -> bool {
    file.ends_with("plan/cost.rs") || file.ends_with("plan\\cost.rs")
}

fn is_int_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16" | "u32" | "u64" | "usize" | "i8" | "i16" | "i32" | "i64" | "isize"
    )
}

/// Does this identifier name an estimate? Matched per underscore-separated
/// segment so `est_rows`, `total_cost`, and `join_card` all qualify while
/// `largest` and `test` do not.
fn is_costish(name: &str) -> bool {
    name.split('_').any(|seg| {
        matches!(
            seg,
            "cost"
                | "costs"
                | "card"
                | "cardinality"
                | "est"
                | "estimate"
                | "estimated"
                | "sel"
                | "selectivity"
                | "rows"
        )
    })
}

/// Walk the postfix chain feeding an `as` cast (identifiers, field/method
/// dots, `?`, balanced call parens) and return the first cost-ish name in
/// it, so `cost.total() as u64` and `est_rows as usize` both resolve.
/// Chains ending in `.len()` are counts, not estimates, and never match.
fn costish_cast_source(toks: &[Tok], as_pos: usize) -> Option<String> {
    let mut chain: Vec<&str> = Vec::new();
    let mut j = as_pos;
    while j > 0 {
        let t = &toks[j - 1];
        if is_punct(t, ")") {
            // Skip the balanced argument list back to its `(`.
            let mut depth = 1usize;
            let mut k = j - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                if is_punct(&toks[k], ")") {
                    depth += 1;
                } else if is_punct(&toks[k], "(") {
                    depth -= 1;
                }
            }
            if depth > 0 {
                break;
            }
            j = k;
        } else if is_punct(t, "?") {
            j -= 1;
        } else if t.kind == TokKind::Ident && t.text != "as" {
            chain.push(t.text.as_str());
            j -= 1;
            if j > 0 && is_punct(&toks[j - 1], ".") {
                j -= 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    if chain.first() == Some(&"len") {
        return None;
    }
    chain
        .iter()
        .find(|name| is_costish(name))
        .map(|name| (*name).to_string())
}

/// Does this token end an expression a subscript could apply to?
fn expression_end(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(
            t.text.as_str(),
            // Keywords that precede `[` without forming a subscript.
            "return" | "break" | "in" | "as" | "mut" | "ref" | "else" | "match" | "if"
        ),
        TokKind::Punct => t.text == ")" || t.text == "]" || t.text == "?",
        _ => false,
    }
}

/// Mark every token inside a `#[cfg(test)]` or `#[test]`-attributed item.
/// Shared with the concurrency analyses ([`crate::conc`]), which exempt
/// test code the same way the token rules do.
pub(crate) fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_punct(&toks[i], "#") && matches!(toks.get(i + 1), Some(n) if is_punct(n, "[")) {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                if is_punct(&toks[j], "[") {
                    depth += 1;
                } else if is_punct(&toks[j], "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                attr.push(toks[j].text.as_str());
                j += 1;
            }
            if is_test_attr(&attr) {
                // Skip any further attributes between this one and the item.
                let mut k = j + 1;
                while k + 1 < toks.len() && is_punct(&toks[k], "#") && is_punct(&toks[k + 1], "[") {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        if is_punct(&toks[k], "[") {
                            d += 1;
                        } else if is_punct(&toks[k], "]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // The attributed item extends to its closing brace, or to
                // a `;` at depth zero for brace-less items (`use`, fields).
                let mut d = 0usize;
                let mut entered = false;
                let end = loop {
                    if k >= toks.len() {
                        break toks.len();
                    }
                    let t = &toks[k];
                    if is_punct(t, "{") {
                        d += 1;
                        entered = true;
                    } else if is_punct(t, "}") {
                        d = d.saturating_sub(1);
                        if entered && d == 0 {
                            break k + 1;
                        }
                    } else if is_punct(t, ";") && !entered {
                        break k + 1;
                    }
                    k += 1;
                };
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Is this attribute token sequence a test gate?
fn is_test_attr(attr: &[&str]) -> bool {
    if attr == ["test"] {
        return true;
    }
    // cfg(test), cfg(all(test, ...)), cfg(any(.., test)) -- look for the
    // `test` identifier directly inside a cfg attribute, but not inside a
    // `not(..)` group.
    if attr.first() != Some(&"cfg") {
        return false;
    }
    let mut not_depth: isize = -1;
    let mut depth: isize = 0;
    for (i, &t) in attr.iter().enumerate() {
        match t {
            "(" => depth += 1,
            ")" => {
                if depth == not_depth {
                    not_depth = -1;
                }
                depth -= 1;
            }
            "not" if attr.get(i + 1) == Some(&"(") && not_depth < 0 => {
                not_depth = depth + 1;
            }
            "test" if not_depth < 0 => return true,
            _ => {}
        }
    }
    false
}

/// Extract `lint:allow(rule, ...)` suppressions from comments.
///
/// Returns the per-line suppression sets plus any violations produced by
/// malformed suppressions (bare `lint:allow`, unknown rule names).
fn parse_suppressions(
    file: &str,
    comments: &[Comment],
) -> (HashMap<u32, HashSet<&'static str>>, Vec<Violation>) {
    let mut map: HashMap<u32, HashSet<&'static str>> = HashMap::new();
    let mut bad = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow".len()..];
        let names = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(inside, _)| {
                inside
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        if names.is_empty() {
            bad.push(Violation {
                file: file.to_string(),
                line: c.line,
                rule: "bare-allow",
                message: "`lint:allow` must name the rule(s) it suppresses, \
                          e.g. `lint:allow(no-unwrap)`"
                    .into(),
            });
            continue;
        }
        let mut resolved: HashSet<&'static str> = HashSet::new();
        for n in names {
            match RULES.iter().find(|r| **r == n) {
                Some(r) => {
                    resolved.insert(r);
                }
                None => bad.push(Violation {
                    file: file.to_string(),
                    line: c.line,
                    rule: "bare-allow",
                    message: format!("unknown lint rule `{n}` in lint:allow"),
                }),
            }
        }
        map.entry(c.line).or_default().extend(resolved.iter());
        if c.alone_on_line {
            map.entry(c.line + 1).or_default().extend(resolved.iter());
        }
    }
    (map, bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(src: &str) -> Vec<Violation> {
        check("t.rs", &lex(src))
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_unwrap() {
        assert_eq!(rules_of("fn f() { x.unwrap(); }"), vec!["no-unwrap"]);
    }

    fn exec_rules(src: &str) -> Vec<&'static str> {
        check("crates/reldb/src/exec/join.rs", &lex(src))
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn flags_undeadlined_operator_loop() {
        let src = "fn f(c: &mut E) { while let Some(row) = c.next()? { use_row(row); } }";
        assert_eq!(exec_rules(src), vec!["no-undeadlined-loop"]);
        // Outside the executor directory the rule does not apply.
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }

    #[test]
    fn polled_operator_loop_ok() {
        let src = "fn f(&mut self, c: &mut E) -> Result<()> {\n\
                   while let Some(row) = c.next()? {\n\
                   self.meter.poll(\"HashJoin build\")?;\n\
                   keep(row); } Ok(()) }";
        assert_eq!(exec_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn non_draining_while_let_ok() {
        // A while-let over something other than a child executor (no
        // `next` in the condition) is not a blocking operator loop.
        let src = "fn f(v: &mut Vec<u32>) { while let Some(x) = v.pop() { use_x(x); } }";
        assert_eq!(exec_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn undeadlined_loop_exempt_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(c: &mut E) { \
                   while let Some(r) = c.next()? { use_r(r); } }\n}";
        assert_eq!(exec_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn flags_bare_loop_drain() {
        // The `UnionAllExec` shape: `loop { … match it.next() … }` drains
        // a child without a while-let, and must still poll.
        let src = "fn f(&mut self) -> Result<Option<Row>> {\n\
                   loop {\n\
                   if let Some(cur) = &mut self.current {\n\
                   if let Some(row) = cur.next()? { return Ok(Some(row)); }\n\
                   self.current = None; }\n\
                   match self.pending.pop() {\n\
                   Some(next) => self.current = Some(next),\n\
                   None => return Ok(None), } } }";
        assert_eq!(exec_rules(src), vec!["no-undeadlined-loop"]);
        // Outside the executor directory the rule does not apply.
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }

    #[test]
    fn both_drain_shapes_caught_in_one_file() {
        let src = "fn a(c: &mut E) { while let Some(r) = c.next()? { use_r(r); } }\n\
                   fn b(c: &mut E) { loop { match c.next()? { Some(r) => use_r(r), \
                   None => break, } } }";
        assert_eq!(
            exec_rules(src),
            vec!["no-undeadlined-loop", "no-undeadlined-loop"]
        );
    }

    #[test]
    fn polled_bare_loop_ok() {
        let src = "fn f(&mut self, c: &mut E) -> Result<()> {\n\
                   loop { self.meter.poll(\"UnionAll\")?;\n\
                   match c.next()? { Some(r) => keep(r), None => return Ok(()), } } }";
        assert_eq!(exec_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn non_draining_bare_loop_ok() {
        // A `loop` that never calls `next` (retry/backoff shapes) is not a
        // child drain.
        let src = "fn f() { loop { if try_once() { break; } back_off(); } }";
        assert_eq!(exec_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn flags_expect_method_call_only() {
        assert_eq!(
            rules_of("fn f() { x.expect(\"boom\"); }"),
            vec!["no-expect"]
        );
        // A parser method *named* expect is not a std Option/Result call
        // when invoked without a receiver dot... but `self.expect(tok)` is
        // indistinguishable at token level, so it IS flagged; custom
        // methods should use a different name.
        assert_eq!(rules_of("fn f() { expect(1); }"), Vec::<&str>::new());
    }

    #[test]
    fn flags_panic_family() {
        assert_eq!(
            rules_of("fn f() { panic!(\"x\"); unreachable!(); todo!(); unimplemented!() }"),
            // Same line, so sorted by rule name.
            vec!["no-panic", "no-todo", "no-todo", "no-unreachable"]
        );
    }

    #[test]
    fn panic_ident_without_bang_ok() {
        assert_eq!(
            rules_of("fn f(panic: u32) -> u32 { panic }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn flags_integer_subscript() {
        assert_eq!(rules_of("fn f() { let a = row[0]; }"), vec!["no-index"]);
        assert_eq!(rules_of("fn f() { g()[1]; }"), vec!["no-index"]);
        assert_eq!(
            rules_of("fn f() { m[0][1]; }"),
            vec!["no-index", "no-index"]
        );
    }

    #[test]
    fn array_literals_types_and_attrs_not_subscripts() {
        assert_eq!(rules_of("fn f() { let a = [0, 1]; }"), Vec::<&str>::new());
        assert_eq!(rules_of("fn f(x: [u8; 4]) {}"), Vec::<&str>::new());
        assert_eq!(rules_of("#[derive(Debug)] struct S;"), Vec::<&str>::new());
        assert_eq!(
            rules_of("fn f(v: &[u8]) { for b in v {} }"),
            Vec::<&str>::new()
        );
        // Variable subscripts are out of scope for this rule.
        assert_eq!(rules_of("fn f(i: usize) { row[i]; }"), Vec::<&str>::new());
    }

    #[test]
    fn flags_len_truncation() {
        assert_eq!(
            rules_of("fn f(s: &str) -> u32 { s.len() as u32 }"),
            vec!["no-len-truncate"]
        );
        // Widening or same-width casts are fine.
        assert_eq!(
            rules_of("fn f(s: &str) -> u64 { s.len() as u64 }"),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules_of("fn f(s: &str) -> usize { s.len() }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn flags_cost_truncation() {
        // Bare identifier and method-chain forms both resolve.
        assert_eq!(
            rules_of("fn f(est_rows: f64) -> usize { est_rows as usize }"),
            vec!["no-cost-truncate"]
        );
        assert_eq!(
            rules_of("fn f(c: Cost) -> u64 { c.total_cost as u64 }"),
            vec!["no-cost-truncate"]
        );
        assert_eq!(
            rules_of("fn f(cost: Cost) -> u64 { cost.total() as u64 }"),
            vec!["no-cost-truncate"]
        );
        assert_eq!(
            rules_of("fn f(p: &Plan) -> usize { p.selectivity()? as usize }"),
            vec!["no-cost-truncate"]
        );
    }

    #[test]
    fn cost_truncation_negatives() {
        // Casting to float keeps the estimate exact.
        assert_eq!(
            rules_of("fn f(rows: u64) -> f64 { rows as f64 }"),
            Vec::<&str>::new()
        );
        // Counting rows is not estimating them.
        assert_eq!(
            rules_of("fn f(rows: &[Row]) -> u64 { rows.len() as u64 }"),
            Vec::<&str>::new()
        );
        // Segment match, not substring match: `largest` is not `est`.
        assert_eq!(
            rules_of("fn f(largest: f64) -> u64 { largest as u64 }"),
            Vec::<&str>::new()
        );
        // Non-cost identifiers cast freely.
        assert_eq!(
            rules_of("fn f(n: f64) -> u64 { n as u64 }"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn cost_module_is_exempt() {
        let src = "fn f(est_rows: f64) -> usize { est_rows as usize }";
        let v = check("crates/reldb/src/plan/cost.rs", &lex(src));
        assert_eq!(v, vec![]);
        // Any other file in the planner is not exempt.
        let v = check("crates/reldb/src/plan/reorder.rs", &lex(src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-cost-truncate");
    }

    #[test]
    fn test_code_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn h() { x.unwrap(); }\n}\n";
        assert_eq!(lint(src), vec![]);
        let src2 =
            "#[test]\nfn t() { y.expect(\"in test\"); }\nfn lib(z: Option<u8>) { z.unwrap(); }";
        let v = lint(src2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        assert_eq!(rules_of(src), vec!["no-unwrap"]);
    }

    #[test]
    fn suppression_same_line() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-unwrap)";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn suppression_line_above() {
        let src = "fn f() {\n    // lint:allow(no-unwrap): startup-only\n    x.unwrap();\n}";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn suppression_wrong_rule_does_not_mask() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-expect)";
        assert_eq!(rules_of(src), vec!["no-unwrap"]);
    }

    #[test]
    fn trailing_comment_does_not_cover_next_line() {
        let src = "fn f() { a.unwrap(); } // lint:allow(no-unwrap)\nfn g() { b.unwrap(); }";
        let v = lint(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn bare_allow_is_a_violation() {
        assert_eq!(rules_of("// lint:allow\nfn f() {}"), vec!["bare-allow"]);
        assert_eq!(rules_of("// lint:allow()\nfn f() {}"), vec!["bare-allow"]);
        assert_eq!(
            rules_of("// lint:allow(no-such-rule)\nfn f() {}"),
            vec!["bare-allow"]
        );
    }

    #[test]
    fn multi_rule_suppression() {
        let src = "fn f() { x.unwrap().to_vec()[0]; } // lint:allow(no-unwrap, no-index)";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn line_above_suppression_does_not_reach_two_lines_down() {
        // Alone-on-line suppressions cover exactly the next line: a blank
        // line in between breaks the scope.
        let src = "fn f() {\n    // lint:allow(no-unwrap)\n\n    x.unwrap();\n}";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn line_above_suppression_covers_only_named_rule_next_line() {
        // The alone-above comment suppresses no-unwrap on line 3 but the
        // no-index on the same line still fires.
        let src = "fn f() {\n    // lint:allow(no-unwrap)\n    x.unwrap().to_vec()[0];\n}";
        assert_eq!(rules_of(src), vec!["no-index"]);
    }

    #[test]
    fn same_line_suppression_does_not_leak_upward() {
        // A suppression on line 2 says nothing about line 1.
        let src = "fn f() { a.unwrap(); }\nfn g() { b.unwrap(); } // lint:allow(no-unwrap)";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn bare_allow_reported_even_next_to_valid_suppression() {
        // A malformed allow is itself reported at its own line, and does
        // not silence anything.
        let src = "fn f() {\n    // lint:allow\n    x.unwrap();\n}";
        let mut rules = rules_of(src);
        rules.sort();
        assert_eq!(rules, vec!["bare-allow", "no-unwrap"]);
    }

    #[test]
    fn doc_comment_allow_is_inert() {
        // An allow marker inside a doc comment is documentation, not a
        // suppression (and not a malformed allow either).
        let src = "/// explain lint:allow usage here\nfn f() { x.unwrap(); }";
        assert_eq!(rules_of(src), vec!["no-unwrap"]);
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = "fn f() { let s = \"x.unwrap() panic!\"; /* y.expect(1) */ }";
        assert_eq!(lint(src), vec![]);
    }

    const STORE: &str = "crates/core/src/store.rs";

    fn store_rules(src: &str) -> Vec<&'static str> {
        check(STORE, &lex(src))
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn flags_untraced_entrypoint() {
        // Both observability rules fire: no span, no ledger/fetch.
        let src = "impl S { pub fn query_all(&self) -> u32 { self.n } }";
        assert_eq!(
            store_rules(src),
            vec!["no-unledgered-query", "no-untraced-entrypoint"]
        );
        let src = "pub fn run_workload() { step(); }";
        assert_eq!(
            store_rules(src),
            vec!["no-unledgered-query", "no-untraced-entrypoint"]
        );
    }

    #[test]
    fn traced_entrypoint_ok() {
        let src = "impl S { pub fn query_all(&self) -> u32 {\n    \
                   let _span = trace::span(\"q\", \"core\");\n    self.fetch(q)\n} }";
        assert_eq!(store_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn flags_unledgered_query() {
        // Traced but never reaches the ledger: only the ledger rule fires.
        let src = "impl S { pub fn query_all(&self) -> u32 {\n    \
                   let _span = trace::span(\"q\", \"core\");\n    self.n\n} }";
        assert_eq!(store_rules(src), vec!["no-unledgered-query"]);
    }

    #[test]
    fn ledgered_query_ok() {
        // Recording directly through the ledger handle also satisfies it.
        let src = "impl S { pub fn query_all(&self) -> u32 {\n    \
                   let _span = trace::span(\"q\", \"core\");\n    \
                   self.ledger.observe(q, 0, 0, None);\n    self.n\n} }";
        assert_eq!(store_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn fetch_must_feed_ledger() {
        // The choke point itself is checked, private or not.
        let src = "impl S { fn fetch(&self) { run_sql(); } }";
        assert_eq!(store_rules(src), vec!["no-unledgered-query"]);
        let src = "impl S { fn fetch(&self) { self.ledger.observe(q, 0, 0, None); run_sql(); } }";
        assert_eq!(store_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn ledger_rule_scoped_to_store() {
        // Same unledgered source in reldb/src/db.rs: only the trace rule
        // applies there.
        let src = "pub fn query_all() -> u32 { 1 }";
        let v = check("crates/reldb/src/db.rs", &lex(src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-untraced-entrypoint");
    }

    #[test]
    fn deprecated_entrypoint_exempt() {
        let src = "impl S {\n#[deprecated(note = \"use request()\")]\n\
                   pub fn query_all(&self) -> u32 { self.n }\n}";
        assert_eq!(store_rules(src), Vec::<&str>::new());
        // Other attributes between #[deprecated] and the fn still count.
        let src = "#[deprecated]\n#[inline]\npub fn run_old() {}";
        assert_eq!(store_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn entrypoint_rule_scoped_to_surface_files() {
        let src = "pub fn query_all() -> u32 { 1 }";
        // Same source in an ordinary file: no finding.
        assert_eq!(rules_of(src), Vec::<&str>::new());
        let v = check("crates/reldb/src/db.rs", &lex(src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-untraced-entrypoint");
    }

    #[test]
    fn private_and_unmatched_fns_exempt() {
        assert_eq!(store_rules("fn run_inner() {}"), Vec::<&str>::new());
        assert_eq!(
            store_rules("pub fn verify_sql(&self) -> bool { true }"),
            Vec::<&str>::new()
        );
        // pub(crate) visibility is still public enough to need a span —
        // and a ledger feed.
        assert_eq!(
            store_rules("pub(crate) fn execute_one() {}"),
            vec!["no-unledgered-query", "no-untraced-entrypoint"]
        );
    }

    #[test]
    fn bodyless_declarations_exempt() {
        let src = "pub trait Exec { fn run(&self); }";
        // Trait methods are not `pub` token-wise, and even an explicit
        // bodyless decl has nothing to trace.
        assert_eq!(store_rules(src), Vec::<&str>::new());
    }

    fn reldb_rules(src: &str) -> Vec<&'static str> {
        check("crates/reldb/src/storage.rs", &lex(src))
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn flags_raw_lock_in_storage_code() {
        let src = "use std::sync::RwLock;\nstruct S { db: RwLock<u32> }";
        assert_eq!(reldb_rules(src), vec!["no-untimed-lock", "no-untimed-lock"]);
        let src = "fn f() { let m = std::sync::Mutex::new(0); }";
        assert_eq!(reldb_rules(src), vec!["no-untimed-lock"]);
        // core/src is in scope too.
        let v = check("crates/core/src/ledger.rs", &lex(src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-untimed-lock");
    }

    #[test]
    fn timed_wrappers_and_out_of_scope_files_ok() {
        // The wrappers themselves do not match the raw identifiers.
        let src = "use xmlrel_obs::timed_lock::{TimedMutex, TimedRwLock};\n\
                   struct S { db: TimedRwLock<u32>, m: TimedMutex<u8> }";
        assert_eq!(reldb_rules(src), Vec::<&str>::new());
        // Outside reldb/core (the obs crate hosts the wrapper; raw locks
        // are its implementation), the rule does not apply.
        let src = "use std::sync::RwLock;\nstruct S { inner: RwLock<u32> }";
        assert_eq!(
            check("crates/obs/src/timed_lock.rs", &lex(src)),
            Vec::<Violation>::new()
        );
        assert_eq!(rules_of(src), Vec::<&str>::new());
    }

    #[test]
    fn raw_lock_exempt_in_tests_and_suppressible() {
        let src = "#[cfg(test)]\nmod tests {\n use std::sync::Mutex;\n \
                   fn t() { let m = Mutex::new(0); }\n}";
        assert_eq!(reldb_rules(src), Vec::<&str>::new());
        let src = "// lint:allow(no-untimed-lock): per-operator hot cell\n\
                   type Cell = std::sync::Mutex<u32>;";
        assert_eq!(reldb_rules(src), Vec::<&str>::new());
    }

    #[test]
    fn entrypoint_suppression_works() {
        let src = "// lint:allow(no-untraced-entrypoint, no-unledgered-query): metrics-only path\n\
                   pub fn run_light() {}";
        assert_eq!(store_rules(src), Vec::<&str>::new());
    }
}
