//! `xmlrel-lint`: a from-scratch, token-level linter for this workspace.
//!
//! The workspace's reliability story depends on library code never
//! panicking on user input: a malformed XML document, a corrupt WAL frame,
//! or a hostile query must surface as a typed error, not an abort. Clippy
//! cannot enforce the project-specific parts of that contract, so this
//! crate implements the handful of rules we care about over a hand-written
//! lexer (no external parser dependencies; the build environment is
//! offline).
//!
//! Rules (see [`rules::RULES`]):
//! - `no-unwrap`, `no-expect`: no `.unwrap()` / `.expect(..)` in non-test
//!   library code.
//! - `no-panic`, `no-unreachable`, `no-todo`: no `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!`.
//! - `no-index`: no integer-literal subscripts (`row[0]`); use checked
//!   accessors.
//! - `no-len-truncate`: no `.len() as u32`-style truncating casts.
//! - `no-cost-truncate`: no `as u64`/`as usize` casts on cost/cardinality
//!   estimates outside `plan::cost`; estimates stay f64 end to end.
//! - `no-untraced-entrypoint`: public `query*`/`execute*`/`run*` fns in
//!   the execution-surface files (`core/src/store.rs`, `reldb/src/db.rs`)
//!   must open a trace span; deprecated shims are exempt.
//! - `no-unledgered-query`: the same entry points in `core/src/store.rs`
//!   must also reach the query ledger (directly or through `fetch`, the
//!   recording choke point), and `fetch` itself must record into it.
//! - `no-undeadlined-loop`: `while let .. = ..next..` operator loops in
//!   `reldb/src/exec/` must poll the cooperative cancel/deadline check so
//!   queries past their deadline stop promptly instead of draining their
//!   children to exhaustion.
//!
//! Suppress a finding with `// lint:allow(rule): justification` on the
//! offending line or alone on the line above. Bare `lint:allow` without a
//! rule name is itself reported (`bare-allow`).
//!
//! Beyond the token rules, `xmlrel-lint --conc` runs the cross-file
//! concurrency-readiness analyses (Send/Sync reachability, lock-order
//! graph, atomics discipline) in [`conc`], over the item-level parse in
//! [`items`]. Those findings are gated by the committed
//! `CONC_ALLOWLIST.txt`, not by `lint:allow` comments.

pub mod conc;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod sqlflow;

pub use rules::{check, Violation, RULES};

use std::path::{Path, PathBuf};

/// Lint a single source string.
pub fn lint_source(file: &str, src: &str) -> Vec<Violation> {
    rules::check(file, &lexer::lex(src))
}

/// Directory names whose contents are test/bench scaffolding, exempt from
/// library-code rules.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Vendored dependency shims and the bench harness: not project library
/// code, so not linted by default.
const SKIP_CRATES: &[&str] = &["rand", "proptest", "criterion", "bench"];

/// Collect the `.rs` files under `root` that the linter should scan.
pub fn collect_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let meta = std::fs::metadata(root)?;
    if meta.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            // Skip vendored crates when walking a `crates/` directory.
            if root.file_name().is_some_and(|n| n == "crates") && SKIP_CRATES.contains(&name) {
                continue;
            }
            collect_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every collected file under the given roots; returns all
/// violations, sorted by file then line.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for r in roots {
        collect_files(r, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut out = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        let name = f.to_string_lossy().into_owned();
        out.extend(lint_source(&name, &src));
    }
    Ok(out)
}

/// Escape a string for embedding in a JSON string literal. Shared by the
/// violation report and the conclint report emitters.
pub(crate) fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render violations as a JSON array (machine-readable report). No serde:
/// the fields are simple enough to emit by hand.
pub fn to_json(violations: &[Violation]) -> String {
    let esc = esc_json;
    let mut s = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&v.file),
            v.line,
            v.rule,
            esc(&v.message),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let v = vec![Violation {
            file: "a\"b.rs".into(),
            line: 3,
            rule: "no-unwrap",
            message: "has \"quotes\"\nand newline".into(),
        }];
        let j = to_json(&v);
        assert!(j.contains(r#""file": "a\"b.rs""#));
        assert!(j.contains(r#"\nand newline"#));
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
    }

    #[test]
    fn empty_json() {
        assert_eq!(to_json(&[]), "[\n]");
    }
}
