//! `xmlrel-lint` binary: scan the workspace's library code for forbidden
//! panicking constructs and truncating casts.
//!
//! Usage:
//!   xmlrel-lint [--json] [--out PATH] [PATH...]
//!
//! `--out` always writes the JSON report (even on failure), so CI can
//! upload it as an artifact regardless of the exit code.
//!
//! With no paths, scans the workspace's own crate sources (`src/` and
//! `crates/*/src`, minus vendored shims and the bench harness), located
//! relative to the nearest ancestor directory containing `Cargo.toml` with
//! a `[workspace]` table. Exits 1 when any violation is reported.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xmlrel-lint: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: xmlrel-lint [--json] [--out PATH] [PATH...]");
                eprintln!("rules: {}", lint::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            p => roots.push(PathBuf::from(p)),
        }
    }
    if roots.is_empty() {
        match default_roots() {
            Some(r) => roots = r,
            None => {
                eprintln!(
                    "xmlrel-lint: could not locate the workspace root; pass paths explicitly"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let violations = match lint::lint_paths(&roots) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xmlrel-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, lint::to_json(&violations)) {
            eprintln!("xmlrel-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if json {
        println!("{}", lint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
        if violations.is_empty() {
            eprintln!("xmlrel-lint: clean");
        } else {
            eprintln!("xmlrel-lint: {} violation(s)", violations.len());
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Find the workspace root (nearest ancestor whose Cargo.toml declares
/// `[workspace]`) and return its library source roots.
fn default_roots() -> Option<Vec<PathBuf>> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    let mut roots = Vec::new();
                    let src = dir.join("src");
                    if src.is_dir() {
                        roots.push(src);
                    }
                    let crates = dir.join("crates");
                    if crates.is_dir() {
                        roots.push(crates);
                    }
                    return Some(roots);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
