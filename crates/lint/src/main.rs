//! `xmlrel-lint` binary: scan the workspace's library code for forbidden
//! panicking constructs and truncating casts, or run the cross-file
//! analyses: `--conc` (concurrency readiness) and `--sql` (SQL
//! construction / injection safety).
//!
//! Usage:
//!   xmlrel-lint [--json] [--out PATH] [PATH...]
//!   xmlrel-lint --conc [--allowlist PATH] [--out PATH] [PATH...]
//!   xmlrel-lint --sql [--allowlist PATH] [--out PATH] [PATH...]
//!
//! `--out` always writes the JSON report (even on failure), so CI can
//! upload it as an artifact regardless of the exit code.
//!
//! With no paths, scans the workspace's own crate sources (`src/` and
//! `crates/*/src`, minus vendored shims and the bench harness), located
//! relative to the nearest ancestor directory containing `Cargo.toml` with
//! a `[workspace]` table. Exits 1 when any violation is reported.
//!
//! In `--conc` mode the gate fails on: unallowlisted Send/Sync-hostile
//! field chains under the audited handle types, stale allowlist entries
//! (the allowlist may only shrink), lock-order cycles, and atomics
//! discipline findings. The allowlist defaults to `CONC_ALLOWLIST.txt` at
//! the workspace root.
//!
//! In `--sql` mode the gate fails on: taint flows that reach a SQL sink
//! without passing through the `sql_lit`/`sql_ident` quoting seam,
//! constant SQL fragments the engine's own parser rejects, identifier
//! literals that do not match the DDL catalog, and stale allowlist
//! entries. The allowlist defaults to `SQL_ALLOWLIST.txt` at the
//! workspace root.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut conc = false;
    let mut sql = false;
    let mut out_path: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--conc" => conc = true,
            "--sql" => sql = true,
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xmlrel-lint: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xmlrel-lint: --allowlist requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: xmlrel-lint [--json] [--out PATH] [PATH...]");
                eprintln!("       xmlrel-lint --conc [--allowlist PATH] [--out PATH] [PATH...]");
                eprintln!("       xmlrel-lint --sql [--allowlist PATH] [--out PATH] [PATH...]");
                eprintln!("rules: {}", lint::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            p => roots.push(PathBuf::from(p)),
        }
    }
    let workspace = workspace_root();
    if roots.is_empty() {
        match workspace.as_deref().map(source_roots) {
            Some(r) if !r.is_empty() => roots = r,
            _ => {
                eprintln!(
                    "xmlrel-lint: could not locate the workspace root; pass paths explicitly"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if conc {
        return run_conc(&roots, allowlist_path, workspace, out_path);
    }
    if sql {
        return run_sql(&roots, allowlist_path, workspace, out_path);
    }

    let violations = match lint::lint_paths(&roots) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xmlrel-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, lint::to_json(&violations)) {
            eprintln!("xmlrel-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if json {
        println!("{}", lint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
        if violations.is_empty() {
            eprintln!("xmlrel-lint: clean");
        } else {
            eprintln!("xmlrel-lint: {} violation(s)", violations.len());
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--conc` mode: load, analyze, report, gate.
fn run_conc(
    roots: &[PathBuf],
    allowlist_path: Option<PathBuf>,
    workspace: Option<PathBuf>,
    out_path: Option<PathBuf>,
) -> ExitCode {
    let allowlist_path =
        allowlist_path.or_else(|| workspace.as_ref().map(|w| w.join("CONC_ALLOWLIST.txt")));
    let allow = match &allowlist_path {
        Some(p) => lint::conc::Allowlist::load(p),
        None => lint::conc::Allowlist::default(),
    };
    let ws = match lint::conc::Workspace::load(roots) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xmlrel-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = lint::conc::analyze(&ws, &allow);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("xmlrel-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let mut failures = report.failures();
    for r in &report.roots {
        if r.missing {
            failures.push(format!(
                "send/sync: audited root `{}` was not found in the workspace — update \
                 conc::sendsync::DEFAULT_ROOTS if the type moved",
                r.root
            ));
        }
    }
    for r in &report.roots {
        let status = match (r.is_send(), r.is_sync()) {
            (true, true) => "Send + Sync".to_string(),
            _ => {
                let allowed = r.chains.iter().filter(|c| c.allowlisted).count();
                format!("{} ({} allowlisted chain(s))", chains_kill(r), allowed)
            }
        };
        println!("conc: {:<24} {status}", r.root);
    }
    println!(
        "conc: {} lock site(s), {} nesting edge(s), {} cycle(s); {} atomic(s), {} finding(s)",
        report.locks.sites.len(),
        report.locks.edges.len(),
        report.locks.cycles.len(),
        report.atomics.atomics.len(),
        report.atomics.findings.len()
    );
    if failures.is_empty() {
        eprintln!(
            "xmlrel-lint: conc clean (allowlist: {} entr(ies))",
            allow_len(&allow)
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("conc FAIL: {f}");
        }
        eprintln!("xmlrel-lint: {} conc failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

/// The `--sql` mode: load, analyze, report, gate.
fn run_sql(
    roots: &[PathBuf],
    allowlist_path: Option<PathBuf>,
    workspace: Option<PathBuf>,
    out_path: Option<PathBuf>,
) -> ExitCode {
    let allowlist_path =
        allowlist_path.or_else(|| workspace.as_ref().map(|w| w.join("SQL_ALLOWLIST.txt")));
    let allow = match &allowlist_path {
        Some(p) => lint::conc::Allowlist::load(p),
        None => lint::conc::Allowlist::default(),
    };
    let ws = match lint::conc::Workspace::load(roots) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xmlrel-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = lint::sqlflow::analyze(&ws, &allow);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("xmlrel-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "sql: {} fn(s) taint-scanned, {} constant statement(s) parsed, {} table(s) cataloged",
        report.stats.fns_scanned, report.stats.literals_checked, report.stats.tables_cataloged
    );
    println!(
        "sql: {} flow(s), {} parse finding(s), {} identifier finding(s)",
        report.flows.len(),
        report.const_findings.len(),
        report.ident_findings.len()
    );
    let failures = report.failures();
    if failures.is_empty() {
        eprintln!(
            "xmlrel-lint: sql clean (allowlist: {} entr(ies))",
            allow_len(&allow)
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("sql FAIL: {f}");
        }
        eprintln!("xmlrel-lint: {} sql failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn allow_len(a: &lint::conc::Allowlist) -> usize {
    a.entries.len()
}

/// Summarize which auto-traits a root loses, for the console line.
fn chains_kill(r: &lint::conc::sendsync::RootReport) -> &'static str {
    match (r.is_send(), r.is_sync()) {
        (false, false) => "!Send + !Sync",
        (false, true) => "!Send",
        (true, false) => "!Sync",
        (true, true) => "Send + Sync",
    }
}

/// Find the workspace root: the nearest ancestor whose Cargo.toml
/// declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The workspace's library source roots.
fn source_roots(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    let src = dir.join("src");
    if src.is_dir() {
        roots.push(src);
    }
    let crates = dir.join("crates");
    if crates.is_dir() {
        roots.push(crates);
    }
    roots
}
