//! Identifier/schema cross-check: build a catalog from the constant
//! `CREATE TABLE` literals in the workspace, then verify every table and
//! column referenced by a constant-folded statement against it — a typo'd
//! column in one of the six backends fails the gate instead of surfacing
//! as a runtime error.
//!
//! Dynamic names are exempt by construction: a fold placeholder
//! (`lint_hole_*`) in table position makes the reference unverifiable, a
//! placeholder column definition marks the table *open* (its column set
//! is not fully known), and unqualified columns are only checked when the
//! statement reads exactly one known, closed table.

use std::collections::{BTreeMap, BTreeSet};

use reldb::sql::ast::{Expr, SelectItem, SelectStmt, Statement, TableRef};

use super::constsql::FoldedStmt;
use super::strings::is_hole_name;

/// One identifier that failed the cross-check.
#[derive(Debug, Clone)]
pub struct IdentFinding {
    pub file: String,
    pub line: u32,
    /// `unknown-table` or `unknown-column`.
    pub kind: &'static str,
    /// The offending identifier.
    pub name: String,
    /// The table the column was checked against (empty for tables).
    pub table: String,
    pub allowlisted: bool,
}

impl IdentFinding {
    /// The allowlist key for this finding: `<file>:<name>`.
    pub fn key(&self) -> String {
        format!("{}:{}", self.file, self.name)
    }
}

/// What the catalog knows about one table.
#[derive(Debug, Default)]
struct TableInfo {
    columns: BTreeSet<String>,
    /// True when the DDL contained a placeholder column (dynamic column
    /// set — membership checks are skipped).
    open: bool,
}

/// The DDL catalog plus per-statement reference checking.
pub struct Catalog {
    tables: BTreeMap<String, TableInfo>,
}

impl Catalog {
    /// Build from every constant `CREATE TABLE` in the folded corpus.
    pub fn build(stmts: &[FoldedStmt]) -> Catalog {
        let mut tables: BTreeMap<String, TableInfo> = BTreeMap::new();
        for fs in stmts {
            let Statement::CreateTable { name, columns, .. } = &fs.stmt else {
                continue;
            };
            if is_hole_name(name) {
                continue; // dynamically named table: not catalogable
            }
            let info = tables.entry(name.clone()).or_default();
            for c in columns {
                if is_hole_name(&c.name) {
                    info.open = true;
                } else {
                    info.columns.insert(c.name.clone());
                }
            }
        }
        Catalog { tables }
    }

    /// Number of cataloged tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Check every folded statement's references against the catalog.
    pub fn check(&self, stmts: &[FoldedStmt]) -> Vec<IdentFinding> {
        let mut out = Vec::new();
        for fs in stmts {
            let mut ck = Checker {
                cat: self,
                file: &fs.file,
                line: fs.line,
                out: &mut out,
            };
            ck.statement(&fs.stmt);
        }
        // One finding per (file, kind, name, table) — the same typo on
        // many lines is one fix.
        let mut seen = BTreeSet::new();
        out.retain(|f| seen.insert((f.file.clone(), f.kind, f.name.clone(), f.table.clone())));
        out
    }
}

/// Per-statement reference walker.
struct Checker<'a> {
    cat: &'a Catalog,
    file: &'a str,
    line: u32,
    out: &'a mut Vec<IdentFinding>,
}

impl Checker<'_> {
    fn statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable { .. } => {}
            Statement::CreateIndex { table, columns, .. } => {
                if self.table_known(table) {
                    for c in columns {
                        self.column(table, c);
                    }
                }
            }
            Statement::DropTable { name, if_exists } => {
                if !if_exists {
                    self.table_known(name);
                }
            }
            Statement::Insert { table, columns, .. } => {
                if self.table_known(table) {
                    for c in columns.iter().flatten() {
                        self.column(table, c);
                    }
                }
            }
            Statement::Delete { table, predicate } => {
                if self.table_known(table) {
                    let scope = Scope::single(table);
                    if let Some(p) = predicate {
                        self.expr(p, &scope);
                    }
                }
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                if self.table_known(table) {
                    let scope = Scope::single(table);
                    for (c, e) in assignments {
                        self.column(table, c);
                        self.expr(e, &scope);
                    }
                    if let Some(p) = predicate {
                        self.expr(p, &scope);
                    }
                }
            }
            Statement::Select(s) => self.select(s),
            Statement::Explain { stmt, .. } => self.statement(stmt),
        }
    }

    fn select(&mut self, s: &SelectStmt) {
        let mut scope = Scope::default();
        if let Some(from) = &s.from {
            self.table_ref(from, &mut scope);
        }
        for item in &s.projections {
            if let SelectItem::Expr { expr, .. } = item {
                self.expr(expr, &scope);
            }
        }
        for e in s
            .predicate
            .iter()
            .chain(s.group_by.iter())
            .chain(s.having.iter())
            .chain(s.order_by.iter().map(|(e, _)| e))
        {
            self.expr(e, &scope);
        }
        if let Some(u) = &s.union_all {
            self.select(u);
        }
    }

    fn table_ref(&mut self, t: &TableRef, scope: &mut Scope) {
        match t {
            TableRef::Table { name, alias } => {
                let known = self.table_known(name);
                scope.add(alias.as_deref().unwrap_or(name), name, known);
            }
            TableRef::Subquery { query, .. } => self.select(query),
            TableRef::Join {
                left, right, on, ..
            } => {
                self.table_ref(left, scope);
                self.table_ref(right, scope);
                if let Some(on) = on {
                    // The ON clause sees everything bound so far.
                    let snap = scope.clone();
                    self.expr(on, &snap);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr, scope: &Scope) {
        match e {
            Expr::Column { qualifier, name } => {
                if is_hole_name(name) {
                    return;
                }
                match qualifier {
                    Some(q) => {
                        if let Some(Some(table)) = scope.lookup(q) {
                            let table = table.to_string();
                            self.column(&table, name);
                        }
                        // Unknown qualifier: dynamic table or subquery
                        // alias — nothing to check against.
                    }
                    None => {
                        if let Some(table) = scope.sole_known_table() {
                            let table = table.to_string();
                            self.column(&table, name);
                        }
                    }
                }
            }
            Expr::Binary { left, right, .. } => {
                self.expr(left, scope);
                self.expr(right, scope);
            }
            Expr::Unary { expr, .. } => self.expr(expr, scope),
            Expr::Function { args, .. } => {
                for a in args {
                    self.expr(a, scope);
                }
            }
            Expr::IsNull { expr, .. } => self.expr(expr, scope),
            Expr::Between {
                expr, low, high, ..
            } => {
                self.expr(expr, scope);
                self.expr(low, scope);
                self.expr(high, scope);
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr, scope);
                for e in list {
                    self.expr(e, scope);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr, scope);
                self.expr(pattern, scope);
            }
            Expr::Literal(_) | Expr::Star => {}
        }
    }

    /// Record a table reference; returns true when the catalog knows it.
    fn table_known(&mut self, name: &str) -> bool {
        if is_hole_name(name) {
            return false;
        }
        if self.cat.tables.contains_key(name) {
            return true;
        }
        self.out.push(IdentFinding {
            file: self.file.to_string(),
            line: self.line,
            kind: "unknown-table",
            name: name.to_string(),
            table: String::new(),
            allowlisted: false,
        });
        false
    }

    /// Check a column against a known table (skipped for open tables).
    fn column(&mut self, table: &str, col: &str) {
        if is_hole_name(col) {
            return;
        }
        let Some(info) = self.cat.tables.get(table) else {
            return;
        };
        if info.open || info.columns.contains(col) {
            return;
        }
        self.out.push(IdentFinding {
            file: self.file.to_string(),
            line: self.line,
            kind: "unknown-column",
            name: col.to_string(),
            table: table.to_string(),
            allowlisted: false,
        });
    }
}

/// Alias → (table, known) bindings for one statement.
#[derive(Debug, Default, Clone)]
struct Scope {
    bindings: Vec<(String, String, bool)>,
}

impl Scope {
    fn single(table: &str) -> Scope {
        let mut s = Scope::default();
        s.add(table, table, true);
        s
    }

    fn add(&mut self, alias: &str, table: &str, known: bool) {
        self.bindings
            .push((alias.to_string(), table.to_string(), known));
    }

    /// Resolve a qualifier: `Some(Some(table))` when it names a known
    /// table, `Some(None)` when it names a dynamic one, `None` when the
    /// qualifier is unbound (not checkable).
    fn lookup(&self, alias: &str) -> Option<Option<&str>> {
        self.bindings
            .iter()
            .find(|(a, _, _)| a == alias)
            .map(|(_, t, known)| if *known { Some(t.as_str()) } else { None })
    }

    /// The statement's only table, when there is exactly one and it is
    /// known — the precondition for checking unqualified columns.
    fn sole_known_table(&self) -> Option<&str> {
        match self.bindings.as_slice() {
            [(_, t, true)] => Some(t.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conc::Workspace;
    use crate::sqlflow::constsql;

    fn check_src(src: &str) -> Vec<IdentFinding> {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", src)]);
        let consts = constsql::string_consts(&ws);
        let scan = constsql::scan(&ws, &consts);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
        Catalog::build(&scan.stmts).check(&scan.stmts)
    }

    #[test]
    fn typod_column_is_found() {
        let f = check_src(
            r#"fn f(db: &Db, doc: i64) {
                db.execute("CREATE TABLE inode (doc INT, pre INT, size INT)");
                db.query(&format!("SELECT pre, sizee FROM inode WHERE doc = {doc}"));
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "unknown-column");
        assert_eq!(f[0].name, "sizee");
        assert_eq!(f[0].table, "inode");
    }

    #[test]
    fn aliases_and_joins_resolve() {
        let f = check_src(
            r#"fn f(db: &Db) {
                db.execute("CREATE TABLE edge (doc INT, source INT, target INT)");
                db.query("SELECT t0.target FROM edge t0, edge t1 WHERE t1.source = t0.target");
                db.query("SELECT t0.target FROM edge t0 LEFT JOIN edge t1 ON t1.sourc = t0.target");
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].name, "sourc");
    }

    #[test]
    fn dynamic_tables_and_open_columns_are_exempt() {
        let f = check_src(
            r#"fn f(db: &Db, tbl: &str, cols: &str) {
                db.execute(&format!("CREATE TABLE {tbl} (doc INT, pre INT)"));
                db.execute(&format!("CREATE TABLE univ ({cols})"));
                db.query(&format!("SELECT anything FROM {tbl} WHERE doc = 1"));
                db.query("SELECT t_whatever FROM univ");
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_table_is_found() {
        let f = check_src(
            r#"fn f(db: &Db) {
                db.execute("CREATE TABLE inode (doc INT)");
                db.query("SELECT doc FROM inodes LIMIT 1");
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "unknown-table");
        assert_eq!(f[0].name, "inodes");
    }
}
