//! Intraprocedural string-flow taint analysis over the SQL-assembling
//! layers. Sources are the places untrusted text enters a translation
//! function — document text, element/attribute names, query literals —
//! modelled as (a) a vocabulary of binding names that carry such text and
//! (b) schema/text-returning calls whose results taint `let` bindings.
//! Sinks are the calls whose string argument becomes SQL: statement
//! execution, builder fragments, and the engine parser. The only
//! sanitizer is the blessed quoting seam (`sql_lit`/`sql_ident` in
//! `core::sqlgen`, re-exported from `reldb::sql::quote`): a balanced-paren
//! span under either call clears taint. Every flow that bypasses the seam
//! is reported with its full file:line chain from source to sink.
//!
//! The analysis is token-level and deliberately over-approximate: a
//! vocabulary name is tainted at use unless the function's signature
//! proves it non-stringy or a `let` rebinds it from a clean expression.
//! False positives route through the seam (the fix is the same as for a
//! true positive) or, when genuinely safe-by-construction, earn a
//! `SQL_ALLOWLIST.txt` entry with a justification.

use crate::conc::{ParsedFile, Workspace};
use crate::items::FnDef;
use crate::lexer::{Tok, TokKind};

use super::strings;

/// Binding names assumed to carry untrusted text wherever they appear.
/// These are the workspace's conventional names for document text, node
/// labels, table/registry names, and query-supplied strings.
const SOURCE_VOCAB: &[&str] = &[
    "name",
    "label",
    "needle",
    "key",
    "parent_key",
    "anchor",
    "tbl",
    "table",
    "stem",
    "pattern",
    "query_text",
    "doc_name",
    "s",
    "text",
    "value",
    "path",
];

/// Calls whose return value is schema- or document-derived text: a `let`
/// binding whose initializer calls one of these is tainted.
const SOURCE_CALLS: &[&str] = &[
    "element_table",
    "attribute_table",
    "all_element_tables",
    "row_text",
    "as_text",
    "concrete_paths",
    "elem_stem",
    "stems",
    "label_columns",
];

/// Method-call sinks: `.name(` whose string argument becomes SQL text.
const METHOD_SINKS: &[&str] = &[
    "execute",
    "query",
    "query_readonly",
    "query_readonly_limited",
    "query_streaming",
    "query_profiled",
    "query_profiled_limited",
    "cond",
    "add_table",
    "add_table_with",
    "render",
];

/// Free-function sinks (path-qualified calls included). `add_join` is
/// deliberately absent: it routes its table argument through `sql_ident`
/// inside its own body, where the builder method sinks verify it.
const FREE_SINKS: &[&str] = &["parse_statement", "parse_script"];

/// The blessed sanitizers: a balanced-paren span under either call is
/// quoted/validated text, so taint inside it does not reach the sink.
const SANITIZERS: &[&str] = &["sql_lit", "sql_ident"];

/// Accumulator methods that propagate taint from argument to receiver.
const PROPAGATORS: &[&str] = &["push", "push_str", "extend", "insert_str"];

/// One source→sink flow that bypasses the quoting seam.
#[derive(Debug, Clone)]
pub struct FlowFinding {
    pub file: String,
    pub fn_name: String,
    /// The root source binding or call (whitespace-free, for the key).
    pub source: String,
    pub source_line: u32,
    /// The sink call name.
    pub sink: String,
    pub sink_line: u32,
    /// Human-readable steps, `file:line: …` at every hop.
    pub chain: Vec<String>,
    pub allowlisted: bool,
}

impl FlowFinding {
    /// The allowlist key: `<file>:<fn>:<source>-><sink>`.
    pub fn key(&self) -> String {
        format!(
            "{}:{}:{}->{}",
            self.file, self.fn_name, self.source, self.sink
        )
    }

    /// The full chain as one indented block for diagnostics.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "`{}` reaches sink `{}` in {} ({}:{})",
            self.source, self.sink, self.fn_name, self.file, self.sink_line
        );
        for step in &self.chain {
            s.push_str("\n    ");
            s.push_str(step);
        }
        s
    }
}

/// Files the taint analysis covers: every layer that assembles SQL text
/// outside the seam itself (`sqlgen.rs` is the seam's home and exempt).
pub fn in_scope(file: &str) -> bool {
    let f = file.replace('\\', "/");
    if f.ends_with("/sqlgen.rs") {
        return false;
    }
    f.contains("crates/core/src/compile/")
        || f.ends_with("crates/core/src/update.rs")
        || f.ends_with("crates/core/src/store.rs")
        || f.ends_with("crates/core/src/publish.rs")
        || f.ends_with("crates/shredder/src/labels.rs")
        || f.ends_with("crates/shredder/src/docstore.rs")
        || f.ends_with("crates/shredder/src/pathsummary.rs")
}

/// How a binding became tainted: the root source plus the chain of hops,
/// each pre-formatted with file:line.
#[derive(Debug, Clone)]
struct Origin {
    root: String,
    root_line: u32,
    chain: Vec<String>,
}

/// Run the taint pass over every in-scope function. Also reports the
/// number of functions scanned (for the stats block).
pub fn analyze(ws: &Workspace) -> (Vec<FlowFinding>, usize) {
    let mut flows = Vec::new();
    let mut scanned = 0usize;
    for pf in &ws.files {
        if !in_scope(&pf.file) {
            continue;
        }
        for f in &pf.items.fns {
            if pf.test_mask.get(f.body.0).copied().unwrap_or(false) {
                continue; // test code is exempt, like every other analysis
            }
            scanned += 1;
            scan_fn(pf, f, &mut flows);
        }
    }
    // One finding per (fn, root source, sink line): the same tainted name
    // used twice in one argument list is one flow.
    let mut seen = std::collections::BTreeSet::new();
    flows.retain(|fl| {
        seen.insert((
            fl.file.clone(),
            fl.fn_name.clone(),
            fl.source.clone(),
            fl.sink_line,
        ))
    });
    (flows, scanned)
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Per-function taint state and scanning.
struct FnScan<'a> {
    pf: &'a ParsedFile,
    f: &'a FnDef,
    /// Workspace-relative path, used in chains and finding keys.
    file: String,
    taint: std::collections::BTreeMap<String, Origin>,
}

fn scan_fn(pf: &ParsedFile, f: &FnDef, flows: &mut Vec<FlowFinding>) {
    let mut st = FnScan {
        pf,
        f,
        file: super::rel_path(&pf.file),
        taint: std::collections::BTreeMap::new(),
    };
    // Vocabulary names start tainted…
    for &v in SOURCE_VOCAB {
        st.taint.insert(
            v.to_string(),
            Origin {
                root: v.to_string(),
                root_line: f.line,
                chain: vec![format!(
                    "{}:{}: `{}` carries untrusted text in `{}` (source vocabulary)",
                    st.file, f.line, v, f.name
                )],
            },
        );
    }
    // …unless the signature proves them non-stringy (`doc: i64`). A
    // stringy parameter upgrades the origin to name its declaration.
    for p in &f.params {
        if !SOURCE_VOCAB.contains(&p.name.as_str()) {
            continue;
        }
        if p.is_stringy() {
            st.taint.insert(
                p.name.clone(),
                Origin {
                    root: p.name.clone(),
                    root_line: f.line,
                    chain: vec![format!(
                        "{}:{}: parameter `{}: {}` of `{}` carries untrusted text",
                        st.file, f.line, p.name, p.ty, f.name
                    )],
                },
            );
        } else {
            st.taint.remove(&p.name);
        }
    }

    let toks = &pf.toks;
    let (start, end) = f.body;
    let mut i = start;
    while i < end.min(toks.len()) {
        // Sanitized spans contribute nothing anywhere.
        if let Some(past) = sanitizer_span(toks, i, end) {
            i = past;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident && (t.text == "let" || t.text == "for") {
            // `if let` / `while let` initializers end at the block `{`,
            // like `for` — a statement `let` runs to its `;`.
            let conditional = t.text == "for"
                || (i > start
                    && toks[i - 1].kind == TokKind::Ident
                    && (toks[i - 1].text == "if" || toks[i - 1].text == "while"));
            i = st.binding(i, end, conditional);
            continue;
        }
        // Propagation: `recv.push_str(arg)` with a tainted arg taints recv.
        if t.kind == TokKind::Ident
            && PROPAGATORS.contains(&t.text.as_str())
            && i > start
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
        {
            let (_, cause) = st.region_taint(i + 2, end);
            if let Some((cause, name, line)) = cause {
                if let Some(recv) = receiver_name(toks, i - 1, start) {
                    let mut chain = cause.chain.clone();
                    chain.push(format!(
                        "{}:{}: tainted `{}` flows into `{}` via `.{}(`",
                        st.file, line, name, recv, t.text
                    ));
                    st.taint.insert(
                        recv,
                        Origin {
                            root: cause.root.clone(),
                            root_line: cause.root_line,
                            chain,
                        },
                    );
                }
            }
            i += 2; // resume inside the args so nested sinks are still seen
            continue;
        }
        // `write!(recv, "…", args)` / `writeln!` propagate the same way.
        if t.kind == TokKind::Ident
            && (t.text == "write" || t.text == "writeln")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, "("))
        {
            let recv = toks
                .get(i + 3)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            let (_, cause) = st.region_taint(i + 3, end);
            if let (Some(recv), Some((cause, name, line))) = (recv, cause) {
                if recv != name {
                    let mut chain = cause.chain.clone();
                    chain.push(format!(
                        "{}:{}: tainted `{}` flows into `{}` via `write!`",
                        st.file, line, name, recv
                    ));
                    st.taint.insert(
                        recv,
                        Origin {
                            root: cause.root.clone(),
                            root_line: cause.root_line,
                            chain,
                        },
                    );
                }
            }
            i += 3;
            continue;
        }
        // Sinks: scan the argument region for unsanitized tainted uses.
        if let Some(sink) = sink_at(toks, i, start) {
            let args_start = i + 1;
            let mut hits = Vec::new();
            st.region_uses(args_start + 1, end, &mut hits);
            for (origin, name, line) in hits {
                let mut chain = origin.chain.clone();
                chain.push(format!(
                    "{}:{}: tainted `{}` reaches SQL sink `{}(` without passing \
                     through sql_lit/sql_ident",
                    st.file, line, name, sink
                ));
                flows.push(FlowFinding {
                    file: st.file.clone(),
                    fn_name: st.f.name.clone(),
                    source: origin.root.clone(),
                    source_line: origin.root_line,
                    sink: sink.to_string(),
                    sink_line: t.line,
                    chain,
                    allowlisted: false,
                });
            }
        }
        i += 1;
    }
}

/// If `i` starts a sanitizer call (`sql_lit(` / `sql_ident(`), return the
/// index just past its balanced closing paren.
fn sanitizer_span(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident || !SANITIZERS.contains(&t.text.as_str()) {
        return None;
    }
    if !toks.get(i + 1).is_some_and(|n| is_punct(n, "(")) {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 2;
    while j < end.min(toks.len()) && depth > 0 {
        if is_punct(&toks[j], "(") {
            depth += 1;
        } else if is_punct(&toks[j], ")") {
            depth -= 1;
        }
        j += 1;
    }
    Some(j)
}

/// The sink name if token `i` is a sink call: a method sink preceded by
/// `.`, or a free sink (possibly path-qualified), followed by `(`.
fn sink_at(toks: &[Tok], i: usize, start: usize) -> Option<&str> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| is_punct(n, "(")) {
        return None;
    }
    let name = t.text.as_str();
    let after_dot = i > start && is_punct(&toks[i - 1], ".");
    if METHOD_SINKS.contains(&name) && after_dot {
        return Some(name);
    }
    if FREE_SINKS.contains(&name) && !after_dot {
        return Some(name);
    }
    None
}

/// Walk back over a `.`-separated chain to the receiver's own name:
/// for `self.sql.push_str(` at the `.` before `push_str`, yields `sql`.
fn receiver_name(toks: &[Tok], dot: usize, start: usize) -> Option<String> {
    if dot <= start {
        return None;
    }
    let t = &toks[dot - 1];
    if t.kind == TokKind::Ident && t.text != "self" {
        Some(t.text.clone())
    } else {
        None
    }
}

impl FnScan<'_> {
    /// Handle a `let`/`for` binding at token `i`; returns where the main
    /// scan should resume (the start of the initializer, so sinks inside
    /// it are still visited). `conditional` marks forms whose initializer
    /// ends at a block `{` (`for`, `if let`, `while let`).
    fn binding(&mut self, i: usize, end: usize, conditional: bool) -> usize {
        let toks = &self.pf.toks;
        let kw = toks[i].text.clone();
        // Collect the bound names: plain idents in the pattern, skipping
        // `mut`/`ref` and constructor names (`Some(x)` binds `x`).
        let mut names = Vec::new();
        let mut j = i + 1;
        let mut in_annotation = false; // after a lone `:`, until the `=`
        while j < end.min(toks.len()) {
            let t = &toks[j];
            if kw == "let" {
                if is_punct(t, "=") || (!in_annotation && is_punct(t, ";")) {
                    break;
                }
            } else if !in_annotation && t.kind == TokKind::Ident && t.text == "in" {
                break;
            }
            if is_punct(t, ":") && !toks.get(j + 1).is_some_and(|n| is_punct(n, ":")) {
                in_annotation = true;
            } else if t.kind == TokKind::Ident
                && !in_annotation
                && t.text != "mut"
                && t.text != "ref"
                && !toks
                    .get(j + 1)
                    .is_some_and(|n| is_punct(n, "(") || is_punct(n, "{") || is_punct(n, ":"))
                && !(j > 0 && is_punct(&toks[j - 1], ":"))
            {
                names.push(t.text.clone());
            }
            j += 1;
        }
        if j >= end.min(toks.len()) || is_punct(&toks[j], ";") {
            return j + 1; // `let x;` — uninitialized, nothing to decide
        }
        let rhs_start = j + 1;
        let rhs_end = rhs_extent(toks, rhs_start, end, conditional);
        // Does the initializer carry taint?
        let (_, cause) = self.region_taint_bounded(rhs_start, rhs_end);
        match cause {
            Some((origin, from, at)) => {
                for n in &names {
                    let mut chain = origin.chain.clone();
                    chain.push(format!(
                        "{}:{}: tainted `{}` flows into `{}` ({} binding)",
                        self.file, at, from, n, kw
                    ));
                    self.taint.insert(
                        n.clone(),
                        Origin {
                            root: origin.root.clone(),
                            root_line: origin.root_line,
                            chain,
                        },
                    );
                }
            }
            None => {
                // Clean initializer: rebinding launders a vocabulary name
                // (`let n = recs.len() as i64` is not text).
                for n in &names {
                    self.taint.remove(n);
                }
            }
        }
        rhs_start
    }

    /// Scan `[from, …)` up to the end of the enclosing paren region for
    /// the first tainted use; returns (region end, Some cause).
    fn region_taint(&self, from: usize, end: usize) -> (usize, Option<(Origin, String, u32)>) {
        let to = paren_region_end(&self.pf.toks, from, end);
        let (e, c) = self.region_taint_bounded(from, to);
        (e, c)
    }

    /// First tainted use in `[from, to)` — a tainted ident, a tainted
    /// format-string hole, or a source call — skipping sanitizer spans.
    fn region_taint_bounded(
        &self,
        from: usize,
        to: usize,
    ) -> (usize, Option<(Origin, String, u32)>) {
        let mut hits = Vec::new();
        self.region_uses_impl(from, to, &mut hits, true);
        let cause = hits.into_iter().next();
        (to, cause)
    }

    /// All tainted uses in a sink's SQL argument: the first top-level
    /// argument of the paren region opening just before `from`. Later
    /// arguments (row callbacks, flags) never become SQL text.
    fn region_uses(&self, from: usize, end: usize, out: &mut Vec<(Origin, String, u32)>) {
        let to = first_arg_end(&self.pf.toks, from, end);
        self.region_uses_impl(from, to, out, false);
    }

    fn region_uses_impl(
        &self,
        from: usize,
        to: usize,
        out: &mut Vec<(Origin, String, u32)>,
        include_source_calls: bool,
    ) {
        let toks = &self.pf.toks;
        let mut j = from;
        while j < to.min(toks.len()) {
            if let Some(past) = sanitizer_span(toks, j, to) {
                j = past;
                continue;
            }
            let t = &toks[j];
            if t.kind == TokKind::Str {
                // Named format holes are uses of the named binding.
                if let Some(content) = strings::decode(&t.text) {
                    for p in strings::split_format(&content) {
                        if let strings::Piece::Hole(Some(name)) = p {
                            if let Some(o) = self.taint.get(&name) {
                                out.push((o.clone(), name, t.line));
                            }
                        }
                    }
                }
                j += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                let followed_call = toks.get(j + 1).is_some_and(|n| is_punct(n, "("));
                if include_source_calls && followed_call && SOURCE_CALLS.contains(&t.text.as_str())
                {
                    out.push((
                        Origin {
                            root: format!("{}()", t.text),
                            root_line: t.line,
                            chain: vec![format!(
                                "{}:{}: `{}()` returns schema/document text",
                                self.file, t.line, t.text
                            )],
                        },
                        format!("{}()", t.text),
                        t.line,
                    ));
                    j += 1;
                    continue;
                }
                let path_qualified = j > 0 && is_punct(&toks[j - 1], ":");
                let field_or_spec = toks.get(j + 1).is_some_and(|n| is_punct(n, ":"));
                if !followed_call && !path_qualified && !field_or_spec {
                    if let Some(o) = self.taint.get(&t.text) {
                        out.push((o.clone(), t.text.clone(), t.line));
                    }
                }
            }
            j += 1;
        }
    }
}

/// End of the first top-level argument in the paren region whose opening
/// `(` sits just before `from`: the first `,` outside any nested parens,
/// brackets, or braces, or the region's closing `)`.
fn first_arg_end(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut paren = 1isize;
    let mut nest = 0isize; // `[`/`{` nesting
    let mut j = from;
    while j < end.min(toks.len()) {
        let t = &toks[j];
        if is_punct(t, "(") {
            paren += 1;
        } else if is_punct(t, ")") {
            paren -= 1;
            if paren == 0 {
                return j;
            }
        } else if is_punct(t, "[") || is_punct(t, "{") {
            nest += 1;
        } else if is_punct(t, "]") || is_punct(t, "}") {
            nest -= 1;
        } else if is_punct(t, ",") && paren == 1 && nest == 0 {
            return j;
        }
        j += 1;
    }
    j
}

/// End of the balanced paren region whose opening `(` sits just before
/// `from` (i.e. `from` is the first token inside).
fn paren_region_end(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 1isize;
    let mut j = from;
    while j < end.min(toks.len()) {
        if is_punct(&toks[j], "(") {
            depth += 1;
        } else if is_punct(&toks[j], ")") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    j
}

/// Extent of a binding initializer: to the `;` closing the statement for
/// a plain `let` (brace-aware, so `match … { … };` folds in), or to the
/// `{` opening the body for the conditional forms (`for`, `if let`,
/// `while let`).
fn rhs_extent(toks: &[Tok], from: usize, end: usize, conditional: bool) -> usize {
    let mut paren = 0isize;
    let mut brace = 0isize;
    let mut j = from;
    while j < end.min(toks.len()) {
        let t = &toks[j];
        if is_punct(t, "(") || is_punct(t, "[") {
            paren += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            if paren == 0 {
                return j; // closing something outside the initializer
            }
            paren -= 1;
        } else if is_punct(t, "{") {
            if conditional && paren == 0 && brace == 0 {
                return j; // the loop/if/while body
            }
            brace += 1;
        } else if is_punct(t, "}") {
            if brace == 0 {
                return j;
            }
            brace -= 1;
        } else if is_punct(t, ";") && paren == 0 && brace == 0 {
            return j;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(src: &str) -> Vec<FlowFinding> {
        let ws = Workspace::from_sources(&[("crates/core/src/compile/fix.rs", src)]);
        analyze(&ws).0
    }

    #[test]
    fn raw_interpolation_reaches_sink() {
        let f = flows(
            r#"fn find(db: &Db, name: &str) {
                db.query(&format!("SELECT * FROM edge WHERE label = '{name}'"));
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].source, "name");
        assert_eq!(f[0].sink, "query");
        assert_eq!(f[0].sink_line, 2);
        assert!(f[0].chain.iter().any(|s| s.contains("parameter `name")));
        assert!(f[0]
            .chain
            .last()
            .unwrap()
            .contains("crates/core/src/compile/fix.rs:2"));
    }

    #[test]
    fn seam_clears_taint() {
        let f = flows(
            r#"fn find(db: &Db, name: &str) {
                db.query(&format!("SELECT * FROM edge WHERE label = {}", sql_lit(name)));
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_stringy_param_is_clean() {
        let f = flows(
            r#"fn find(db: &Db, table: i64, name: u32) {
                db.query(&format!("SELECT * FROM t WHERE a = {table} AND b = {name}"));
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn accumulator_propagates_and_let_launders() {
        let f = flows(
            r#"fn build(db: &Db, label: &str, recs: &[R]) {
                let mut sql = String::from("SELECT * FROM t WHERE x = ");
                sql.push_str(label);
                let n = recs.len() as i64;
                db.execute(&sql);
                db.execute(&format!("DELETE FROM t WHERE n = {n}"));
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].source, "label");
        assert_eq!(f[0].sink, "execute");
        assert!(f[0].chain.iter().any(|s| s.contains("flows into `sql`")));
    }

    #[test]
    fn source_call_taints_binding() {
        let f = flows(
            r#"fn publish(db: &Db, scheme: &S) {
                let t = scheme.element_table(7);
                db.query_streaming(&format!("SELECT * FROM {t} WHERE doc = 1"));
            }"#,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].source, "element_table()");
        assert!(f[0].chain[0].contains("element_table()"));
    }

    #[test]
    fn sanitized_let_then_sink_is_clean() {
        let f = flows(
            r#"fn publish(db: &Db, scheme: &S) {
                let t = sql_ident(&scheme.element_table(7));
                db.query_streaming(&format!("SELECT * FROM {t} WHERE doc = 1"));
            }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_and_out_of_scope_files_are_exempt() {
        let hostile = r#"#[cfg(test)]
            mod tests {
                #[test]
                fn t(db: &Db, name: &str) { db.query(&format!("SELECT {name}")); }
            }"#;
        assert!(flows(hostile).is_empty());
        let ws = Workspace::from_sources(&[(
            "crates/obs/src/report.rs",
            r#"fn f(db: &Db, name: &str) { db.query(&format!("SELECT '{name}'")); }"#,
        )]);
        assert!(analyze(&ws).0.is_empty());
    }
}
