//! String-literal decoding and format-string modelling for the SQL
//! analyses: turn a raw `Str` token back into its contents, split it into
//! literal text and `{hole}` pieces, and constant-fold a SQL format
//! string into parseable text by substituting context-appropriate
//! placeholders for the holes.

use std::collections::BTreeMap;

/// Decoded contents of a string-like token. Char literals (irrelevant to
/// SQL) and byte strings decode too; the caller filters by content.
pub fn decode(raw: &str) -> Option<String> {
    let mut s = raw;
    if let Some(rest) = s.strip_prefix('b') {
        s = rest;
    }
    if let Some(rest) = s.strip_prefix('r') {
        // Raw string: strip hashes and quotes, contents are verbatim.
        let rest = rest.trim_start_matches('#');
        let rest = rest.strip_prefix('"')?;
        let rest = rest.trim_end_matches('#');
        let rest = rest.strip_suffix('"').unwrap_or(rest);
        return Some(rest.to_string());
    }
    if s.starts_with('\'') {
        return None; // char literal
    }
    let s = s.strip_prefix('"')?;
    let s = s.strip_suffix('"').unwrap_or(s);
    // Unescape the forms rustc accepts in ordinary strings.
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('\'') => out.push('\''),
            Some('"') => out.push('"'),
            Some('\n') => {
                // Line continuation: skip following indentation.
                while chars.peek().is_some_and(|c| c.is_whitespace()) {
                    chars.next();
                }
            }
            Some('x') => {
                let h: String = chars.by_ref().take(2).collect();
                if let Ok(v) = u8::from_str_radix(&h, 16) {
                    out.push(v as char);
                }
            }
            // \u{XXXX}
            Some('u') if chars.peek() == Some(&'{') => {
                chars.next();
                let mut h = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    h.push(c);
                }
                if let Some(v) = u32::from_str_radix(&h, 16).ok().and_then(char::from_u32) {
                    out.push(v);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    Some(out)
}

/// One piece of a format string: literal text, or a hole with its
/// argument name when the hole names one (`{tbl}`; `{}`/`{0}`/`{:?}`
/// carry `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    Text(String),
    Hole(Option<String>),
}

/// Split decoded string contents into text and holes, honoring `{{`/`}}`
/// escapes. Everything before a `:` format spec counts as the name; a
/// name that is not a plain identifier (indices, nested fields) is
/// reported as `None`.
pub fn split_format(content: &str) -> Vec<Piece> {
    let mut out = Vec::new();
    let mut text = String::new();
    let mut chars = content.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                text.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                text.push('}');
            }
            '{' => {
                if !text.is_empty() {
                    out.push(Piece::Text(std::mem::take(&mut text)));
                }
                let mut inner = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    inner.push(c);
                }
                let name = inner.split(':').next().unwrap_or("");
                let is_ident = !name.is_empty()
                    && !name.starts_with(|c: char| c.is_ascii_digit())
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                out.push(Piece::Hole(if is_ident {
                    Some(name.to_string())
                } else {
                    None
                }));
            }
            c => text.push(c),
        }
    }
    if !text.is_empty() {
        out.push(Piece::Text(text));
    }
    out
}

/// Placeholder identifier for hole `n` in folded SQL. Chosen to be a
/// valid identifier to the engine's lexer and unmistakable in catalogs —
/// the identifier cross-check treats any `lint_hole_*` name as dynamic.
pub fn hole_name(n: usize) -> String {
    format!("lint_hole_{n}")
}

/// True when `name` is a fold placeholder.
pub fn is_hole_name(name: &str) -> bool {
    name.starts_with("lint_hole_")
}

/// Constant-fold a SQL format string: substitute each hole with a
/// placeholder chosen from its SQL context so the folded text is
/// parseable when the literal skeleton is well-formed.
///
/// Context rules, driven by the folded text so far:
/// - inside a single-quoted literal → plain text (`X`);
/// - a hole naming a workspace `const NAME: &str = "…"` → the const's
///   value, verbatim (so `{DOCS_TABLE}` folds to a checkable name);
/// - after FROM/JOIN/INTO/TABLE/INDEX/ON/EXISTS or a `.` → an identifier
///   placeholder;
/// - first thing inside the parens of CREATE TABLE → a column definition;
/// - after an operator, comparison keyword, comma, or opening paren → `1`;
/// - after a complete expression or identifier (a trailing-clause hole
///   like `{filter}`) → nothing.
pub fn fold_sql(pieces: &[Piece], consts: &BTreeMap<String, String>) -> String {
    let mut out = String::new();
    let mut holes = 0usize;
    for p in pieces {
        match p {
            Piece::Text(t) => out.push_str(t),
            Piece::Hole(name) => {
                if let Some(val) = name.as_deref().and_then(|n| consts.get(n)) {
                    out.push_str(val);
                    continue;
                }
                let sub = hole_substitute(&out, &mut holes);
                out.push_str(&sub);
            }
        }
    }
    out
}

/// The substitution for one hole, given everything folded before it.
fn hole_substitute(before: &str, holes: &mut usize) -> String {
    if inside_sql_string(before) {
        return "X".to_string();
    }
    let trimmed = before.trim_end();
    let last_char = trimmed.chars().last();
    let last_word = trimmed
        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .next()
        .unwrap_or("");
    let lw = last_word.to_ascii_uppercase();
    if matches!(
        lw.as_str(),
        "FROM" | "JOIN" | "INTO" | "TABLE" | "INDEX" | "ON" | "EXISTS" | "UPDATE"
    ) || last_char == Some('.')
    {
        let n = *holes;
        *holes += 1;
        return hole_name(n);
    }
    if last_char == Some('(') && starts_create_table(before) && paren_depth(before) == 1 {
        let n = *holes;
        *holes += 1;
        return format!("{} INT", hole_name(n));
    }
    if matches!(
        last_char,
        Some('=' | '<' | '>' | '(' | ',' | '+' | '-' | '*' | '/')
    ) || matches!(
        lw.as_str(),
        "LIKE"
            | "IN"
            | "AND"
            | "OR"
            | "NOT"
            | "WHERE"
            | "BY"
            | "THEN"
            | "WHEN"
            | "ELSE"
            | "SELECT"
            | "LIMIT"
            | "OFFSET"
            | "BETWEEN"
            | "VALUES"
            | "SET"
            | "HAVING"
            | "DISTINCT"
            | "ALL"
            | "UNION"
            | "IS"
    ) {
        return "1".to_string();
    }
    if last_char.is_some_and(|c| c.is_ascii_alphanumeric() || c == ')' || c == '_') {
        // Trailing-clause hole after a complete expression.
        return String::new();
    }
    "1".to_string()
}

/// True when an odd number of single quotes precede this point (`''`
/// doubling toggles twice, so the parity model is exact for the engine's
/// string syntax).
fn inside_sql_string(s: &str) -> bool {
    s.chars().filter(|&c| c == '\'').count() % 2 == 1
}

fn starts_create_table(s: &str) -> bool {
    let up = s.trim_start().to_ascii_uppercase();
    up.starts_with("CREATE TABLE")
}

fn paren_depth(s: &str) -> i32 {
    let mut d = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '\'' => in_str = !in_str,
            '(' if !in_str => d += 1,
            ')' if !in_str => d -= 1,
            _ => {}
        }
    }
    d
}

/// Paren and quote balance of folded text (string-literal aware);
/// fragments with unbalanced parens or an unterminated SQL string — the
/// closing token pushed separately — are skeleton builders, not
/// statements.
pub fn balanced(s: &str) -> bool {
    paren_depth(s) == 0 && !inside_sql_string(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_plain_and_raw() {
        assert_eq!(decode("\"a\\n'b\\\"\""), Some("a\n'b\"".to_string()));
        assert_eq!(decode("r#\"x \" y\"#"), Some("x \" y".to_string()));
        assert_eq!(decode("'c'"), None);
        assert_eq!(decode("b\"by\""), Some("by".to_string()));
    }

    #[test]
    fn decode_handles_line_continuation() {
        assert_eq!(
            decode("\"SELECT a \\\n     FROM t\""),
            Some("SELECT a FROM t".to_string())
        );
    }

    #[test]
    fn splits_holes_and_escapes() {
        let p = split_format("a {tbl} b {{lit}} {} {0} {x:?}");
        assert_eq!(
            p,
            vec![
                Piece::Text("a ".into()),
                Piece::Hole(Some("tbl".into())),
                Piece::Text(" b {lit} ".into()),
                Piece::Hole(None),
                Piece::Text(" ".into()),
                Piece::Hole(None),
                Piece::Text(" ".into()),
                Piece::Hole(Some("x".into())),
            ]
        );
    }

    fn fold(s: &str) -> String {
        fold_sql(&split_format(s), &BTreeMap::new())
    }

    #[test]
    fn folds_by_context() {
        assert_eq!(
            fold("SELECT source FROM {tbl} WHERE doc = {doc} AND src IN ({list})"),
            format!(
                "SELECT source FROM {} WHERE doc = 1 AND src IN (1)",
                hole_name(0)
            )
        );
        assert_eq!(
            fold("SELECT path FROM {}{filter}"),
            format!("SELECT path FROM {}", hole_name(0))
        );
        assert_eq!(
            fold("SELECT tbl FROM {} WHERE label = '{}' AND kind = '{}'"),
            format!(
                "SELECT tbl FROM {} WHERE label = 'X' AND kind = 'X'",
                hole_name(0)
            )
        );
        assert_eq!(
            fold("CREATE TABLE univ ({cols})"),
            format!("CREATE TABLE univ ({} INT)", hole_name(0))
        );
        assert_eq!(
            fold("CREATE INDEX {t}_src ON {t} (source, doc)"),
            format!(
                "CREATE INDEX {}_src ON {} (source, doc)",
                hole_name(0),
                hole_name(1)
            )
        );
    }

    #[test]
    fn const_holes_substitute_their_value() {
        let consts = BTreeMap::from([("DOCS_TABLE".to_string(), "xr_docs".to_string())]);
        assert_eq!(
            fold_sql(&split_format("SELECT doc FROM {DOCS_TABLE}"), &consts),
            "SELECT doc FROM xr_docs"
        );
    }

    #[test]
    fn balance_detects_fragments() {
        assert!(balanced("SELECT a FROM t WHERE x = 1"));
        assert!(!balanced("CREATE TABLE t (a INT, b INT"));
        assert!(balanced("WHERE x = '(' "));
    }
}
