//! SQL-construction analysis (`xmlrel-lint --sql`).
//!
//! The six translation backends assemble SQL as strings; the engine
//! executes whatever they produce. This module is the static gate that
//! keeps that surface injection-safe (DESIGN.md §16): three passes over
//! the same item-level parse the concurrency analyses use
//! ([`crate::conc::Workspace`]):
//!
//! - [`taint`] — intraprocedural string-flow taint analysis: untrusted
//!   text (document text, node labels, query literals) must pass through
//!   the `sql_lit`/`sql_ident` quoting seam before reaching an
//!   execute/parse/builder sink. Bypassing flows are reported as full
//!   file:line chains.
//! - [`constsql`] — constant-fragment parse check: literal-assembled SQL
//!   is constant-folded ([`strings`]) and parsed with `reldb::sql` at
//!   lint time, so a malformed keyword fails the gate before any test.
//! - [`idents`] — identifier/schema cross-check: table and column
//!   literals are verified against the DDL catalog recovered from the
//!   same fold, so a typo'd column in one backend fails the gate.
//!
//! Findings check against `SQL_ALLOWLIST.txt` at the workspace root, with
//! the same contract as `CONC_ALLOWLIST.txt`: an unallowlisted finding
//! fails, and a stale entry (matching no finding) also fails — the list
//! may only shrink. Keys are `flow <file>:<fn>:<source>-><sink>`,
//! `constsql <file>:<line>`, and `ident <file>:<name>`.

pub mod constsql;
pub mod idents;
pub mod strings;
pub mod taint;

use crate::conc::{AllowEntry, Allowlist, Workspace};

/// Workspace-relative form of a scanned path, so allowlist keys and flow
/// chains are stable across checkouts: everything from the `crates/` (or
/// top-level `src/`) component on.
pub fn rel_path(file: &str) -> String {
    let f = file.replace('\\', "/");
    if let Some(pos) = f.find("crates/") {
        return f[pos..].to_string();
    }
    if let Some(pos) = f.find("src/") {
        return f[pos..].to_string();
    }
    f
}

/// Corpus-size counters for the report's stats block.
pub struct SqlStats {
    /// Functions the taint pass scanned.
    pub fns_scanned: usize,
    /// String literals constant-folded and parsed.
    pub literals_checked: usize,
    /// Tables recovered into the DDL catalog.
    pub tables_cataloged: usize,
}

/// The combined SQL-construction report.
pub struct SqlReport {
    pub flows: Vec<taint::FlowFinding>,
    pub const_findings: Vec<constsql::ConstFinding>,
    pub ident_findings: Vec<idents::IdentFinding>,
    /// Allowlist entries that matched no finding: the debt was paid, so
    /// the entry must be deleted (this is how "only shrink" is enforced).
    pub stale_allowlist: Vec<AllowEntry>,
    pub stats: SqlStats,
}

/// Allowlist kinds, doubling as the `root` column of `SQL_ALLOWLIST.txt`.
const KIND_FLOW: &str = "flow";
const KIND_CONSTSQL: &str = "constsql";
const KIND_IDENT: &str = "ident";

fn allowed(allow: &Allowlist, kind: &str, key: &str) -> bool {
    allow
        .entries
        .iter()
        .any(|e| e.root == kind && e.path == key)
}

/// Run all three analyses over a parsed workspace.
pub fn analyze(ws: &Workspace, allow: &Allowlist) -> SqlReport {
    let (mut flows, fns_scanned) = taint::analyze(ws);
    let consts = constsql::string_consts(ws);
    let scan = constsql::scan(ws, &consts);
    let catalog = idents::Catalog::build(&scan.stmts);
    let mut ident_findings = catalog.check(&scan.stmts);
    let mut const_findings = scan.findings;

    for f in &mut flows {
        f.allowlisted = allowed(allow, KIND_FLOW, &f.key());
    }
    for f in &mut const_findings {
        f.allowlisted = allowed(allow, KIND_CONSTSQL, &format!("{}:{}", f.file, f.line));
    }
    for f in &mut ident_findings {
        f.allowlisted = allowed(allow, KIND_IDENT, &f.key());
    }

    let stale: Vec<AllowEntry> = allow
        .entries
        .iter()
        .filter(|e| {
            let matched = match e.root.as_str() {
                KIND_FLOW => flows.iter().any(|f| f.key() == e.path),
                KIND_CONSTSQL => const_findings
                    .iter()
                    .any(|f| format!("{}:{}", f.file, f.line) == e.path),
                KIND_IDENT => ident_findings.iter().any(|f| f.key() == e.path),
                _ => false, // unknown kind is always stale
            };
            !matched
        })
        .cloned()
        .collect();

    SqlReport {
        flows,
        const_findings,
        ident_findings,
        stale_allowlist: stale,
        stats: SqlStats {
            fns_scanned,
            literals_checked: scan.checked,
            tables_cataloged: catalog.len(),
        },
    }
}

impl SqlReport {
    /// Everything that fails the gate, as human-readable diagnostics.
    /// Empty means the workspace's SQL construction is clean modulo the
    /// committed allowlist.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in self.flows.iter().filter(|f| !f.allowlisted) {
            out.push(format!(
                "sql-flow: {}\n  route the value through sql_lit/sql_ident (core::sqlgen), or \
                 add `flow {}` to SQL_ALLOWLIST.txt with a justification",
                f.describe(),
                f.key()
            ));
        }
        for f in self.const_findings.iter().filter(|f| !f.allowlisted) {
            out.push(format!(
                "sql-parse: constant SQL does not parse at {}:{}: {}\n  folded: {}\n  fix the \
                 literal, or add `constsql {}:{}` to SQL_ALLOWLIST.txt with a justification",
                f.file, f.line, f.error, f.folded, f.file, f.line
            ));
        }
        for f in self.ident_findings.iter().filter(|f| !f.allowlisted) {
            let detail = if f.table.is_empty() {
                format!("`{}` is not in any CREATE TABLE the lint can see", f.name)
            } else {
                format!("`{}` is not a column of `{}`", f.name, f.table)
            };
            out.push(format!(
                "sql-ident: {} at {}:{}: {}\n  fix the identifier, or add `ident {}` to \
                 SQL_ALLOWLIST.txt with a justification",
                f.kind,
                f.file,
                f.line,
                detail,
                f.key()
            ));
        }
        for e in &self.stale_allowlist {
            out.push(format!(
                "stale allowlist entry: `{} {}` matches no finding — the debt was paid; \
                 delete the line from SQL_ALLOWLIST.txt (the allowlist may only shrink)",
                e.root, e.path
            ));
        }
        out
    }

    /// Machine-readable report (`target/sqllint.json`).
    pub fn to_json(&self) -> String {
        let esc = crate::esc_json;
        let mut s = String::from("{\n  \"schema\": \"sqllint/v1\",\n  \"flows\": [");
        for (i, f) in self.flows.iter().enumerate() {
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"fn\": \"{}\", \"source\": \"{}\", \
                 \"source_line\": {}, \"sink\": \"{}\", \"sink_line\": {}, \
                 \"allowlisted\": {}, \"chain\": [",
                esc(&f.file),
                esc(&f.fn_name),
                esc(&f.source),
                f.source_line,
                esc(&f.sink),
                f.sink_line,
                f.allowlisted
            ));
            for (j, step) in f.chain.iter().enumerate() {
                s.push_str(&format!(
                    "\n      \"{}\"{}",
                    esc(step),
                    if j + 1 < f.chain.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!(
                "]}}{}",
                if i + 1 < self.flows.len() { "," } else { "" }
            ));
        }
        s.push_str("\n  ],\n  \"const_sql\": [");
        for (i, f) in self.const_findings.iter().enumerate() {
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"error\": \"{}\", \
                 \"folded\": \"{}\", \"allowlisted\": {}}}{}",
                esc(&f.file),
                f.line,
                esc(&f.error),
                esc(&f.folded),
                f.allowlisted,
                if i + 1 < self.const_findings.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("\n  ],\n  \"idents\": [");
        for (i, f) in self.ident_findings.iter().enumerate() {
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \
                 \"name\": \"{}\", \"table\": \"{}\", \"allowlisted\": {}}}{}",
                esc(&f.file),
                f.line,
                f.kind,
                esc(&f.name),
                esc(&f.table),
                f.allowlisted,
                if i + 1 < self.ident_findings.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("\n  ],\n  \"stale_allowlist\": [");
        for (i, e) in self.stale_allowlist.iter().enumerate() {
            s.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"key\": \"{}\"}}{}",
                esc(&e.root),
                esc(&e.path),
                if i + 1 < self.stale_allowlist.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str(&format!(
            "\n  ],\n  \"stats\": {{\"fns_scanned\": {}, \"literals_checked\": {}, \
             \"tables_cataloged\": {}}},\n  \"ok\": {}\n}}\n",
            self.stats.fns_scanned,
            self.stats.literals_checked,
            self.stats.tables_cataloged,
            self.failures().is_empty()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_matches_and_goes_stale() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/compile/fix.rs",
            r#"fn find(db: &Db, name: &str) {
                db.execute("CREATE TABLE edge (label TEXT)");
                db.query(&format!("SELECT * FROM edge WHERE label = '{name}'"));
            }"#,
        )]);
        let r = analyze(&ws, &Allowlist::default());
        assert_eq!(r.flows.len(), 1);
        assert!(!r.failures().is_empty());

        let key = r.flows[0].key();
        let allow = Allowlist::parse(&format!("flow {key} routed in PR 9"));
        let r = analyze(&ws, &allow);
        assert!(r.flows[0].allowlisted);
        // The only remaining failure class would be staleness; the entry
        // matches, so the gate is green.
        assert!(r.failures().is_empty(), "{:?}", r.failures());

        let allow = Allowlist::parse("flow crates/core/src/compile/gone.rs:f:x->query paid");
        let r = analyze(&ws, &allow);
        assert!(r.failures().iter().any(|m| m.contains("stale")));
    }

    #[test]
    fn json_has_schema_and_sections() {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", "fn f() {}")]);
        let j = analyze(&ws, &Allowlist::default()).to_json();
        assert!(j.contains("\"schema\": \"sqllint/v1\""));
        assert!(j.contains("\"flows\""));
        assert!(j.contains("\"const_sql\""));
        assert!(j.contains("\"idents\""));
        assert!(j.contains("\"ok\": true"));
    }
}
