//! Constant-fragment SQL parse check: every string literal in the
//! translation/storage layer that looks like a SQL statement is
//! constant-folded ([`super::strings::fold_sql`]) and parsed with the
//! engine's own `reldb::sql` parser at lint time. A malformed keyword or
//! punctuation slip fails the gate before any test executes. Successfully
//! folded statements feed the identifier cross-check.

use std::collections::BTreeMap;

use super::strings::{self, Piece};
use crate::conc::Workspace;
use crate::lexer::TokKind;

/// One malformed constant SQL fragment.
#[derive(Debug, Clone)]
pub struct ConstFinding {
    pub file: String,
    pub line: u32,
    /// The folded text handed to the parser.
    pub folded: String,
    /// The parser's complaint.
    pub error: String,
    pub allowlisted: bool,
}

/// A literal that folded and parsed; input to the identifier cross-check.
pub struct FoldedStmt {
    pub file: String,
    pub line: u32,
    pub folded: String,
    pub stmt: reldb::sql::ast::Statement,
}

/// Output of the scan: findings plus the parsed statement corpus.
pub struct ConstScan {
    pub findings: Vec<ConstFinding>,
    pub stmts: Vec<FoldedStmt>,
    /// Number of literals that looked like statements and were checked.
    pub checked: usize,
}

/// Files the constant-SQL and identifier analyses cover: the layers that
/// assemble SQL text (translation in `core`, DDL/registry in `shredder`).
pub fn in_scope(file: &str) -> bool {
    let f = file.replace('\\', "/");
    f.contains("crates/core/src/") || f.contains("crates/shredder/src/")
}

/// Collect `const NAME: &str = "…"` bindings workspace-wide, so holes
/// naming them fold to their actual value (`{DOCS_TABLE}` → `xr_docs`).
pub fn string_consts(ws: &Workspace) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pf in &ws.files {
        let toks = &pf.toks;
        for i in 0..toks.len() {
            if !(toks[i].kind == TokKind::Ident && toks[i].text == "const") {
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            // Expect `: [&['static]] str = "…"` within a short window.
            let mut saw_str_ty = false;
            for j in i + 2..(i + 8).min(toks.len()) {
                let t = &toks[j];
                if t.kind == TokKind::Ident && t.text == "str" {
                    saw_str_ty = true;
                }
                if t.kind == TokKind::Punct && t.text == "=" {
                    if let Some(lit) = toks.get(j + 1).filter(|t| t.kind == TokKind::Str) {
                        if saw_str_ty {
                            if let Some(content) = strings::decode(&lit.text) {
                                out.insert(name.text.clone(), content);
                            }
                        }
                    }
                    break;
                }
            }
        }
    }
    out
}

/// True when decoded literal contents start a SQL statement and carry
/// enough of its skeleton to be checkable (lone keyword prefixes pushed
/// into accumulators — `"SELECT "` — are fragments, not statements).
fn is_checkable_statement(content: &str) -> bool {
    let up = content.trim_start().to_ascii_uppercase();
    let rest_has = |needle: &str| up.contains(needle);
    if let Some(rest) = up.strip_prefix("SELECT") {
        rest.contains("FROM") || rest.contains("LIMIT")
    } else if up.starts_with("INSERT") {
        rest_has("VALUES") || rest_has("SELECT")
    } else if up.starts_with("UPDATE") {
        rest_has("SET")
    } else if up.starts_with("DELETE") {
        rest_has("FROM")
    } else if up.starts_with("CREATE") || up.starts_with("DROP") {
        rest_has("TABLE") || rest_has("INDEX")
    } else {
        false
    }
}

/// Run the scan over every in-scope, non-test string literal.
pub fn scan(ws: &Workspace, consts: &BTreeMap<String, String>) -> ConstScan {
    let mut findings = Vec::new();
    let mut stmts = Vec::new();
    let mut checked = 0usize;
    for pf in &ws.files {
        if !in_scope(&pf.file) {
            continue;
        }
        for (i, tok) in pf.toks.iter().enumerate() {
            if tok.kind != TokKind::Str {
                continue;
            }
            if pf.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some(content) = strings::decode(&tok.text) else {
                continue;
            };
            if !is_checkable_statement(&content) {
                continue;
            }
            let pieces: Vec<Piece> = strings::split_format(&content);
            let folded = strings::fold_sql(&pieces, consts);
            if !strings::balanced(&folded) {
                // A skeleton builder (closing tokens pushed separately);
                // covered at runtime by verify_sql, not foldable here.
                continue;
            }
            checked += 1;
            let file = super::rel_path(&pf.file);
            match reldb::sql::parse_statement(&folded) {
                Ok(stmt) => stmts.push(FoldedStmt {
                    file,
                    line: tok.line,
                    folded,
                    stmt,
                }),
                Err(e) => findings.push(ConstFinding {
                    file,
                    line: tok.line,
                    folded,
                    error: e.to_string(),
                    allowlisted: false,
                }),
            }
        }
    }
    ConstScan {
        findings,
        stmts,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(src: &str) -> ConstScan {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", src)]);
        let consts = string_consts(&ws);
        scan(&ws, &consts)
    }

    #[test]
    fn well_formed_statements_parse() {
        let s = scan_src(
            r#"fn f(db: &Db, doc: i64) {
                db.execute(&format!("SELECT pre, size FROM inode WHERE doc = {doc}"));
                db.execute("CREATE TABLE t (a INT, b TEXT)");
            }"#,
        );
        assert_eq!(s.checked, 2);
        assert!(s.findings.is_empty(), "{:?}", s.findings);
        assert_eq!(s.stmts.len(), 2);
    }

    #[test]
    fn malformed_statement_is_a_finding() {
        let s = scan_src(r#"fn f(db: &Db) { db.execute("SELECT pre FORM inode LIMIT 1"); }"#);
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].line, 1);
    }

    #[test]
    fn fragments_and_test_code_are_skipped() {
        let s = scan_src(
            "fn f(sql: &mut String) { sql.push_str(\"SELECT \"); }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { q(\"SELECT junk FORM t\"); }\n}",
        );
        assert_eq!(s.checked, 0);
        assert!(s.findings.is_empty());
    }

    #[test]
    fn const_table_names_resolve() {
        let s = scan_src(
            "const DOCS: &str = \"xr_docs\";\n\
             fn f(db: &Db) { db.query(&format!(\"SELECT doc FROM {DOCS} ORDER BY doc\")); }",
        );
        assert_eq!(s.findings.len(), 0, "{:?}", s.findings);
        assert_eq!(s.stmts.len(), 1);
        assert!(s.stmts[0].folded.contains("xr_docs"));
    }
}
