//! A small hand-written Rust lexer, just precise enough for token-level
//! linting: it distinguishes identifiers, punctuation, and literals, and it
//! never mistakes the contents of a string, char literal, or comment for
//! code. It does not parse; structural questions (test regions, attribute
//! extents) are answered by a separate pass over the token stream.

/// Coarse token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `r#async`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal, possibly suffixed (`0`, `42u32`, `0xFF`).
    Int,
    /// Float literal (`1.5`, `2e10`).
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`. The token
    /// text is the raw source slice including delimiters and prefixes, so
    /// literal-content passes (the SQL analyses) can decode it.
    Str,
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A comment, kept separate from the token stream; used only for
/// suppression scanning.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line,
    /// in which case a suppression in it also covers the following line.
    pub alone_on_line: bool,
    /// Doc comments (`///`, `//!`, `/**`, `/*!`) describe code rather
    /// than annotate it; suppressions are not read from them.
    pub doc: bool,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Unterminated literals or comments
/// simply consume the rest of the input; the linter is best-effort on
/// malformed files (rustc will reject them anyway).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether any non-whitespace byte has appeared on the current
    // line before the position being examined (for `alone_on_line`).
    let mut line_has_code = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = src[start..i].to_string();
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment {
                    text,
                    line,
                    alone_on_line: !line_has_code,
                    doc,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let alone = !line_has_code;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        line_has_code = false;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = src[start..i.min(src.len())].to_string();
                let doc = text.starts_with("/**") || text.starts_with("/*!");
                out.comments.push(Comment {
                    text,
                    line: start_line,
                    alone_on_line: alone,
                    doc,
                });
            }
            b'"' => {
                line_has_code = true;
                let (end, nl) = scan_string(b, i + 1);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: src[i..end.min(src.len())].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' => {
                line_has_code = true;
                // Raw strings (r"…", r#"…"#), byte strings (b"…", br"…"),
                // byte chars (b'x'), or just an identifier starting with
                // r/b. Also raw identifiers r#name.
                if let Some((end, nl)) = scan_raw_or_byte(b, i) {
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: src[i..end.min(src.len())].to_string(),
                        line,
                    });
                    line += nl;
                    i = end;
                } else {
                    let (end, text) = scan_ident(src, b, i);
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                    });
                    i = end;
                }
            }
            b'\'' => {
                line_has_code = true;
                // Lifetime vs char literal. A lifetime is ' followed by an
                // identifier NOT closed by another quote ('a but not 'a').
                if is_lifetime(b, i) {
                    let (end, text) = scan_ident(src, b, i + 1);
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                    });
                    i = end;
                } else {
                    let (end, nl) = scan_char(b, i + 1);
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: src[i..end.min(src.len())].to_string(),
                        line,
                    });
                    line += nl;
                    i = end;
                }
            }
            b'0'..=b'9' => {
                line_has_code = true;
                let (end, kind, text) = scan_number(src, b, i);
                out.tokens.push(Tok { kind, text, line });
                i = end;
            }
            c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                line_has_code = true;
                let (end, text) = scan_ident(src, b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                i = end;
            }
            _ => {
                line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scan past a normal string body starting just after the opening quote.
/// Returns (index after closing quote, newlines consumed).
fn scan_string(b: &[u8], mut i: usize) -> (usize, u32) {
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape still consumes a newline.
                if b.get(i + 1) == Some(&b'\n') {
                    nl += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scan past a char literal body starting just after the opening quote.
fn scan_char(b: &[u8], mut i: usize) -> (usize, u32) {
    let nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return (i + 1, nl),
            b'\n' => {
                // Unterminated char literal; stop at end of line.
                return (i, nl + 1);
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Try to scan a raw/byte string family starting at `r` or `b`.
/// Returns None when the prefix is just the start of an identifier.
fn scan_raw_or_byte(b: &[u8], start: usize) -> Option<(usize, u32)> {
    let mut i = start;
    // Optional 'b' then optional 'r'.
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'\'' {
            // Byte char b'x'.
            let (end, nl) = scan_char(b, i + 1);
            return Some((end, nl));
        }
        if i < b.len() && b[i] == b'"' {
            let (end, nl) = scan_string(b, i + 1);
            return Some((end, nl));
        }
        if i < b.len() && b[i] == b'r' {
            i += 1;
        } else {
            return None;
        }
    } else if b[i] == b'r' {
        i += 1;
    } else {
        return None;
    }
    // Here: after r or br. Count hashes.
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        // Raw string: scan for `"` followed by `hashes` hashes.
        i += 1;
        let mut nl = 0u32;
        while i < b.len() {
            if b[i] == b'\n' {
                nl += 1;
                i += 1;
            } else if b[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0usize;
                while j < b.len() && b[j] == b'#' && seen < hashes {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return Some((j, nl));
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        return Some((i, nl));
    }
    if hashes == 1 && i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphabetic()) {
        // Raw identifier r#name: treat as an identifier by signalling None
        // from one past the `r#` -- simplest is to let the caller lex `r`
        // as ident; the `#` and name lex separately, which is fine for the
        // rules this linter implements.
        return None;
    }
    None
}

/// True if the quote at `i` starts a lifetime rather than a char literal.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&c1) = b.get(i + 1) else {
        return false;
    };
    if !(c1 == b'_' || c1.is_ascii_alphabetic()) {
        return false;
    }
    // 'a' is a char literal; 'ab is a lifetime; 'a is a lifetime.
    let mut j = i + 2;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

fn scan_ident(src: &str, b: &[u8], start: usize) -> (usize, String) {
    let mut i = start;
    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric() || b[i] >= 0x80) {
        i += 1;
    }
    (i, src[start..i].to_string())
}

fn scan_number(src: &str, b: &[u8], start: usize) -> (usize, TokKind, String) {
    let mut i = start;
    let mut kind = TokKind::Int;
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, TokKind::Int, src[start..i].to_string());
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: `1.5` yes, `1.max(2)` no, `0..n` no.
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        kind = TokKind::Float;
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            kind = TokKind::Float;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (u32, f64, ...).
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        if b[i] == b'f' {
            kind = TokKind::Float;
        }
        i += 1;
    }
    (i, kind, src[start..i].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("x.unwrap()");
        assert_eq!(t[0], (TokKind::Ident, "x".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[2], (TokKind::Ident, "unwrap".into()));
        assert_eq!(t[3], (TokKind::Punct, "(".into()));
    }

    #[test]
    fn strings_hide_contents() {
        let t = kinds(r#"let s = "a.unwrap() // not code";"#);
        assert!(t.iter().all(|(_, txt)| txt != "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = kinds(r##"let s = r#"quote " inside"# ; done"##);
        assert_eq!(t.last().map(|(_, s)| s.as_str()), Some("done"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }

    #[test]
    fn comments_collected_not_tokenized() {
        let lx = lex("let a = 1; // trailing\n// alone\nlet b = 2;\n/* block\nspan */ let c = 3;");
        assert_eq!(lx.comments.len(), 3);
        assert!(!lx.comments[0].alone_on_line);
        assert!(lx.comments[1].alone_on_line);
        assert!(lx.comments[2].alone_on_line);
        assert!(lx.tokens.iter().all(|t| !t.text.contains("trailing")));
        // The token after the block comment lands on the right line.
        let c_tok = lx.tokens.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c_tok.line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(lx.tokens.len(), 1);
        assert_eq!(lx.tokens[0].text, "code");
    }

    #[test]
    fn numbers() {
        let t = kinds("a[0] + 1.5 + 0xFF + 2e3 + 1u32 + 3f64");
        let ints: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Int).collect();
        let floats: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Float).collect();
        assert_eq!(ints.len(), 3, "{ints:?}");
        assert_eq!(floats.len(), 3, "{floats:?}");
    }

    #[test]
    fn range_is_not_float() {
        let t = kinds("for i in 0..n {}");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0"));
        assert!(!t.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn byte_strings_and_chars() {
        let t = kinds(r#"let a = b"bytes"; let c = b'x'; let r = br"raw";"#);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
    }

    #[test]
    fn line_numbers() {
        let lx = lex("one\ntwo\nthree");
        let lines: Vec<u32> = lx.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn multiline_strings_advance_line_counter() {
        // A plain embedded newline and a `\`-continuation both span lines.
        let lx = lex("let a = \"x\ny\"; after\nlet b = \"p \\\n q\"; last");
        let after = lx.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 2);
        let last = lx.tokens.iter().find(|t| t.text == "last").unwrap();
        assert_eq!(last.line, 4);
    }
}
