//! Atomics discipline.
//!
//! Inventories every atomic operation in the workspace (an op is a
//! `.load(..)`/`.store(..)`/`.swap(..)`/`.fetch_*(..)`/
//! `.compare_exchange*(..)` call whose arguments mention an
//! `Ordering` variant — that requirement is what keeps `file.store(..)`
//! or channel `send`-style calls out) and reports two smells:
//!
//! - **load…store read-modify-write** — a function that `load`s and then
//!   `store`s the same atomic has a lost-update window the moment a
//!   second thread runs it; the fix is `fetch_add`/`fetch_update`/
//!   `compare_exchange`. (`serve.rs`'s inflight counter already uses
//!   `fetch_update` for exactly this reason.)
//! - **mixed ordering families** — one atomic touched with `Relaxed` in
//!   one place and `Acquire`/`Release` (or `SeqCst`) in another usually
//!   means the weaker site silently breaks the stronger site's
//!   happens-before edge. All sites for one atomic should agree on a
//!   family: `relaxed` (pure counters), `acqrel` (flag publication), or
//!   `seqcst` (total-order flags).
//!
//! Atomic identity reuses the lock pass's receiver normalization:
//! `self.flag` inside `impl CancelToken` → `CancelToken.flag`, so all
//! methods of a type see the same atomic. Neither finding is
//! allowlistable — fix the site or restructure the code.

use super::locks::receiver_chain;
use super::Workspace;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

const METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Ordering family an `Ordering` variant belongs to.
fn family(ordering: &str) -> &'static str {
    match ordering {
        "Relaxed" => "relaxed",
        "Acquire" | "Release" | "AcqRel" => "acqrel",
        _ => "seqcst",
    }
}

/// One atomic op site.
#[derive(Debug, Clone)]
struct Op {
    id: String,
    method: String,
    orderings: Vec<String>,
    fn_name: String,
    file: String,
    line: u32,
}

/// Aggregated per-atomic usage, for the JSON inventory.
#[derive(Debug)]
pub struct AtomicUse {
    /// Normalized atomic identity, e.g. `CancelToken.flag`.
    pub id: String,
    /// Distinct orderings seen across all sites, sorted.
    pub orderings: Vec<String>,
    /// Number of op sites.
    pub sites: usize,
}

/// One discipline finding (kind: `load-store-rmw` or `mixed-ordering`).
#[derive(Debug)]
pub struct AtomicsFinding {
    pub kind: String,
    pub id: String,
    pub message: String,
}

/// The atomics report.
#[derive(Debug, Default)]
pub struct AtomicsReport {
    pub atomics: Vec<AtomicUse>,
    pub findings: Vec<AtomicsFinding>,
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Collect the ops in one fn body.
fn scan_fn(
    toks: &[Tok],
    body: (usize, usize),
    self_ty: Option<&str>,
    fn_name: &str,
    file: &str,
    ops: &mut Vec<Op>,
) {
    let mut i = body.0;
    while i < body.1 {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && METHODS.contains(&t.text.as_str())
            && i > 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
        {
            // Scan the balanced argument list for Ordering variants.
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut orderings = Vec::new();
            while j < body.1 && depth > 0 {
                if is_punct(&toks[j], "(") {
                    depth += 1;
                } else if is_punct(&toks[j], ")") {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident
                    && ORDERINGS.contains(&toks[j].text.as_str())
                {
                    orderings.push(toks[j].text.clone());
                }
                j += 1;
            }
            if !orderings.is_empty() {
                let mut segs = receiver_chain(toks, i - 2);
                if let Some(head) = segs.first_mut() {
                    if head == "self" {
                        if let Some(ty) = self_ty {
                            *head = ty.to_string();
                        }
                    }
                    ops.push(Op {
                        id: segs.join("."),
                        method: t.text.clone(),
                        orderings,
                        fn_name: fn_name.to_string(),
                        file: file.to_string(),
                        line: t.line,
                    });
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Run the atomics analysis over the workspace.
pub fn analyze(ws: &Workspace) -> AtomicsReport {
    let mut ops: Vec<Op> = Vec::new();
    for f in &ws.files {
        for func in &f.items.fns {
            if func.body.0 >= func.body.1 {
                continue;
            }
            if f.test_mask.get(func.body.0).copied().unwrap_or(false) {
                continue;
            }
            scan_fn(
                &f.toks,
                func.body,
                func.self_ty.as_deref(),
                &func.name,
                &f.file,
                &mut ops,
            );
        }
    }

    let mut report = AtomicsReport::default();

    // Inventory: distinct orderings per atomic.
    let mut by_id: BTreeMap<&str, Vec<&Op>> = BTreeMap::new();
    for op in &ops {
        by_id.entry(&op.id).or_default().push(op);
    }
    for (id, sites) in &by_id {
        let mut orderings: Vec<String> = sites
            .iter()
            .flat_map(|o| o.orderings.iter().cloned())
            .collect();
        orderings.sort();
        orderings.dedup();
        report.atomics.push(AtomicUse {
            id: id.to_string(),
            orderings,
            sites: sites.len(),
        });
    }

    // load…store RMW within one fn.
    let mut by_fn_id: BTreeMap<(&str, &str, &str), Vec<&Op>> = BTreeMap::new();
    for op in &ops {
        by_fn_id
            .entry((&op.file, &op.fn_name, &op.id))
            .or_default()
            .push(op);
    }
    for ((file, fn_name, id), sites) in &by_fn_id {
        let load = sites.iter().find(|o| o.method == "load");
        let store = sites.iter().find(|o| o.method == "store");
        if let (Some(l), Some(s)) = (load, store) {
            report.findings.push(AtomicsFinding {
                kind: "load-store-rmw".into(),
                id: id.to_string(),
                message: format!(
                    "`{fn_name}` loads `{id}` ({file}:{}) and stores it ({file}:{}) — a \
                     non-CAS read-modify-write that loses updates under concurrency; use \
                     `fetch_*`, `fetch_update`, or `compare_exchange`",
                    l.line, s.line
                ),
            });
        }
    }

    // Mixed ordering families per atomic, workspace-wide.
    for (id, sites) in &by_id {
        let mut fams: Vec<(&'static str, &&Op)> = Vec::new();
        for op in sites {
            for o in &op.orderings {
                fams.push((family(o), op));
            }
        }
        let mut distinct: Vec<&'static str> = fams.iter().map(|(f, _)| *f).collect();
        distinct.sort();
        distinct.dedup();
        if distinct.len() > 1 {
            let mut examples: Vec<String> = Vec::new();
            for d in &distinct {
                if let Some((_, op)) = fams.iter().find(|(f, _)| f == d) {
                    examples.push(format!(
                        "{} via `{}` in `{}` ({}:{})",
                        d, op.method, op.fn_name, op.file, op.line
                    ));
                }
            }
            report.findings.push(AtomicsFinding {
                kind: "mixed-ordering".into(),
                id: id.to_string(),
                message: format!(
                    "atomic `{id}` is used with mixed ordering families [{}]: {} — pick one \
                     family per atomic so every site preserves the same happens-before edges",
                    distinct.join(", "),
                    examples.join("; ")
                ),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> AtomicsReport {
        analyze(&Workspace::from_sources(&[("crates/obs/src/a.rs", src)]))
    }

    #[test]
    fn consistent_atomic_is_clean() {
        let r = report(
            "impl CancelToken {\n\
             fn set(&self) { self.flag.store(true, Ordering::Release); }\n\
             fn is_set(&self) -> bool { self.flag.load(Ordering::Acquire) }\n\
             }",
        );
        assert_eq!(r.atomics.len(), 1);
        assert_eq!(r.atomics[0].id, "CancelToken.flag");
        assert_eq!(r.atomics[0].sites, 2);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn load_store_rmw_flagged() {
        let r = report(
            "fn bump(n: &AtomicU64) {\n\
             let v = n.load(Ordering::Relaxed);\n\
             n.store(v + 1, Ordering::Relaxed);\n\
             }",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].kind, "load-store-rmw");
        assert!(r.findings[0].message.contains("bump"));
        assert!(r.findings[0].message.contains("fetch_"));
    }

    #[test]
    fn load_and_store_in_different_fns_fine() {
        let r = report(
            "fn set(n: &AtomicU64) { n.store(1, Ordering::SeqCst); }\n\
             fn get(n: &AtomicU64) -> u64 { n.load(Ordering::SeqCst) }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn mixed_families_flagged_with_sites() {
        let r = report(
            "impl S {\n\
             fn a(&self) { self.n.store(1, Ordering::SeqCst); }\n\
             fn b(&self) -> u64 { self.n.load(Ordering::Relaxed) }\n\
             }",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].kind, "mixed-ordering");
        let m = &r.findings[0].message;
        assert!(m.contains("relaxed") && m.contains("seqcst"), "{m}");
        assert!(m.contains("crates/obs/src/a.rs:"), "{m}");
    }

    #[test]
    fn acquire_release_pair_is_one_family() {
        let r = report(
            "impl T { fn s(&self) { self.f.store(true, Ordering::Release); }\n\
             fn l(&self) -> bool { self.f.load(Ordering::Acquire) } }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn fetch_update_two_orderings_same_family_fine() {
        let r = report(
            "fn g(n: &AtomicUsize) {\n\
             let r = n.fetch_update(Ordering::AcqRel, Ordering::Acquire, f);\n\
             use_(r);\n\
             }",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.atomics[0].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn non_atomic_store_ignored() {
        let r = report("fn f(b: &Backend) { b.store(path, bytes); b.load(path); }");
        assert!(r.atomics.is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let r = report(
            "#[cfg(test)] mod t { fn f(n: &AtomicU64) { let v = n.load(Ordering::Relaxed); \
             n.store(v + 1, Ordering::SeqCst); } }",
        );
        assert!(r.atomics.is_empty());
    }
}
