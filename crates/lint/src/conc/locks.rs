//! Lock-order analysis.
//!
//! Scans every function body for zero-argument `.lock()` / `.read()` /
//! `.write()` / `.try_*()` calls (the `Mutex`/`RwLock` acquisition
//! surface — I/O `read`/`write` take arguments and are excluded),
//! approximates each guard's scope, and records a *held → acquired* edge
//! whenever a second lock is taken while a guard is live. A cycle in the
//! resulting acquisition graph is an ordering inconsistency: two code
//! paths that take the same locks in opposite orders can deadlock the
//! moment they run on different threads — exactly what ROADMAP item 1
//! introduces.
//!
//! Lock identity is the receiver chain with `self` normalized to the
//! `impl` type (`self.inner.lock()` inside `impl Ledger` → `Ledger.inner`;
//! `registry().lock()` → `registry()`). Guard scopes:
//! - `let g = m.lock();` — live to the end of the enclosing block, or an
//!   explicit `drop(g)`.
//! - `let _ = m.lock();` — dropped immediately (not a guard).
//! - `if let`/`while let`/`match` bindings — live inside the following
//!   block.
//! - statement temporaries (`m.lock().field = …`) — live to the end of
//!   the statement.
//!
//! The analysis is intraprocedural: a lock held across a call into a
//! function that takes another lock is *not* seen as nesting. That is a
//! documented false-negative; the workspace convention that makes it
//! sound is the one the existing code already follows — lock helpers
//! (`Ledger::lock`, `metrics::registry`) return guards to a caller that
//! holds exactly one at a time. Re-acquiring the same `Mutex` while its
//! guard is live is reported as a self-cycle (a genuine self-deadlock for
//! `Mutex`); `read`/`read` re-entrancy on an `RwLock` is not flagged.

use super::Workspace;
use crate::lexer::{Tok, TokKind};

/// Blocking acquisition methods (a `try_*` that fails does not block, so
/// only these participate in self-deadlock detection; all participate in
/// ordering edges because a `try_` taken under a held lock still
/// publishes an order).
const BLOCKING: &[&str] = &["lock", "read", "write"];
const METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// One acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Normalized lock identity, e.g. `Ledger.inner`.
    pub lock: String,
    pub method: String,
    pub fn_name: String,
    pub file: String,
    pub line: u32,
}

/// One *held → acquired* nesting observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub fn_name: String,
    pub file: String,
    pub line: u32,
}

/// A cycle in the acquisition graph, with the witnessing edges.
#[derive(Debug)]
pub struct LockCycle {
    /// Node sequence, first node repeated at the end (`A -> B -> A`).
    pub nodes: Vec<String>,
    pub edges: Vec<LockEdge>,
}

impl LockCycle {
    /// Human-readable description: the cycle plus one witness site per
    /// edge, so the diff between the two orders is readable directly.
    pub fn describe(&self) -> String {
        let mut s = format!("  {}", self.nodes.join(" -> "));
        for e in &self.edges {
            s.push_str(&format!(
                "\n    holds `{}` while acquiring `{}` in `{}` ({}:{})",
                e.from, e.to, e.fn_name, e.file, e.line
            ));
        }
        s
    }
}

/// The lock report: every site, every nesting edge, every cycle.
#[derive(Debug, Default)]
pub struct LockReport {
    pub sites: Vec<Acquisition>,
    pub edges: Vec<LockEdge>,
    pub cycles: Vec<LockCycle>,
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Walk the receiver chain ending at token `k` (the token just before the
/// `.method` dot), returning dotted segments — `self.inner` or
/// `registry()`. Shared with the atomics pass.
pub(crate) fn receiver_chain(toks: &[Tok], mut k: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    while let Some(t) = toks.get(k) {
        if is_punct(t, ")") {
            // Skip a balanced call argument list, then take the callee.
            let mut depth = 1usize;
            let mut j = k;
            while depth > 0 && j > 0 {
                j -= 1;
                if is_punct(&toks[j], ")") {
                    depth += 1;
                } else if is_punct(&toks[j], "(") {
                    depth -= 1;
                }
            }
            if j == 0 || toks[j - 1].kind != TokKind::Ident {
                break;
            }
            segs.push(format!("{}()", toks[j - 1].text));
            k = j - 1;
        } else if t.kind == TokKind::Ident {
            segs.push(t.text.clone());
        } else {
            break;
        }
        if k == 0 || !is_punct(&toks[k - 1], ".") {
            break;
        }
        if k < 2 {
            break;
        }
        k -= 2;
    }
    segs.reverse();
    segs
}

/// Normalize a receiver chain into a lock identity: `self` is replaced by
/// the `impl` type so `self.inner` in two methods of `Ledger` is one lock.
fn lock_id(mut segs: Vec<String>, self_ty: Option<&str>) -> Option<String> {
    let head = segs.first_mut()?;
    if head == "self" {
        *head = self_ty?.to_string();
    }
    Some(segs.join("."))
}

/// A live guard during the scan.
struct Guard {
    lock: String,
    method: String,
    /// Binding names (`drop(name)` releases); empty for temporaries.
    names: Vec<String>,
    /// Brace depth at which the guard dies: the guard is released when
    /// depth drops below this.
    scope_depth: usize,
    /// Temporaries die at the first `;` at their binding depth.
    statement_temp: bool,
}

/// Scan one function body; append sites and edges.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    toks: &[Tok],
    body: (usize, usize),
    self_ty: Option<&str>,
    fn_name: &str,
    file: &str,
    sites: &mut Vec<Acquisition>,
    edges: &mut Vec<LockEdge>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize; // inside the body braces
    let mut i = body.0;
    while i < body.1 {
        let t = &toks[i];
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.scope_depth <= depth);
        } else if is_punct(t, ";") {
            guards.retain(|g| !(g.statement_temp && g.scope_depth == depth));
        } else if t.kind == TokKind::Ident && t.text == "drop" {
            // `drop(name)` releases the named guard early.
            if let (Some(p), Some(n)) = (toks.get(i + 1), toks.get(i + 2)) {
                if is_punct(p, "(") && n.kind == TokKind::Ident {
                    let name = n.text.clone();
                    guards.retain(|g| !g.names.contains(&name));
                }
            }
        } else if t.kind == TokKind::Ident
            && METHODS.contains(&t.text.as_str())
            && i > 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ")"))
        {
            let segs = receiver_chain(toks, i - 2);
            if let Some(lock) = lock_id(segs, self_ty) {
                let method = t.text.clone();
                sites.push(Acquisition {
                    lock: lock.clone(),
                    method: method.clone(),
                    fn_name: fn_name.to_string(),
                    file: file.to_string(),
                    line: t.line,
                });
                for g in &guards {
                    let self_deadlock = g.lock == lock
                        && BLOCKING.contains(&method.as_str())
                        && BLOCKING.contains(&g.method.as_str())
                        && !(method == "read" && g.method == "read");
                    if g.lock != lock || self_deadlock {
                        edges.push(LockEdge {
                            from: g.lock.clone(),
                            to: lock.clone(),
                            fn_name: fn_name.to_string(),
                            file: file.to_string(),
                            line: t.line,
                        });
                    }
                }
                if let Some((names, scope_depth, statement_temp)) =
                    binding_of(toks, body.0, i, depth)
                {
                    guards.push(Guard {
                        lock,
                        method,
                        names,
                        scope_depth,
                        statement_temp,
                    });
                }
            }
        }
        i += 1;
    }
}

/// Classify the statement an acquisition at token `at` belongs to:
/// `Some((binding names, scope depth, is-statement-temporary))`, or
/// `None` when the guard is dropped on the spot (`let _ = m.lock();`).
fn binding_of(
    toks: &[Tok],
    body_start: usize,
    at: usize,
    depth: usize,
) -> Option<(Vec<String>, usize, bool)> {
    // Find the statement start: the token after the previous `;`/`{`/`}`.
    let mut s = at;
    while s > body_start {
        let p = &toks[s - 1];
        if is_punct(p, ";") || is_punct(p, "{") || is_punct(p, "}") {
            break;
        }
        s -= 1;
    }
    let first = &toks[s];
    if first.kind == TokKind::Ident && first.text == "let" {
        let names = pattern_names(toks, s + 1, at);
        // `let _ = m.lock();` drops the guard immediately.
        if names.is_empty() {
            return None;
        }
        return Some((names, depth, false));
    }
    if first.kind == TokKind::Ident
        && matches!(first.text.as_str(), "if" | "while" | "match" | "for")
    {
        // `if let Some(g) = m.try_lock()` — the guard lives inside the
        // block that follows, one level deeper than the binding site.
        let names = pattern_names(toks, s + 1, at);
        if !names.is_empty() {
            return Some((names, depth + 1, false));
        }
        // `match m.lock() { … }` / condition temporaries: scope to the
        // following block.
        return Some((Vec::new(), depth + 1, true));
    }
    Some((Vec::new(), depth, true))
}

/// Idents bound by the pattern between `from` and the `=` before `to`
/// (exclusive), skipping keywords and constructor names.
fn pattern_names(toks: &[Tok], from: usize, to: usize) -> Vec<String> {
    let mut eq = None;
    for j in from..to {
        if is_punct(&toks[j], "=")
            && !toks.get(j + 1).is_some_and(|n| is_punct(n, "="))
            && !(j > 0 && matches!(toks[j - 1].text.as_str(), "=" | "!" | "<" | ">"))
        {
            eq = Some(j);
            break;
        }
    }
    let Some(eq) = eq else { return Vec::new() };
    let mut names = Vec::new();
    for t in &toks[from..eq] {
        if t.kind == TokKind::Ident
            && t.text != "_"
            && !matches!(t.text.as_str(), "let" | "mut" | "ref")
            && !t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            names.push(t.text.clone());
        }
    }
    names
}

/// Find every cycle in the edge set (DFS with an explicit path stack;
/// cycles are canonicalized by rotating to the smallest node and deduped).
fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut cycles = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // Path stack DFS from each node; bounded by the tiny graph size.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        while let Some((node, next_i)) = stack.last_mut() {
            let out = adj.get(*node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next_i >= out.len() {
                stack.pop();
                path.pop();
                continue;
            }
            let e = out[*next_i];
            *next_i += 1;
            if let Some(pos) = path.iter().position(|n| *n == e.to.as_str()) {
                // Found a cycle: path[pos..] + closing edge.
                let mut cyc: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                // Canonical rotation for dedup.
                let min = cyc
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_str())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mut canon = cyc.clone();
                canon.rotate_left(min);
                if seen.insert(canon) {
                    if let Some(first) = cyc.first().cloned() {
                        cyc.push(first);
                    }
                    let mut witness = Vec::new();
                    for w in cyc.windows(2) {
                        if let [from, to] = w {
                            if let Some(we) = edges.iter().find(|x| &x.from == from && &x.to == to)
                            {
                                witness.push(we.clone());
                            }
                        }
                    }
                    cycles.push(LockCycle {
                        nodes: cyc,
                        edges: witness,
                    });
                }
                continue;
            }
            if path.len() > 64 {
                continue; // defensive bound; graphs here are tiny
            }
            path.push(&e.to);
            stack.push((&e.to, 0));
        }
    }
    cycles
}

/// Run the lock analysis over the workspace.
pub fn analyze(ws: &Workspace) -> LockReport {
    let mut report = LockReport::default();
    for f in &ws.files {
        for func in &f.items.fns {
            if func.body.0 >= func.body.1 {
                continue;
            }
            if f.test_mask.get(func.body.0).copied().unwrap_or(false) {
                continue;
            }
            scan_fn(
                &f.toks,
                func.body,
                func.self_ty.as_deref(),
                &func.name,
                &f.file,
                &mut report.sites,
                &mut report.edges,
            );
        }
    }
    // Dedup edges per (from, to, fn) for readability; cycle detection
    // uses the deduped set.
    report.edges.sort_by(|a, b| {
        (&a.from, &a.to, &a.fn_name, a.line).cmp(&(&b.from, &b.to, &b.fn_name, b.line))
    });
    report
        .edges
        .dedup_by(|a, b| a.from == b.from && a.to == b.to && a.fn_name == b.fn_name);
    report.cycles = find_cycles(&report.edges);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> LockReport {
        analyze(&Workspace::from_sources(&[("crates/reldb/src/l.rs", src)]))
    }

    #[test]
    fn single_lock_no_edges() {
        let r = report("impl Ledger { fn note(&self) { let g = self.inner.lock(); g.push(1); } }");
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].lock, "Ledger.inner");
        assert!(r.edges.is_empty());
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn nesting_produces_edge() {
        let r = report("fn f(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); use_(g, h); }");
        assert_eq!(r.edges.len(), 1);
        assert_eq!(
            (r.edges[0].from.as_str(), r.edges[0].to.as_str()),
            ("a", "b")
        );
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn inverted_pair_trips_cycle_with_readable_diff() {
        let r = report(
            "fn one(a: &M, b: &M) { let g = a.lock(); let h = b.lock(); use_(g, h); }\n\
             fn two(a: &M, b: &M) { let h = b.lock(); let g = a.lock(); use_(g, h); }",
        );
        assert_eq!(r.cycles.len(), 1, "edges: {:?}", r.edges);
        let d = r.cycles[0].describe();
        assert!(
            d.contains("a -> b -> a") || d.contains("b -> a -> b"),
            "{d}"
        );
        assert!(d.contains("`one`") && d.contains("`two`"), "{d}");
        assert!(
            d.contains("crates/reldb/src/l.rs:1") && d.contains(":2"),
            "{d}"
        );
    }

    #[test]
    fn drop_releases_guard() {
        let r =
            report("fn f(a: &M, b: &M) { let g = a.lock(); drop(g); let h = b.lock(); keep(h); }");
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn block_scope_releases_guard() {
        let r = report(
            "fn f(a: &M, b: &M) { { let g = a.lock(); touch(g); } let h = b.lock(); keep(h); }",
        );
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn statement_temp_released_at_semicolon() {
        let r = report("impl S { fn f(&self) { self.a.lock().push(1); self.b.lock().push(2); } }");
        assert_eq!(r.sites.len(), 2);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn statement_temp_holds_within_statement() {
        let r = report("impl S { fn f(&self) { merge(self.a.lock(), self.b.lock()); } }");
        assert_eq!(r.edges.len(), 1);
        assert_eq!(r.edges[0].from, "S.a");
        assert_eq!(r.edges[0].to, "S.b");
    }

    #[test]
    fn double_lock_same_mutex_is_self_cycle() {
        let r = report("fn f(m: &M) { let g = m.lock(); let h = m.lock(); use_(g, h); }");
        assert_eq!(r.cycles.len(), 1);
        assert_eq!(r.cycles[0].nodes, vec!["m", "m"]);
    }

    #[test]
    fn rwlock_read_read_not_flagged() {
        let r = report("fn f(m: &L) { let g = m.read(); let h = m.read(); use_(g, h); }");
        assert!(r.cycles.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn read_then_write_same_lock_flagged() {
        let r = report("fn f(m: &L) { let g = m.read(); let h = m.write(); use_(g, h); }");
        assert_eq!(r.cycles.len(), 1);
    }

    #[test]
    fn if_let_try_lock_scopes_to_block() {
        let r = report(
            "fn f(a: &M, b: &M) { if let Some(g) = a.try_lock() { touch(g); } \
             let h = b.lock(); keep(h); }",
        );
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn io_read_write_with_args_ignored() {
        let r = report("fn f(w: &mut W) { w.write(buf); w.read(buf2); }");
        assert!(r.sites.is_empty());
    }

    #[test]
    fn function_call_receiver_named() {
        let r = report("fn f() { let g = registry().lock(); touch(g); }");
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].lock, "registry()");
    }

    #[test]
    fn test_code_exempt() {
        let r = report(
            "#[cfg(test)] mod tests { fn f(a: &M, b: &M) { let g = b.lock(); \
             let h = a.lock(); use_(g, h); } }",
        );
        assert!(r.sites.is_empty());
    }
}
