//! Concurrency-readiness analysis (`xmlrel-lint --conc`).
//!
//! ROADMAP item 1 (MVCC reads behind a real query server) needs
//! `XmlStore`/`Database` to become `Send + Sync`, interior locking at the
//! catalog/WAL choke points, and disciplined atomics on the shared
//! counters. This module is the static gate that (a) names exactly *why*
//! the handle types are thread-hostile today, as field chains checked
//! against a committed allowlist that may only shrink, (b) proves the lock
//! acquisition graph acyclic so the locking that threading introduces is
//! born deadlock-checked, and (c) flags undisciplined atomics (non-CAS
//! read-modify-write sequences, mixed ordering families).
//!
//! Three passes over an item-level parse ([`crate::items`]) of the whole
//! workspace:
//! - [`sendsync`] — Send/Sync reachability over the struct/field type
//!   graph, rooted at the public handle types.
//! - [`locks`] — `Mutex`/`RwLock` guard scopes, the lock-order graph, and
//!   cycle detection (intraprocedural; see module docs for limits).
//! - [`atomics`] — per-atomic ordering families and load…store
//!   read-modify-write detection.
//!
//! Unlike the token rules, these findings are not suppressed with
//! `lint:allow` comments: the Send/Sync debt lives in one committed file
//! (`CONC_ALLOWLIST.txt` at the workspace root) so the whole worklist is
//! readable in one place, every entry must still match a real finding
//! (stale entries fail the gate), and lock cycles / atomics findings are
//! never allowlistable at all.

pub mod atomics;
pub mod locks;
pub mod sendsync;

use crate::items::{self, Items};
use crate::lexer::{self, Tok};
use std::path::{Path, PathBuf};

/// One parsed source file: tokens, items, and the test-region mask (test
/// code is exempt from all three analyses, like the token rules).
pub struct ParsedFile {
    /// Path as reported (normalized to `/` separators).
    pub file: String,
    /// Owning crate: the directory name under `crates/`, or `xmlrel` for
    /// the root `src/`.
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub items: Items,
    pub test_mask: Vec<bool>,
}

/// The whole workspace, parsed.
pub struct Workspace {
    pub files: Vec<ParsedFile>,
}

/// Derive the crate name from a path like `crates/reldb/src/storage.rs`.
fn crate_of(file: &str) -> String {
    let norm = file.replace('\\', "/");
    if let Some(pos) = norm.find("crates/") {
        let rest = &norm[pos + "crates/".len()..];
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "xmlrel".to_string()
}

impl Workspace {
    /// Parse in-memory sources (tests and fixtures).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let files = sources
            .iter()
            .map(|(file, src)| {
                let lexed = lexer::lex(src);
                let items = items::parse_items(&lexed.tokens);
                let test_mask = crate::rules::test_region_mask(&lexed.tokens);
                ParsedFile {
                    file: file.replace('\\', "/"),
                    crate_name: crate_of(file),
                    toks: lexed.tokens,
                    items,
                    test_mask,
                }
            })
            .collect();
        Workspace { files }
    }

    /// Parse every linted `.rs` file under the given roots.
    pub fn load(roots: &[PathBuf]) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for r in roots {
            crate::collect_files(r, &mut paths)?;
        }
        paths.sort();
        paths.dedup();
        let mut owned: Vec<(String, String)> = Vec::new();
        for p in &paths {
            let src = std::fs::read_to_string(p)?;
            owned.push((p.to_string_lossy().into_owned(), src));
        }
        let borrowed: Vec<(&str, &str)> = owned
            .iter()
            .map(|(f, s)| (f.as_str(), s.as_str()))
            .collect();
        Ok(Workspace::from_sources(&borrowed))
    }
}

/// One committed Send/Sync-debt entry: a root handle type plus the field
/// chain that makes it thread-hostile, with a free-form note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Qualified root, e.g. `reldb::Database`.
    pub root: String,
    /// Field chain from the root, e.g. `durability.backend`.
    pub path: String,
    /// Everything after the chain: justification / owning-roadmap note.
    pub note: String,
}

/// The committed allowlist (`CONC_ALLOWLIST.txt`).
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist format: one entry per line,
    /// `<root> <chain> <note...>`; `#` lines and blanks are skipped.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(root), Some(path)) = (parts.next(), parts.next()) else {
                continue;
            };
            entries.push(AllowEntry {
                root: root.to_string(),
                path: path.to_string(),
                note: parts.next().unwrap_or("").trim().to_string(),
            });
        }
        Allowlist { entries }
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Allowlist {
        match std::fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    fn contains(&self, root: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.root == root && e.path == path)
    }
}

/// The combined concurrency-readiness report.
pub struct ConcReport {
    /// Per-root Send/Sync reachability results.
    pub roots: Vec<sendsync::RootReport>,
    /// Allowlist entries that matched no finding: the debt was paid, so
    /// the entry must be deleted (this is how "only shrink" is enforced).
    pub stale_allowlist: Vec<AllowEntry>,
    /// Lock acquisition sites, nesting edges, and any cycles.
    pub locks: locks::LockReport,
    /// Atomic usage inventory and discipline findings.
    pub atomics: atomics::AtomicsReport,
}

/// Run all three analyses over a parsed workspace.
pub fn analyze(ws: &Workspace, allow: &Allowlist) -> ConcReport {
    analyze_rooted(ws, allow, sendsync::DEFAULT_ROOTS)
}

/// [`analyze`] with an explicit root set (tests and fixtures).
pub fn analyze_rooted(ws: &Workspace, allow: &Allowlist, roots: &[(&str, &str)]) -> ConcReport {
    let mut root_reports = sendsync::audit(ws, roots);
    for r in &mut root_reports {
        for c in &mut r.chains {
            c.allowlisted = allow.contains(&r.root, &c.path);
        }
    }
    let stale: Vec<AllowEntry> = allow
        .entries
        .iter()
        .filter(|e| {
            !root_reports
                .iter()
                .any(|r| r.root == e.root && r.chains.iter().any(|c| c.path == e.path))
        })
        .cloned()
        .collect();
    ConcReport {
        roots: root_reports,
        stale_allowlist: stale,
        locks: locks::analyze(ws),
        atomics: atomics::analyze(ws),
    }
}

impl ConcReport {
    /// Everything that fails the gate, as human-readable diagnostics.
    /// Empty means the workspace is concurrency-clean modulo the
    /// committed allowlist.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.roots {
            for c in r.chains.iter().filter(|c| !c.allowlisted) {
                out.push(format!(
                    "send/sync: {} is {} via `{}`: {} ({}:{})\n  add to CONC_ALLOWLIST.txt only \
                     with a justification, or fix the field",
                    r.root,
                    c.kills(),
                    c.path,
                    c.reason,
                    c.file,
                    c.line
                ));
            }
        }
        for e in &self.stale_allowlist {
            out.push(format!(
                "stale allowlist entry: `{} {}` matches no finding — the debt was paid; \
                 delete the line from CONC_ALLOWLIST.txt (the allowlist may only shrink)",
                e.root, e.path
            ));
        }
        for cycle in &self.locks.cycles {
            out.push(format!("lock-order cycle:\n{}", cycle.describe()));
        }
        for f in &self.atomics.findings {
            out.push(format!("atomics: {}", f.message));
        }
        out
    }

    /// Machine-readable report (`target/conclint.json`).
    pub fn to_json(&self) -> String {
        let esc = crate::esc_json;
        let mut s = String::from("{\n  \"schema\": \"conclint/v1\",\n  \"sendsync\": [\n");
        for (i, r) in self.roots.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"root\": \"{}\", \"send\": {}, \"sync\": {}, \"chains\": [",
                esc(&r.root),
                r.is_send(),
                r.is_sync()
            ));
            for (j, c) in r.chains.iter().enumerate() {
                s.push_str(&format!(
                    "\n      {{\"path\": \"{}\", \"type\": \"{}\", \"kills\": \"{}\", \
                     \"reason\": \"{}\", \"allowlisted\": {}, \"file\": \"{}\", \"line\": {}}}{}",
                    esc(&c.path),
                    esc(&c.ty),
                    c.kills(),
                    esc(&c.reason),
                    c.allowlisted,
                    esc(&c.file),
                    c.line,
                    if j + 1 < r.chains.len() { "," } else { "" }
                ));
            }
            if !r.chains.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str(&format!(
                "]}}{}\n",
                if i + 1 < self.roots.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"stale_allowlist\": [");
        for (i, e) in self.stale_allowlist.iter().enumerate() {
            s.push_str(&format!(
                "{}\"{} {}\"",
                if i > 0 { ", " } else { "" },
                esc(&e.root),
                esc(&e.path)
            ));
        }
        s.push_str("],\n  \"locks\": {\n    \"acquisitions\": [\n");
        for (i, a) in self.locks.sites.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"lock\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}{}\n",
                esc(&a.lock),
                esc(&a.fn_name),
                esc(&a.file),
                a.line,
                if i + 1 < self.locks.sites.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("    ],\n    \"edges\": [\n");
        for (i, e) in self.locks.edges.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"from\": \"{}\", \"to\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}}}{}\n",
                esc(&e.from),
                esc(&e.to),
                esc(&e.fn_name),
                esc(&e.file),
                e.line,
                if i + 1 < self.locks.edges.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("    ],\n    \"cycles\": [");
        for (i, c) in self.locks.cycles.iter().enumerate() {
            s.push_str(&format!(
                "{}\"{}\"",
                if i > 0 { ", " } else { "" },
                esc(&c.nodes.join(" -> "))
            ));
        }
        s.push_str("]\n  },\n  \"atomics\": {\n    \"atomics\": [\n");
        for (i, a) in self.atomics.atomics.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"id\": \"{}\", \"orderings\": [{}], \"sites\": {}}}{}\n",
                esc(&a.id),
                a.orderings
                    .iter()
                    .map(|o| format!("\"{o}\""))
                    .collect::<Vec<_>>()
                    .join(", "),
                a.sites,
                if i + 1 < self.atomics.atomics.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("    ],\n    \"findings\": [\n");
        for (i, f) in self.atomics.findings.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"kind\": \"{}\", \"id\": \"{}\", \"message\": \"{}\"}}{}\n",
                esc(&f.kind),
                esc(&f.id),
                esc(&f.message),
                if i + 1 < self.atomics.findings.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("    ]\n  }\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_skips_comments() {
        let a = Allowlist::parse(
            "# the debt register\n\
             \n\
             reldb::Database durability.backend dyn StorageBackend — MVCC PR makes it Send\n\
             core::XmlStore db.durability.backend same chain, seen through the store\n",
        );
        assert_eq!(a.entries.len(), 2);
        assert!(a.contains("reldb::Database", "durability.backend"));
        assert!(!a.contains("reldb::Database", "other.chain"));
        assert!(a.entries[0].note.contains("MVCC"));
    }

    #[test]
    fn crate_names_derived_from_paths() {
        assert_eq!(crate_of("crates/reldb/src/storage.rs"), "reldb");
        assert_eq!(crate_of("crates\\core\\src\\store.rs"), "core");
        assert_eq!(crate_of("src/main.rs"), "xmlrel");
    }

    #[test]
    fn stale_allowlist_entries_reported() {
        let ws =
            Workspace::from_sources(&[("crates/reldb/src/a.rs", "pub struct Clean { n: u64 }")]);
        let allow = Allowlist::parse("reldb::Clean n paid off long ago");
        let report = analyze_rooted(&ws, &allow, &[("reldb", "Clean")]);
        assert_eq!(report.stale_allowlist.len(), 1);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("stale allowlist entry"),
            "{failures:?}"
        );
        assert!(failures[0].contains("only shrink"));
    }

    #[test]
    fn json_report_shape() {
        let ws =
            Workspace::from_sources(&[("crates/reldb/src/a.rs", "pub struct H { cell: Rc<u8> }")]);
        let report = analyze_rooted(&ws, &Allowlist::default(), &[("reldb", "H")]);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"conclint/v1\""));
        assert!(json.contains("\"sendsync\""));
        assert!(json.contains("\"locks\""));
        assert!(json.contains("\"atomics\""));
        assert!(json.contains("\"allowlisted\": false"));
    }
}
