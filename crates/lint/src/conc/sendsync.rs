//! Send/Sync reachability audit.
//!
//! Rust derives `Send`/`Sync` structurally: a struct is `Send` iff every
//! field is. This pass replays that derivation over the item-level parse,
//! starting from the public handle types ROADMAP item 1 needs to share
//! across threads, and reports the exact field *chains* that break the
//! auto-traits — `ledger.inner.cell: Rc<RefCell<OpStats>>`, not just
//! "XmlStore is !Send".
//!
//! Classification rules (mirroring the std impls):
//! - `Rc<T>` / `rc::Weak<T>` — `!Send + !Sync`, terminally.
//! - `Cell<T>` / `RefCell<T>` / `UnsafeCell<T>` / `OnceCell<T>` — `!Sync`
//!   terminally; `Send` iff `T: Send`.
//! - `*const T` / `*mut T` — `!Send + !Sync`.
//! - `Mutex<T>` — `Send`/`Sync` iff `T: Send`.
//! - `RwLock<T>` — `Send` iff `T: Send`; `Sync` iff `T: Send + Sync`.
//! - `Arc<T>` — `Send`/`Sync` iff `T: Send + Sync`.
//! - `MutexGuard` / lock guards — `!Send` terminally.
//! - `dyn Trait` / `impl Trait` — hostile unless the bounds (or the
//!   trait's own supertraits, for workspace traits) include `Send`/`Sync`.
//! - `&T` — inherits from `T` (conservatively: both traits need `T`'s).
//! - Atomics, `fn` pointers, primitives — thread-safe.
//! - Workspace structs/enums — recurse through fields/variants.
//! - Generic parameters and unrecognized external types — assumed benign;
//!   their generic arguments are still walked (so `Wrapper<Rc<T>>` is
//!   caught even when `Wrapper` is unknown).
//!
//! The audit is deliberately one-sided: it can miss hostility hidden in
//! external crates, but it cannot be silenced in source — every reported
//! chain must either be fixed or carried in `CONC_ALLOWLIST.txt`.

use super::Workspace;
use crate::items::{EnumDef, StructDef, TypeRef};
use std::collections::HashMap;

/// The handle types the gate audits, as `(crate, type)` pairs. These are
/// the types the MVCC/serving PR must be able to move across threads.
pub const DEFAULT_ROOTS: &[(&str, &str)] = &[
    ("core", "XmlStore"),
    ("core", "Ledger"),
    ("reldb", "Database"),
    ("reldb", "SharedFiles"),
    ("reldb", "MemBackend"),
    ("reldb", "Meter"),
    ("reldb", "ProfileHandle"),
    ("obs", "CancelToken"),
    ("obs", "TraceSink"),
    ("obs", "MonitorHandle"),
];

/// One thread-hostile field chain found under a root.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Dotted field path from the root, e.g. `db.durability.backend` or
    /// `scheme.Edge.0` through an enum variant.
    pub path: String,
    /// Rendered type of the offending leaf.
    pub ty: String,
    /// Why it is hostile, e.g. ```Rc` is `!Send + !Sync` ``.
    pub reason: String,
    pub kills_send: bool,
    pub kills_sync: bool,
    /// Where the leaf field is declared.
    pub file: String,
    pub line: u32,
    /// Filled in by the gate after matching against the allowlist.
    pub allowlisted: bool,
}

impl Chain {
    /// Human tag for which auto-traits the chain breaks.
    pub fn kills(&self) -> &'static str {
        match (self.kills_send, self.kills_sync) {
            (true, true) => "!Send + !Sync",
            (true, false) => "!Send",
            (false, true) => "!Sync",
            (false, false) => "benign",
        }
    }
}

/// Audit result for one root type.
#[derive(Debug)]
pub struct RootReport {
    /// Qualified root, e.g. `reldb::Database`.
    pub root: String,
    /// All hostile chains reachable from the root (empty = Send + Sync).
    pub chains: Vec<Chain>,
    /// True when the root type was not found in the workspace (itself a
    /// gate failure: the roots list is part of the committed contract).
    pub missing: bool,
}

impl RootReport {
    pub fn is_send(&self) -> bool {
        !self.missing && self.chains.iter().all(|c| !c.kills_send)
    }
    pub fn is_sync(&self) -> bool {
        !self.missing && self.chains.iter().all(|c| !c.kills_sync)
    }
}

/// What a type contributes: the hostile chains discovered under it.
#[derive(Debug, Default, Clone)]
struct Verdict {
    chains: Vec<Chain>,
}

impl Verdict {
    fn merge(&mut self, other: Verdict) {
        self.chains.extend(other.chains);
    }
    /// Keep only chains that break Send (used under `Mutex<T>`, where
    /// `!Sync` inside is healed but `!Send` still propagates).
    fn send_only(mut self) -> Verdict {
        self.chains.retain(|c| c.kills_send);
        for c in &mut self.chains {
            c.kills_sync = false;
        }
        self
    }
}

/// Index of workspace type definitions, for name resolution.
struct Ctx<'a> {
    ws: &'a Workspace,
    /// name -> (file index, struct index)
    structs: HashMap<&'a str, Vec<(usize, usize)>>,
    enums: HashMap<&'a str, Vec<(usize, usize)>>,
    aliases: HashMap<&'a str, Vec<(usize, usize)>>,
    traits: HashMap<&'a str, Vec<(usize, usize)>>,
}

impl<'a> Ctx<'a> {
    fn build(ws: &'a Workspace) -> Ctx<'a> {
        let mut ctx = Ctx {
            ws,
            structs: HashMap::new(),
            enums: HashMap::new(),
            aliases: HashMap::new(),
            traits: HashMap::new(),
        };
        for (fi, f) in ws.files.iter().enumerate() {
            for (si, s) in f.items.structs.iter().enumerate() {
                ctx.structs.entry(&s.name).or_default().push((fi, si));
            }
            for (ei, e) in f.items.enums.iter().enumerate() {
                ctx.enums.entry(&e.name).or_default().push((fi, ei));
            }
            for (ai, a) in f.items.aliases.iter().enumerate() {
                ctx.aliases.entry(&a.name).or_default().push((fi, ai));
            }
            for (ti, t) in f.items.traits.iter().enumerate() {
                ctx.traits.entry(&t.name).or_default().push((fi, ti));
            }
        }
        ctx
    }

    /// Resolve a name to a candidate list entry: same file, then same
    /// crate, then globally unique. Ambiguity across crates resolves to
    /// nothing (assumed benign) — the committed roots keep this honest.
    fn resolve(
        &self,
        cands: Option<&Vec<(usize, usize)>>,
        from_file: usize,
    ) -> Option<(usize, usize)> {
        let cands = cands?;
        if let Some(hit) = cands.iter().find(|(fi, _)| *fi == from_file) {
            return Some(*hit);
        }
        let crate_name = &self.ws.files[from_file].crate_name;
        let in_crate: Vec<_> = cands
            .iter()
            .filter(|(fi, _)| &self.ws.files[*fi].crate_name == crate_name)
            .collect();
        if let [only] = in_crate.as_slice() {
            return Some(**only);
        }
        if in_crate.is_empty() {
            if let [only] = cands.as_slice() {
                return Some(*only);
            }
        }
        None
    }

    /// Does a workspace trait (or `Send`/`Sync` literally) carry the given
    /// marker in its bounds, directly or via one supertrait hop?
    fn bound_implies(&self, bound: &str, marker: &str, from_file: usize) -> bool {
        if bound == marker {
            return true;
        }
        if let Some((fi, ti)) = self.resolve(self.traits.get(bound), from_file) {
            return self.ws.files[fi].items.traits[ti]
                .supertraits
                .iter()
                .any(|s| s == marker);
        }
        false
    }
}

/// Cell-like wrappers: `!Sync` terminally, `Send` iff `T: Send`.
const CELLS: &[&str] = &["Cell", "RefCell", "UnsafeCell", "OnceCell"];
/// Lock guards: `!Send` terminally (releasing on another thread is UB).
const GUARDS: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

fn chain(
    path: &str,
    ty: &TypeRef,
    reason: &str,
    kills_send: bool,
    kills_sync: bool,
    file: &str,
    line: u32,
) -> Verdict {
    Verdict {
        chains: vec![Chain {
            path: path.to_string(),
            ty: ty.to_string(),
            reason: reason.to_string(),
            kills_send,
            kills_sync,
            file: file.to_string(),
            line,
            allowlisted: false,
        }],
    }
}

/// Walk one type. `path` is the dotted chain so far; `file`/`line` locate
/// the field whose declared type we are inside; `generics` are the
/// enclosing definition's type parameters; `visited` holds type names on
/// the recursion stack (cycles like `ProfileHandle.children` terminate).
#[allow(clippy::too_many_arguments)]
fn walk(
    ctx: &Ctx<'_>,
    ty: &TypeRef,
    path: &str,
    file_idx: usize,
    file: &str,
    line: u32,
    generics: &[String],
    visited: &mut Vec<String>,
) -> Verdict {
    match ty {
        TypeRef::RawPtr(_) => chain(
            path,
            ty,
            "raw pointers are `!Send + !Sync`",
            true,
            true,
            file,
            line,
        ),
        TypeRef::Ref(inner) | TypeRef::Slice(inner) => {
            walk(ctx, inner, path, file_idx, file, line, generics, visited)
        }
        TypeRef::Tuple(elems) => {
            let mut v = Verdict::default();
            for (i, e) in elems.iter().enumerate() {
                let p = if elems.len() == 1 {
                    path.to_string()
                } else {
                    format!("{path}.{i}")
                };
                v.merge(walk(ctx, e, &p, file_idx, file, line, generics, visited));
            }
            v
        }
        TypeRef::TraitObject { bounds } => {
            let send = bounds
                .iter()
                .any(|b| ctx.bound_implies(b, "Send", file_idx));
            let sync = bounds
                .iter()
                .any(|b| ctx.bound_implies(b, "Sync", file_idx));
            if send && sync {
                Verdict::default()
            } else {
                chain(
                    path,
                    ty,
                    "trait object without `+ Send + Sync` bounds (and the trait does not \
                     require them)",
                    !send,
                    !sync,
                    file,
                    line,
                )
            }
        }
        TypeRef::FnPtr | TypeRef::Opaque => Verdict::default(),
        TypeRef::Path { segments, args } => {
            let last = segments.last().map(|s| s.as_str()).unwrap_or("");
            // Bare generic parameter of the enclosing type: caller-bound.
            if segments.len() == 1 && args.is_empty() && generics.iter().any(|g| g == last) {
                return Verdict::default();
            }
            let walk_args = |visited: &mut Vec<String>| {
                let mut v = Verdict::default();
                for a in args {
                    v.merge(walk(ctx, a, path, file_idx, file, line, generics, visited));
                }
                v
            };
            match last {
                "Rc" | "Weak" if segments.len() == 1 || segments.iter().any(|s| s == "rc") => {
                    chain(
                        path,
                        ty,
                        "`Rc`/`rc::Weak` are `!Send + !Sync`",
                        true,
                        true,
                        file,
                        line,
                    )
                }
                _ if CELLS.contains(&last) => {
                    let mut v = chain(
                        path,
                        ty,
                        "cell types are `!Sync` (interior mutability without a lock)",
                        false,
                        true,
                        file,
                        line,
                    );
                    v.merge(walk_args(visited).send_only());
                    v
                }
                _ if GUARDS.contains(&last) => chain(
                    path,
                    ty,
                    "lock guards are `!Send` (must unlock on the acquiring thread)",
                    true,
                    false,
                    file,
                    line,
                ),
                "Mutex" => walk_args(visited).send_only(),
                "RwLock" => {
                    // Sync needs T: Send + Sync; Send needs T: Send. Any
                    // hostility inside propagates, but `!Sync`-only inner
                    // chains break only the outer Sync.
                    let mut v = Verdict::default();
                    for mut c in walk_args(visited).chains {
                        if !c.kills_send {
                            c.kills_sync = true;
                        }
                        v.chains.push(c);
                    }
                    v
                }
                "Arc" => {
                    // Arc<T>: Send + Sync iff T: Send + Sync — any inner
                    // hostility breaks both.
                    let mut v = Verdict::default();
                    for mut c in walk_args(visited).chains {
                        c.kills_send = true;
                        c.kills_sync = true;
                        v.chains.push(c);
                    }
                    v
                }
                _ if last.starts_with("Atomic") => Verdict::default(),
                _ => {
                    // Workspace struct/enum/alias, or unknown external.
                    if let Some((fi, si)) = ctx.resolve(ctx.structs.get(last), file_idx) {
                        let mut v = walk_struct(ctx, fi, si, path, visited);
                        v.merge(walk_args(visited));
                        return v;
                    }
                    if let Some((fi, ei)) = ctx.resolve(ctx.enums.get(last), file_idx) {
                        let mut v = walk_enum(ctx, fi, ei, path, visited);
                        v.merge(walk_args(visited));
                        return v;
                    }
                    if let Some((fi, ai)) = ctx.resolve(ctx.aliases.get(last), file_idx) {
                        if !visited.iter().any(|n| n == last) {
                            visited.push(last.to_string());
                            let a = &ctx.ws.files[fi].items.aliases[ai];
                            let aty = a.ty.clone();
                            let mut v = walk(ctx, &aty, path, fi, file, line, &[], visited);
                            v.merge(walk_args(visited));
                            visited.pop();
                            return v;
                        }
                        return Verdict::default();
                    }
                    // Unknown/external (String, Vec, BTreeMap, Instant…):
                    // benign itself, but its generic payload still counts.
                    walk_args(visited)
                }
            }
        }
    }
}

fn walk_struct(
    ctx: &Ctx<'_>,
    fi: usize,
    si: usize,
    path: &str,
    visited: &mut Vec<String>,
) -> Verdict {
    let s: &StructDef = &ctx.ws.files[fi].items.structs[si];
    if visited.iter().any(|n| n == &s.name) {
        return Verdict::default();
    }
    visited.push(s.name.clone());
    let file = ctx.ws.files[fi].file.clone();
    let mut v = Verdict::default();
    for f in &s.fields {
        let p = if path.is_empty() {
            f.name.clone()
        } else {
            format!("{path}.{}", f.name)
        };
        v.merge(walk(
            ctx,
            &f.ty,
            &p,
            fi,
            &file,
            f.line,
            &s.generics,
            visited,
        ));
    }
    visited.pop();
    v
}

fn walk_enum(
    ctx: &Ctx<'_>,
    fi: usize,
    ei: usize,
    path: &str,
    visited: &mut Vec<String>,
) -> Verdict {
    let e: &EnumDef = &ctx.ws.files[fi].items.enums[ei];
    if visited.iter().any(|n| n == &e.name) {
        return Verdict::default();
    }
    visited.push(e.name.clone());
    let file = ctx.ws.files[fi].file.clone();
    let mut v = Verdict::default();
    for var in &e.variants {
        for f in &var.fields {
            let p = if path.is_empty() {
                format!("{}.{}", var.name, f.name)
            } else {
                format!("{path}.{}.{}", var.name, f.name)
            };
            v.merge(walk(
                ctx,
                &f.ty,
                &p,
                fi,
                &file,
                f.line,
                &e.generics,
                visited,
            ));
        }
    }
    visited.pop();
    v
}

/// Run the audit for the given `(crate, type)` roots.
pub fn audit(ws: &Workspace, roots: &[(&str, &str)]) -> Vec<RootReport> {
    let ctx = Ctx::build(ws);
    let mut out = Vec::new();
    for (krate, name) in roots {
        let root = format!("{krate}::{name}");
        // Resolve the root within its declared crate, not from any file.
        let hit = ctx
            .structs
            .get(*name)
            .into_iter()
            .flatten()
            .chain(ctx.enums.get(*name).into_iter().flatten())
            .find(|(fi, _)| ws.files[*fi].crate_name == *krate)
            .copied();
        let Some((fi, idx)) = hit else {
            out.push(RootReport {
                root,
                chains: Vec::new(),
                missing: true,
            });
            continue;
        };
        let mut visited = Vec::new();
        let v = if ctx
            .structs
            .get(*name)
            .is_some_and(|c| c.contains(&(fi, idx)))
        {
            walk_struct(&ctx, fi, idx, "", &mut visited)
        } else {
            walk_enum(&ctx, fi, idx, "", &mut visited)
        };
        let mut chains = v.chains;
        chains.retain(|c| c.kills_send || c.kills_sync);
        // Deduplicate identical (path, reason) pairs — diamond reachability
        // through shared types reports once.
        chains.sort_by(|a, b| (&a.path, &a.ty).cmp(&(&b.path, &b.ty)));
        chains.dedup_by(|a, b| a.path == b.path && a.ty == b.ty);
        out.push(RootReport {
            root,
            chains,
            missing: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/reldb/src/lib.rs", src)])
    }

    fn chains_of(ws: &Workspace, root: &str) -> Vec<Chain> {
        let mut reports = audit(ws, &[("reldb", root)]);
        assert!(!reports[0].missing, "root {root} not found");
        reports.remove(0).chains
    }

    #[test]
    fn rc_field_named_with_path() {
        let w = ws("pub struct H { files: Rc<RefCell<u8>> }");
        let c = chains_of(&w, "H");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].path, "files");
        assert!(c[0].kills_send && c[0].kills_sync);
        assert!(c[0].reason.contains("Rc"));
    }

    #[test]
    fn nested_chain_through_structs() {
        let w = ws("pub struct Outer { inner: Inner }\n\
             pub struct Inner { cell: RefCell<u8> }");
        let c = chains_of(&w, "Outer");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].path, "inner.cell");
        assert!(!c[0].kills_send, "RefCell<u8> is Send");
        assert!(c[0].kills_sync);
    }

    #[test]
    fn mutex_heals_sync_not_send() {
        let w = ws("pub struct Guarded { m: Mutex<Inner> }\n\
             pub struct Inner { c: RefCell<u8>, r: Rc<u8> }");
        let c = chains_of(&w, "Guarded");
        // RefCell inside a Mutex is fine (Send, and Mutex makes it Sync);
        // Rc inside a Mutex still kills Send.
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].path, "m.r");
        assert!(c[0].kills_send);
    }

    #[test]
    fn arc_mutex_of_plain_data_is_clean() {
        let w = ws("pub struct Ledger { inner: Arc<Mutex<Inner>> }\n\
             pub struct Inner { n: u64, names: Vec<String> }");
        assert!(chains_of(&w, "Ledger").is_empty());
    }

    #[test]
    fn rwlock_needs_sync_inside() {
        let w = ws("pub struct S { l: Arc<RwLock<Inner>> }\n\
             pub struct Inner { c: Cell<u8> }");
        let c = chains_of(&w, "S");
        assert_eq!(c.len(), 1);
        // Cell is Send but !Sync; RwLock<Cell> is !Sync, Arc makes both.
        assert!(c[0].kills_send && c[0].kills_sync);
    }

    #[test]
    fn dyn_trait_unbounded_vs_bounded() {
        let w = ws("pub struct A { b: Box<dyn Backend> }\n\
             pub struct B { b: Box<dyn Backend + Send + Sync> }\n\
             pub trait Backend { fn go(&self); }");
        let a = chains_of(&w, "A");
        assert_eq!(a.len(), 1);
        assert!(a[0].reason.contains("trait object"));
        assert!(chains_of(&w, "B").is_empty());
    }

    #[test]
    fn trait_supertraits_count_as_bounds() {
        let w = ws("pub trait Task: Send + Sync { fn run(&self); }\n\
             pub struct Pool { tasks: Vec<Box<dyn Task>> }");
        assert!(chains_of(&w, "Pool").is_empty());
    }

    #[test]
    fn enum_variant_payloads_walked() {
        let w = ws("pub enum Scheme { Edge(EdgeS), Inline { s: InlineS } }\n\
             pub struct EdgeS { n: u32 }\n\
             pub struct InlineS { c: Rc<u8> }");
        let c = chains_of(&w, "Scheme");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].path, "Inline.s.c");
    }

    #[test]
    fn recursive_type_terminates() {
        let w = ws("pub struct Node { cell: Rc<u8>, children: Vec<Node> }");
        let c = chains_of(&w, "Node");
        assert_eq!(c.len(), 1, "{c:?}");
    }

    #[test]
    fn generic_param_fields_benign_but_payload_walked() {
        let w = ws("pub struct Slow<B> { inner: B, tag: Rc<u8> }");
        let c = chains_of(&w, "Slow");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].path, "tag");
    }

    #[test]
    fn unknown_wrapper_payload_still_walked() {
        let w = ws("pub struct S { x: SomeExternal<Rc<u8>> }");
        let c = chains_of(&w, "S");
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].path, "x");
    }

    #[test]
    fn raw_pointer_flagged() {
        let w = ws("pub struct S { p: *mut u8 }");
        let c = chains_of(&w, "S");
        assert_eq!(c.len(), 1);
        assert!(c[0].reason.contains("raw pointer"));
    }

    #[test]
    fn alias_resolved() {
        let w = ws("pub type Shared = Rc<RefCell<u8>>;\n\
             pub struct S { f: Shared }");
        let c = chains_of(&w, "S");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].path, "f");
    }

    #[test]
    fn missing_root_reported() {
        let w = ws("pub struct Other { n: u8 }");
        let r = audit(&w, &[("reldb", "Nope")]);
        assert!(r[0].missing);
        assert!(!r[0].is_send() && !r[0].is_sync());
    }

    #[test]
    fn same_crate_resolution_beats_foreign() {
        let w = Workspace::from_sources(&[
            (
                "crates/reldb/src/a.rs",
                "pub struct H { i: Inner }\npub struct Inner { c: Rc<u8> }",
            ),
            ("crates/obs/src/b.rs", "pub struct Inner { n: u8 }"),
        ]);
        let mut r = audit(&w, &[("reldb", "H")]);
        assert_eq!(r.remove(0).chains.len(), 1);
    }
}
