//! A lightweight item-level parse over the token stream: just enough
//! structure for cross-file analyses. Where the token rules in
//! [`crate::rules`] ask "does this token sequence look dangerous?", the
//! concurrency analyses in [`crate::conc`] need to know *what types a
//! struct's fields have* and *what a function's body tokens are* — so this
//! module extracts struct/enum/alias/trait definitions, `impl` contexts,
//! and function body ranges from the [`crate::lexer`] output.
//!
//! It is deliberately not a full Rust parser. Items nested inside function
//! bodies are skipped (the bodies are recorded as opaque token ranges for
//! the lock/atomics scans), macro invocations are opaque, and anything the
//! type grammar does not recognize degrades to [`TypeRef::Opaque`], which
//! downstream analyses treat as benign. False negatives from that
//! degradation are acceptable: the analyses gate named, committed types,
//! and the gate-teeth tests prove the shapes we care about are seen.

use crate::lexer::{Tok, TokKind};

/// A parsed type reference, pruned to what Send/Sync reachability needs.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRef {
    /// A (possibly generic) path: `Vec<u8>`, `std::rc::Rc<T>`. Segments
    /// keep only the path identifiers; `args` are the generic type
    /// arguments in order (lifetimes and const generics dropped).
    Path {
        segments: Vec<String>,
        args: Vec<TypeRef>,
    },
    /// `&T` / `&mut T`.
    Ref(Box<TypeRef>),
    /// `*const T` / `*mut T`.
    RawPtr(Box<TypeRef>),
    /// `(A, B, ...)`.
    Tuple(Vec<TypeRef>),
    /// `[T]` / `[T; N]`.
    Slice(Box<TypeRef>),
    /// `dyn A + B` or `impl A + B`: trait bound names (lifetimes dropped).
    TraitObject { bounds: Vec<String> },
    /// `fn(..) -> ..` pointers: always thread-safe, no structure kept.
    FnPtr,
    /// Anything the grammar does not recognize; treated as benign.
    Opaque,
}

impl TypeRef {
    /// The last path segment, if this is a path type (`Rc` for
    /// `std::rc::Rc<T>`).
    pub fn last_segment(&self) -> Option<&str> {
        match self {
            TypeRef::Path { segments, .. } => segments.last().map(|s| s.as_str()),
            _ => None,
        }
    }
}

impl std::fmt::Display for TypeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeRef::Path { segments, args } => {
                write!(f, "{}", segments.join("::"))?;
                if !args.is_empty() {
                    write!(f, "<")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
            TypeRef::Ref(t) => write!(f, "&{t}"),
            TypeRef::RawPtr(t) => write!(f, "*{t}"),
            TypeRef::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            TypeRef::Slice(t) => write!(f, "[{t}]"),
            TypeRef::TraitObject { bounds } => write!(f, "dyn {}", bounds.join(" + ")),
            TypeRef::FnPtr => write!(f, "fn(..)"),
            TypeRef::Opaque => write!(f, "?"),
        }
    }
}

/// One struct or enum-variant field. Tuple fields are named `"0"`, `"1"`…
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub ty: TypeRef,
    pub line: u32,
}

/// A struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    /// Generic type parameter names (`B` for `SlowBackend<B>`), used to
    /// classify bare-parameter fields as caller-bound.
    pub generics: Vec<String>,
    pub fields: Vec<FieldDef>,
}

/// One enum variant with its payload fields.
#[derive(Debug, Clone)]
pub struct VariantDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub generics: Vec<String>,
    pub variants: Vec<VariantDef>,
}

/// A `type Name = …;` alias.
#[derive(Debug, Clone)]
pub struct AliasDef {
    pub name: String,
    pub line: u32,
    pub ty: TypeRef,
}

/// A trait definition: only the supertrait names are kept, so
/// `dyn MappingScheme` can count as Send when the trait itself demands it
/// (`trait MappingScheme: Send + Sync`).
#[derive(Debug, Clone)]
pub struct TraitDef {
    pub name: String,
    pub line: u32,
    pub supertraits: Vec<String>,
}

/// One declared function parameter: its binding name and the flat token
/// text of its type (`& str`, `Option < i64 >`). Receivers (`self`,
/// `&mut self`) and non-identifier patterns are not recorded.
#[derive(Debug, Clone)]
pub struct FnParam {
    pub name: String,
    pub ty: String,
}

impl FnParam {
    /// True when the declared type can carry free-form text (`&str`,
    /// `String`, or containers of them) — the shapes the SQL taint pass
    /// treats as possible untrusted-string carriers.
    pub fn is_stringy(&self) -> bool {
        self.ty
            .split_whitespace()
            .any(|w| w == "str" || w == "String")
    }
}

/// A function with its body as a token range (`[body_start, body_end)`,
/// indices into the file's token vec, exclusive of the outer braces).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    /// The `impl` self type this fn is defined on, if any.
    pub self_ty: Option<String>,
    /// Declared parameters, in order (receiver excluded).
    pub params: Vec<FnParam>,
    /// Token index range of the body (between, not including, its braces).
    pub body: (usize, usize),
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct Items {
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    pub aliases: Vec<AliasDef>,
    pub traits: Vec<TraitDef>,
    pub fns: Vec<FnDef>,
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Parse the item structure of one token stream.
pub fn parse_items(toks: &[Tok]) -> Items {
    let mut items = Items::default();
    // Stack of `impl` self types with the brace depth their block opened
    // at; the innermost one is the context for `fn` items.
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if is_punct(t, "{") {
            depth += 1;
            i += 1;
            continue;
        }
        if is_punct(t, "}") {
            depth = depth.saturating_sub(1);
            if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "struct" => i = parse_struct(toks, i + 1, &mut items),
            "enum" => i = parse_enum(toks, i + 1, &mut items),
            "trait" => i = parse_trait(toks, i + 1, &mut items),
            "type" => i = parse_alias(toks, i + 1, &mut items),
            "impl" => {
                let (self_ty, at) = parse_impl_header(toks, i + 1);
                // `at` points at the `{` opening the impl block (or past a
                // bodiless form); record the context for contained fns.
                if let Some(ty) = self_ty {
                    if toks.get(at).is_some_and(|t| is_punct(t, "{")) {
                        impl_stack.push((ty, depth));
                    }
                }
                i = at;
            }
            "fn" => {
                let self_ty = impl_stack.last().map(|(ty, _)| ty.clone());
                i = parse_fn(toks, i + 1, self_ty, &mut items);
            }
            _ => i += 1,
        }
    }
    items
}

/// Skip a balanced `< … >` generic region starting at the `<`, collecting
/// the parameter names declared at its top level (identifiers immediately
/// after `<` or a top-level `,`, excluding lifetimes and `const` params).
/// Returns the index just past the closing `>`, plus the names.
fn skip_generics(toks: &[Tok], start: usize) -> (usize, Vec<String>) {
    let mut names = Vec::new();
    if !toks.get(start).is_some_and(|t| is_punct(t, "<")) {
        return (start, names);
    }
    let mut depth = 1usize;
    let mut j = start + 1;
    let mut at_param_start = true;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        if is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, ">") {
            depth -= 1;
        } else if depth == 1 && is_punct(t, ",") {
            at_param_start = true;
            j += 1;
            continue;
        } else if depth == 1 && at_param_start && t.kind == TokKind::Ident && t.text != "const" {
            names.push(t.text.clone());
            at_param_start = false;
        } else if t.kind == TokKind::Lifetime {
            // `'a` stays at_param_start for a following type param? No:
            // each comma resets; a lifetime consumes its slot.
            at_param_start = false;
        }
        j += 1;
    }
    (j, names)
}

/// Parse a type starting at `pos`; returns the type and the index just
/// past it. Unrecognized leading tokens yield `Opaque` and advance by one
/// so the caller always makes progress.
pub fn parse_type(toks: &[Tok], pos: usize) -> (TypeRef, usize) {
    let Some(t) = toks.get(pos) else {
        return (TypeRef::Opaque, pos);
    };
    if t.kind == TokKind::Lifetime {
        return parse_type(toks, pos + 1);
    }
    if is_punct(t, "&") {
        let mut j = pos + 1;
        while toks
            .get(j)
            .is_some_and(|t| t.kind == TokKind::Lifetime || is_ident(t, "mut"))
        {
            j += 1;
        }
        let (inner, j) = parse_type(toks, j);
        return (TypeRef::Ref(Box::new(inner)), j);
    }
    if is_punct(t, "*") {
        let mut j = pos + 1;
        if toks
            .get(j)
            .is_some_and(|t| is_ident(t, "const") || is_ident(t, "mut"))
        {
            j += 1;
        }
        let (inner, j) = parse_type(toks, j);
        return (TypeRef::RawPtr(Box::new(inner)), j);
    }
    if is_punct(t, "(") {
        let mut elems = Vec::new();
        let mut j = pos + 1;
        loop {
            if toks.get(j).is_none() {
                return (TypeRef::Opaque, j);
            }
            if toks.get(j).is_some_and(|t| is_punct(t, ")")) {
                j += 1;
                break;
            }
            let (elem, nj) = parse_type(toks, j);
            elems.push(elem);
            j = nj;
            if toks.get(j).is_some_and(|t| is_punct(t, ",")) {
                j += 1;
            } else if toks.get(j).is_some_and(|t| is_punct(t, ")")) {
                j += 1;
                break;
            } else {
                // Could not make sense of the tuple tail; skip to `)`.
                let mut depth = 1usize;
                while j < toks.len() && depth > 0 {
                    if is_punct(&toks[j], "(") {
                        depth += 1;
                    } else if is_punct(&toks[j], ")") {
                        depth -= 1;
                    }
                    j += 1;
                }
                break;
            }
        }
        if elems.len() == 1 {
            // Parenthesized type, not a tuple — but `(dyn A + B)` kept as-is.
            return (elems.remove(0), j);
        }
        return (TypeRef::Tuple(elems), j);
    }
    if is_punct(t, "[") {
        let (inner, mut j) = parse_type(toks, pos + 1);
        // Optional `; LEN` and the closing `]`.
        let mut depth = 1usize;
        while j < toks.len() && depth > 0 {
            if is_punct(&toks[j], "[") {
                depth += 1;
            } else if is_punct(&toks[j], "]") {
                depth -= 1;
            }
            j += 1;
        }
        return (TypeRef::Slice(Box::new(inner)), j);
    }
    if is_ident(t, "dyn") || is_ident(t, "impl") {
        return parse_bounds(toks, pos + 1);
    }
    if is_ident(t, "fn") {
        // `fn(args) -> ret`: skip the balanced parens and return type.
        let mut j = pos + 1;
        if toks.get(j).is_some_and(|t| is_punct(t, "(")) {
            let mut depth = 1usize;
            j += 1;
            while j < toks.len() && depth > 0 {
                if is_punct(&toks[j], "(") {
                    depth += 1;
                } else if is_punct(&toks[j], ")") {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if toks.get(j).is_some_and(|t| is_punct(t, "-"))
            && toks.get(j + 1).is_some_and(|t| is_punct(t, ">"))
        {
            let (_, nj) = parse_type(toks, j + 2);
            j = nj;
        }
        return (TypeRef::FnPtr, j);
    }
    if t.kind == TokKind::Ident {
        return parse_path_type(toks, pos);
    }
    (TypeRef::Opaque, pos + 1)
}

/// Parse a `dyn`/`impl` bound list: `A + B<..> + 'a`. Returns the trait
/// object and the index past the final bound.
fn parse_bounds(toks: &[Tok], mut pos: usize) -> (TypeRef, usize) {
    let mut bounds = Vec::new();
    loop {
        match toks.get(pos) {
            Some(t) if t.kind == TokKind::Lifetime => pos += 1,
            Some(t) if t.kind == TokKind::Ident => {
                // A bound is a path; keep its final segment (`Fn` for
                // `std::ops::Fn`), skipping generics / parenthesized args
                // and a `-> Ret` on Fn-family bounds.
                let mut name = t.text.clone();
                pos += 1;
                while toks.get(pos).is_some_and(|t| is_punct(t, ":"))
                    && toks.get(pos + 1).is_some_and(|t| is_punct(t, ":"))
                {
                    if let Some(seg) = toks.get(pos + 2) {
                        name = seg.text.clone();
                        pos += 3;
                    } else {
                        pos += 2;
                        break;
                    }
                }
                if toks.get(pos).is_some_and(|t| is_punct(t, "<")) {
                    let (nj, _) = skip_generics(toks, pos);
                    pos = nj;
                }
                if toks.get(pos).is_some_and(|t| is_punct(t, "(")) {
                    let mut depth = 1usize;
                    pos += 1;
                    while pos < toks.len() && depth > 0 {
                        if is_punct(&toks[pos], "(") {
                            depth += 1;
                        } else if is_punct(&toks[pos], ")") {
                            depth -= 1;
                        }
                        pos += 1;
                    }
                }
                if toks.get(pos).is_some_and(|t| is_punct(t, "-"))
                    && toks.get(pos + 1).is_some_and(|t| is_punct(t, ">"))
                {
                    let (_, nj) = parse_type(toks, pos + 2);
                    pos = nj;
                }
                bounds.push(name);
            }
            _ => break,
        }
        if toks.get(pos).is_some_and(|t| is_punct(t, "+")) {
            pos += 1;
        } else {
            break;
        }
    }
    (TypeRef::TraitObject { bounds }, pos)
}

/// Parse a path type with optional generic arguments.
fn parse_path_type(toks: &[Tok], mut pos: usize) -> (TypeRef, usize) {
    let mut segments = Vec::new();
    loop {
        match toks.get(pos) {
            Some(t) if t.kind == TokKind::Ident => {
                segments.push(t.text.clone());
                pos += 1;
            }
            _ => break,
        }
        if toks.get(pos).is_some_and(|t| is_punct(t, ":"))
            && toks.get(pos + 1).is_some_and(|t| is_punct(t, ":"))
        {
            pos += 2;
        } else {
            break;
        }
    }
    let mut args = Vec::new();
    if toks.get(pos).is_some_and(|t| is_punct(t, "<")) {
        pos += 1;
        loop {
            match toks.get(pos) {
                None => break,
                Some(t) if is_punct(t, ">") => {
                    pos += 1;
                    break;
                }
                Some(t) if is_punct(t, ",") => {
                    pos += 1;
                }
                Some(t) if t.kind == TokKind::Lifetime => {
                    pos += 1;
                }
                Some(t)
                    if t.kind == TokKind::Int
                        || t.kind == TokKind::Float
                        || t.kind == TokKind::Str =>
                {
                    pos += 1; // const generic argument
                }
                Some(t)
                    if t.kind == TokKind::Ident
                        && toks.get(pos + 1).is_some_and(|n| is_punct(n, "=")) =>
                {
                    // Associated type binding `Item = T`: keep the bound
                    // type as an ordinary argument.
                    let (arg, nj) = parse_type(toks, pos + 2);
                    args.push(arg);
                    pos = nj;
                }
                _ => {
                    let (arg, nj) = parse_type(toks, pos);
                    if nj == pos {
                        pos += 1; // safety: always advance
                    } else {
                        args.push(arg);
                        pos = nj;
                    }
                }
            }
        }
    }
    (TypeRef::Path { segments, args }, pos)
}

/// Skip attribute(s) `#[..]` starting at `pos`; returns the index after.
fn skip_attrs(toks: &[Tok], mut pos: usize) -> usize {
    while toks.get(pos).is_some_and(|t| is_punct(t, "#"))
        && toks.get(pos + 1).is_some_and(|t| is_punct(t, "["))
    {
        let mut depth = 1usize;
        pos += 2;
        while pos < toks.len() && depth > 0 {
            if is_punct(&toks[pos], "[") {
                depth += 1;
            } else if is_punct(&toks[pos], "]") {
                depth -= 1;
            }
            pos += 1;
        }
    }
    pos
}

/// Skip a visibility marker (`pub`, `pub(crate)`, …).
fn skip_vis(toks: &[Tok], mut pos: usize) -> usize {
    if toks.get(pos).is_some_and(|t| is_ident(t, "pub")) {
        pos += 1;
        if toks.get(pos).is_some_and(|t| is_punct(t, "(")) {
            let mut depth = 1usize;
            pos += 1;
            while pos < toks.len() && depth > 0 {
                if is_punct(&toks[pos], "(") {
                    depth += 1;
                } else if is_punct(&toks[pos], ")") {
                    depth -= 1;
                }
                pos += 1;
            }
        }
    }
    pos
}

/// Parse the fields between `{ … }` of a struct or struct-like variant.
/// `pos` is at the `{`. Returns (fields, index past the closing `}`).
fn parse_named_fields(toks: &[Tok], mut pos: usize) -> (Vec<FieldDef>, usize) {
    let mut fields = Vec::new();
    pos += 1; // past `{`
    loop {
        pos = skip_attrs(toks, pos);
        pos = skip_vis(toks, pos);
        match toks.get(pos) {
            None => break,
            Some(t) if is_punct(t, "}") => {
                pos += 1;
                break;
            }
            Some(t) if is_punct(t, ",") => pos += 1,
            Some(t) if t.kind == TokKind::Ident => {
                let name = t.text.clone();
                let line = t.line;
                if toks.get(pos + 1).is_some_and(|n| is_punct(n, ":")) {
                    let (ty, nj) = parse_type(toks, pos + 2);
                    fields.push(FieldDef { name, ty, line });
                    pos = nj;
                } else {
                    pos += 1;
                }
            }
            _ => pos += 1,
        }
    }
    (fields, pos)
}

/// Parse the fields of a tuple struct/variant. `pos` is at the `(`.
fn parse_tuple_fields(toks: &[Tok], mut pos: usize) -> (Vec<FieldDef>, usize) {
    let mut fields = Vec::new();
    pos += 1; // past `(`
    let mut idx = 0usize;
    loop {
        pos = skip_attrs(toks, pos);
        pos = skip_vis(toks, pos);
        match toks.get(pos) {
            None => break,
            Some(t) if is_punct(t, ")") => {
                pos += 1;
                break;
            }
            Some(t) if is_punct(t, ",") => pos += 1,
            Some(t) => {
                let line = t.line;
                let (ty, nj) = parse_type(toks, pos);
                if nj == pos {
                    pos += 1;
                    continue;
                }
                fields.push(FieldDef {
                    name: idx.to_string(),
                    ty,
                    line,
                });
                idx += 1;
                pos = nj;
            }
        }
    }
    (fields, pos)
}

fn parse_struct(toks: &[Tok], pos: usize, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(pos) else {
        return pos;
    };
    if name_tok.kind != TokKind::Ident {
        return pos;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let (mut j, generics) = skip_generics(toks, pos + 1);
    // Optional `where` clause before `{` (named-field form only).
    while toks
        .get(j)
        .is_some_and(|t| !(is_punct(t, "{") || is_punct(t, "(") || is_punct(t, ";")))
    {
        j += 1;
    }
    let (fields, end) = match toks.get(j) {
        Some(t) if is_punct(t, "{") => parse_named_fields(toks, j),
        Some(t) if is_punct(t, "(") => {
            let (f, e) = parse_tuple_fields(toks, j);
            // Trailing `;` (and possible where clause) after tuple structs.
            let mut e2 = e;
            while toks.get(e2).is_some_and(|t| !is_punct(t, ";")) && e2 < e + 24 {
                e2 += 1;
            }
            (f, e2)
        }
        _ => (Vec::new(), j),
    };
    items.structs.push(StructDef {
        name,
        line,
        generics,
        fields,
    });
    end
}

fn parse_enum(toks: &[Tok], pos: usize, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(pos) else {
        return pos;
    };
    if name_tok.kind != TokKind::Ident {
        return pos;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let (mut j, generics) = skip_generics(toks, pos + 1);
    while toks.get(j).is_some_and(|t| !is_punct(t, "{")) {
        j += 1;
    }
    let mut variants = Vec::new();
    if toks.get(j).is_some_and(|t| is_punct(t, "{")) {
        j += 1;
        loop {
            j = skip_attrs(toks, j);
            match toks.get(j) {
                None => break,
                Some(t) if is_punct(t, "}") => {
                    j += 1;
                    break;
                }
                Some(t) if is_punct(t, ",") => j += 1,
                Some(t) if t.kind == TokKind::Ident => {
                    let vname = t.text.clone();
                    j += 1;
                    let fields = match toks.get(j) {
                        Some(t) if is_punct(t, "(") => {
                            let (f, e) = parse_tuple_fields(toks, j);
                            j = e;
                            f
                        }
                        Some(t) if is_punct(t, "{") => {
                            let (f, e) = parse_named_fields(toks, j);
                            j = e;
                            f
                        }
                        _ => Vec::new(),
                    };
                    // Skip a discriminant `= expr` up to `,` or `}`.
                    if toks.get(j).is_some_and(|t| is_punct(t, "=")) {
                        while toks
                            .get(j)
                            .is_some_and(|t| !(is_punct(t, ",") || is_punct(t, "}")))
                        {
                            j += 1;
                        }
                    }
                    variants.push(VariantDef {
                        name: vname,
                        fields,
                    });
                }
                _ => j += 1,
            }
        }
    }
    items.enums.push(EnumDef {
        name,
        line,
        generics,
        variants,
    });
    j
}

fn parse_trait(toks: &[Tok], pos: usize, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(pos) else {
        return pos;
    };
    if name_tok.kind != TokKind::Ident {
        return pos;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let (mut j, _) = skip_generics(toks, pos + 1);
    let mut supertraits = Vec::new();
    if toks.get(j).is_some_and(|t| is_punct(t, ":")) {
        let (bounds, nj) = parse_bounds(toks, j + 1);
        if let TypeRef::TraitObject { bounds } = bounds {
            supertraits = bounds;
        }
        j = nj;
    }
    items.traits.push(TraitDef {
        name,
        line,
        supertraits,
    });
    // Leave `j` before the trait body; the main loop walks into it so
    // provided methods are still collected as fns.
    j
}

fn parse_alias(toks: &[Tok], pos: usize, items: &mut Items) -> usize {
    // `type Name<..> = Type;` — associated `type Name;` declarations (no
    // `=`) are skipped.
    let Some(name_tok) = toks.get(pos) else {
        return pos;
    };
    if name_tok.kind != TokKind::Ident {
        return pos;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let (j, _) = skip_generics(toks, pos + 1);
    if !toks.get(j).is_some_and(|t| is_punct(t, "=")) {
        return j;
    }
    let (ty, end) = parse_type(toks, j + 1);
    items.aliases.push(AliasDef { name, line, ty });
    end
}

/// Parse `impl … {`: returns the self type name (last path segment of the
/// implemented-on type) and the index of the block's `{`.
fn parse_impl_header(toks: &[Tok], pos: usize) -> (Option<String>, usize) {
    let (mut j, _) = skip_generics(toks, pos);
    // First type (either the trait or the self type).
    let (first, nj) = parse_type(toks, j);
    j = nj;
    let self_ty = if toks.get(j).is_some_and(|t| is_ident(t, "for")) {
        let (second, nj) = parse_type(toks, j + 1);
        j = nj;
        second.last_segment().map(str::to_string)
    } else {
        first.last_segment().map(str::to_string)
    };
    // Skip a where clause up to the `{`.
    while toks
        .get(j)
        .is_some_and(|t| !(is_punct(t, "{") || is_punct(t, ";")))
    {
        j += 1;
    }
    (self_ty, j)
}

/// Parse `fn name … { body }`, recording the body token range, and return
/// the index past the body (or past the `;` for bodiless declarations).
fn parse_fn(toks: &[Tok], pos: usize, self_ty: Option<String>, items: &mut Items) -> usize {
    let Some(name_tok) = toks.get(pos) else {
        return pos;
    };
    if name_tok.kind != TokKind::Ident {
        return pos;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let params = parse_fn_params(toks, pos + 1);
    // Find the body `{` at paren/bracket depth zero, or a `;` first.
    let mut depth = 0isize;
    let mut j = pos + 1;
    loop {
        let Some(t) = toks.get(j) else {
            return j;
        };
        if is_punct(t, "(") || is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            depth -= 1;
        } else if depth == 0 && is_punct(t, ";") {
            return j + 1; // bodiless declaration
        } else if depth == 0 && is_punct(t, "{") {
            break;
        }
        j += 1;
    }
    let body_start = j + 1;
    let mut braces = 1usize;
    j += 1;
    while j < toks.len() && braces > 0 {
        if is_punct(&toks[j], "{") {
            braces += 1;
        } else if is_punct(&toks[j], "}") {
            braces -= 1;
        }
        j += 1;
    }
    let body_end = j.saturating_sub(1);
    items.fns.push(FnDef {
        name,
        line,
        self_ty,
        params,
        body: (body_start, body_end),
    });
    j
}

/// Parse the parameter list that follows a fn name (skipping a generic
/// parameter list first). Best-effort: a pattern parameter that is not a
/// plain identifier is skipped rather than guessed at.
fn parse_fn_params(toks: &[Tok], mut j: usize) -> Vec<FnParam> {
    // Skip `<...>` generics (the lexer emits `<`/`>` as single puncts).
    if toks.get(j).is_some_and(|t| is_punct(t, "<")) {
        let mut angle = 0isize;
        while let Some(t) = toks.get(j) {
            if is_punct(t, "<") {
                angle += 1;
            } else if is_punct(t, ">") {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if !toks.get(j).is_some_and(|t| is_punct(t, "(")) {
        return Vec::new();
    }
    // Collect the token range of the parens at depth 1.
    let start = j + 1;
    let mut depth = 0isize;
    let mut end = start;
    while let Some(t) = toks.get(j) {
        if is_punct(t, "(") || is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                end = j;
                break;
            }
        }
        j += 1;
    }
    // Split at top-level commas (outside nested (), [], <>).
    let mut params = Vec::new();
    let mut piece: Vec<&Tok> = Vec::new();
    let mut nest = 0isize;
    for t in &toks[start..end] {
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "<") {
            nest += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, ">") {
            nest -= 1;
        } else if nest == 0 && is_punct(t, ",") {
            push_param(&piece, &mut params);
            piece.clear();
            continue;
        }
        piece.push(t);
    }
    push_param(&piece, &mut params);
    params
}

/// Turn one comma-separated parameter piece into an `FnParam` (if it is a
/// plain `name: Type` binding; receivers and pattern params are skipped).
fn push_param(piece: &[&Tok], params: &mut Vec<FnParam>) {
    let mut k = 0usize;
    while piece.get(k).is_some_and(|t| is_ident(t, "mut")) {
        k += 1;
    }
    let Some(name_tok) = piece.get(k) else { return };
    if name_tok.kind != TokKind::Ident || name_tok.text == "self" {
        return;
    }
    if !piece.get(k + 1).is_some_and(|t| is_punct(t, ":")) {
        return;
    }
    let ty = piece[k + 2..]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    params.push(FnParam {
        name: name_tok.text.clone(),
        ty,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Items {
        parse_items(&lex(src).tokens)
    }

    fn ty(src: &str) -> TypeRef {
        let toks = lex(src).tokens;
        parse_type(&toks, 0).0
    }

    #[test]
    fn parses_generic_paths() {
        assert_eq!(ty("Vec<u8>").to_string(), "Vec<u8>");
        assert_eq!(
            ty("std::rc::Rc<RefCell<BTreeMap<String, Vec<u8>>>>").to_string(),
            "std::rc::Rc<RefCell<BTreeMap<String, Vec<u8>>>>"
        );
        assert_eq!(ty("Option<Box<T>>").to_string(), "Option<Box<T>>");
    }

    #[test]
    fn parses_trait_objects_and_bounds() {
        let t = ty("Box<dyn Fn() -> String + Send + Sync>");
        let TypeRef::Path { segments, args } = &t else {
            panic!("not a path: {t:?}");
        };
        assert_eq!(segments, &["Box"]);
        let TypeRef::TraitObject { bounds } = &args[0] else {
            panic!("not a trait object: {:?}", args[0]);
        };
        assert_eq!(bounds, &["Fn", "Send", "Sync"]);
        // Unbounded dyn keeps only the trait name.
        let t = ty("Box<dyn StorageBackend>");
        let TypeRef::Path { args, .. } = &t else {
            panic!();
        };
        assert_eq!(
            args[0],
            TypeRef::TraitObject {
                bounds: vec!["StorageBackend".into()]
            }
        );
    }

    #[test]
    fn parses_refs_pointers_tuples_slices() {
        assert!(matches!(ty("&'a mut Row"), TypeRef::Ref(_)));
        assert!(matches!(ty("*const u8"), TypeRef::RawPtr(_)));
        assert!(matches!(ty("(u32, String)"), TypeRef::Tuple(_)));
        assert!(matches!(ty("[u8; 4]"), TypeRef::Slice(_)));
        assert!(matches!(ty("fn(u32) -> bool"), TypeRef::FnPtr));
    }

    #[test]
    fn lifetimes_dropped_from_generics() {
        assert_eq!(ty("MutexGuard<'a, Inner>").to_string(), "MutexGuard<Inner>");
    }

    #[test]
    fn parses_named_struct() {
        let it = items(
            "pub struct Meter {\n  cap: Option<usize>,\n  #[allow(dead_code)]\n  \
             tick: Cell<u64>,\n  pub cell: Option<Rc<RefCell<OpStats>>>,\n}",
        );
        assert_eq!(it.structs.len(), 1);
        let s = &it.structs[0];
        assert_eq!(s.name, "Meter");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["cap", "tick", "cell"]);
        assert_eq!(s.fields[2].ty.to_string(), "Option<Rc<RefCell<OpStats>>>");
    }

    #[test]
    fn parses_tuple_struct() {
        let it = items("pub struct SharedFiles(Rc<RefCell<BTreeMap<String, Vec<u8>>>>);");
        let s = &it.structs[0];
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.fields[0].name, "0");
        assert_eq!(s.fields[0].ty.last_segment(), Some("Rc"));
    }

    #[test]
    fn parses_generic_struct_params() {
        let it = items("pub struct SlowBackend<B: StorageBackend> { inner: B, ops: u64 }");
        let s = &it.structs[0];
        assert_eq!(s.generics, vec!["B"]);
        assert_eq!(s.fields[0].ty.to_string(), "B");
    }

    #[test]
    fn parses_enum_variants() {
        let it = items(
            "pub enum Scheme { Edge(EdgeScheme), Mixed { a: u32, b: Rc<X> }, Unit, Disc = 3 }",
        );
        let e = &it.enums[0];
        assert_eq!(e.variants.len(), 4);
        assert_eq!(
            e.variants[0].fields[0].ty.last_segment(),
            Some("EdgeScheme")
        );
        assert_eq!(e.variants[1].fields[1].ty.last_segment(), Some("Rc"));
        assert!(e.variants[2].fields.is_empty());
        assert!(e.variants[3].fields.is_empty());
    }

    #[test]
    fn parses_alias_and_trait() {
        let it = items(
            "type TextProvider = Box<dyn Fn() -> String + Send + Sync>;\n\
             pub trait MappingScheme: Send + Sync { fn install(&self); }\n\
             pub trait StorageBackend: fmt::Debug { fn read(&mut self); }",
        );
        assert_eq!(it.aliases.len(), 1);
        assert_eq!(it.traits.len(), 2);
        assert_eq!(it.traits[0].supertraits, vec!["Send", "Sync"]);
        assert_eq!(it.traits[1].supertraits, vec!["Debug"]);
    }

    #[test]
    fn associated_type_decl_not_an_alias() {
        let it = items("trait T { type Item; }\nimpl T for S { type Item = u32; }");
        assert_eq!(it.aliases.len(), 1); // only the impl's binding has `=`
    }

    #[test]
    fn records_fn_bodies_with_impl_context() {
        let it = items(
            "impl Ledger {\n  fn lock(&self) -> MutexGuard<'_, Inner> {\n    \
             self.inner.lock().unwrap_or_else(|e| e.into_inner())\n  }\n}\n\
             fn free() { work(); }",
        );
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].name, "lock");
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("Ledger"));
        assert_eq!(it.fns[1].name, "free");
        assert_eq!(it.fns[1].self_ty, None);
        let (a, b) = it.fns[0].body;
        assert!(b > a);
    }

    #[test]
    fn records_fn_params_with_types() {
        let it = items(
            "fn lookup(db: &Database, name: &str, kind: String, n: i64) -> R { q() }\n\
             impl S { fn m<T: Clone>(&mut self, mut label: &str, (a, b): (u8, u8)) { x(); } }",
        );
        let f = &it.fns[0];
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["db", "name", "kind", "n"]);
        assert!(!f.params[0].is_stringy());
        assert!(f.params[1].is_stringy());
        assert!(f.params[2].is_stringy());
        assert!(!f.params[3].is_stringy());
        // Receiver and pattern params are skipped; generics don't confuse
        // the list scan; `mut` bindings keep their name.
        let m = &it.fns[1];
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.params[0].name, "label");
        assert!(m.params[0].is_stringy());
    }

    #[test]
    fn trait_impl_context_uses_self_type() {
        let it = items("impl Executor for UnionAllExec<'_> {\n  fn next(&mut self) { x(); }\n}");
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("UnionAllExec"));
    }

    #[test]
    fn items_inside_fn_bodies_skipped() {
        let it = items("fn outer() { struct Hidden { x: Rc<u8> } let v = 1; }");
        assert_eq!(it.structs.len(), 0);
        assert_eq!(it.fns.len(), 1);
    }

    #[test]
    fn nested_impls_pop_correctly() {
        let it = items(
            "impl A { fn fa(&self) { a(); } }\nimpl B { fn fb(&self) { b(); } }\nfn free() {}",
        );
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("A"));
        assert_eq!(it.fns[1].self_ty.as_deref(), Some("B"));
        assert_eq!(it.fns[2].self_ty, None);
    }

    #[test]
    fn where_clauses_skipped() {
        let it = items("pub struct W<T> where T: Clone { inner: T }");
        assert_eq!(it.structs[0].fields.len(), 1);
        let it = items("impl<B> StorageBackend for SlowBackend<B> where B: StorageBackend { fn f(&self) { g(); } }");
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("SlowBackend"));
    }
}
