//! Integration tests for the `--conc` gate.
//!
//! Three layers:
//! 1. **Real workspace**: parse the actual source tree, run all three
//!    analyses, and assert the committed state — zero unallowlisted
//!    Send/Sync chains, zero stale allowlist entries, zero lock cycles,
//!    zero atomics findings, and no `SharedFiles` debt (the entry this PR
//!    paid off must not come back).
//! 2. **Gate teeth**: injected defects — an `Rc` field on a handle type, a
//!    lock inversion, a load…store RMW, mixed orderings — must each fail
//!    with a diagnostic naming the offending path/site.
//! 3. **Report schema**: the lint and conclint JSON reports must round-trip
//!    through the monitoring endpoint's JSON parser (`xmlrel-obs-report`),
//!    so CI artifacts stay machine-readable.

use lint::conc::{self, Allowlist, Workspace};
use std::path::PathBuf;
use xmlrel_obs_report::json::{self, Json};

/// The workspace root, from this crate's manifest dir (crates/lint).
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn real_report() -> conc::ConcReport {
    let root = workspace_root();
    let roots = vec![root.join("src"), root.join("crates")];
    let ws = Workspace::load(&roots).expect("parse workspace");
    let allow = Allowlist::load(&root.join("CONC_ALLOWLIST.txt"));
    conc::analyze(&ws, &allow)
}

// ---- real workspace --------------------------------------------------------

#[test]
fn workspace_gate_is_clean() {
    let report = real_report();
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "conc gate must be clean on the committed tree:\n{}",
        failures.join("\n")
    );
    for r in &report.roots {
        assert!(!r.missing, "audited root {} disappeared", r.root);
    }
}

#[test]
fn workspace_has_no_lock_cycles_and_no_atomics_findings() {
    let report = real_report();
    assert!(report.locks.cycles.is_empty());
    assert!(report.atomics.findings.is_empty());
    // The locking and atomics the repo already has must be visible to the
    // analyses (if these go to zero the scanner broke, not the code).
    assert!(
        report.locks.sites.len() >= 5,
        "expected the ledger/metrics/trace lock sites, got {:?}",
        report.locks.sites
    );
    assert!(
        report.atomics.atomics.len() >= 3,
        "expected the cancel/stopping/inflight atomics, got {:?}",
        report.atomics.atomics
    );
}

#[test]
fn shared_files_debt_stays_paid() {
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("CONC_ALLOWLIST.txt"));
    assert!(
        allow
            .entries
            .iter()
            .all(|e| !e.root.contains("SharedFiles") && !e.root.contains("MemBackend")),
        "SharedFiles was converted to Arc<RwLock<..>>; its allowlist entry must not return: \
         {:?}",
        allow.entries
    );
    let report = real_report();
    for r in &report.roots {
        if r.root == "reldb::SharedFiles" || r.root == "reldb::MemBackend" {
            assert!(
                r.is_send() && r.is_sync(),
                "{} regressed: {:?}",
                r.root,
                r.chains
            );
        }
    }
}

#[test]
fn ledger_and_cancel_handles_are_thread_safe() {
    let report = real_report();
    for name in ["core::Ledger", "obs::CancelToken", "obs::TraceSink"] {
        let r = report
            .roots
            .iter()
            .find(|r| r.root == name)
            .unwrap_or_else(|| panic!("{name} not audited"));
        assert!(r.is_send() && r.is_sync(), "{name}: {:?}", r.chains);
    }
}

#[test]
fn allowlist_is_empty_and_every_audited_root_is_thread_safe() {
    // The concurrent-serving work paid off the last allowlist entries:
    // the committed file must carry zero live entries, and every audited
    // handle root must be fully Send + Sync with no excuses.
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("CONC_ALLOWLIST.txt"));
    assert!(
        allow.entries.is_empty(),
        "CONC_ALLOWLIST.txt may only shrink and is now empty; new entries \
         would reintroduce thread-safety debt: {:?}",
        allow.entries
    );
    let report = real_report();
    for r in &report.roots {
        assert!(
            r.is_send() && r.is_sync(),
            "{} must be Send + Sync with an empty allowlist: {:?}",
            r.root,
            r.chains
        );
    }
}

// ---- gate teeth ------------------------------------------------------------

#[test]
fn injected_rc_in_store_handle_fails_with_empty_allowlist() {
    // The teeth of the empty-allowlist gate: sneak an `Rc` back into the
    // store handle (the exact shape the Meter conversion removed) and
    // the audit must fail — there is no allowlist line to hide behind.
    let ws = Workspace::from_sources(&[(
        "crates/core/src/store.rs",
        "pub struct XmlStore { db: Arc<RwLock<Database>>, meter: Meter }\n\
         pub struct Database { epoch: u64 }\n\
         pub struct Meter { tick: Rc<Cell<u64>> }",
    )]);
    let report = conc::analyze_rooted(&ws, &Allowlist::default(), &[("core", "XmlStore")]);
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    assert!(f.contains("core::XmlStore"), "{f}");
    assert!(
        f.contains("meter.tick"),
        "diagnostic must name the chain: {f}"
    );
}

#[test]
fn injected_rc_field_fails_with_path_naming_diagnostic() {
    let ws = Workspace::from_sources(&[(
        "crates/reldb/src/db.rs",
        "pub struct Database { catalog: Catalog }\n\
         pub struct Catalog { tables: Vec<String>, cache: Rc<RefCell<Stats>> }\n\
         pub struct Stats { rows: u64 }",
    )]);
    let report = conc::analyze_rooted(&ws, &Allowlist::default(), &[("reldb", "Database")]);
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    assert!(f.contains("reldb::Database"), "{f}");
    assert!(
        f.contains("catalog.cache"),
        "diagnostic must name the chain: {f}"
    );
    assert!(f.contains("crates/reldb/src/db.rs:2"), "{f}");
    assert!(f.contains("CONC_ALLOWLIST.txt"), "{f}");
}

#[test]
fn injected_lock_inversion_fails_with_readable_diff() {
    let ws = Workspace::from_sources(&[(
        "crates/reldb/src/wal.rs",
        "impl Wal {\n\
         fn commit(&self) { let c = self.catalog.lock(); let w = self.wal.lock(); go(c, w); }\n\
         fn replay(&self) { let w = self.wal.lock(); let c = self.catalog.lock(); go(c, w); }\n\
         }",
    )]);
    let report = conc::analyze_rooted(&ws, &Allowlist::default(), &[]);
    assert_eq!(report.locks.cycles.len(), 1);
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    assert!(f.contains("lock-order cycle"), "{f}");
    // The diff names both locks, both functions, and both sites.
    assert!(f.contains("Wal.catalog") && f.contains("Wal.wal"), "{f}");
    assert!(f.contains("`commit`") && f.contains("`replay`"), "{f}");
    assert!(f.contains("wal.rs:2") && f.contains("wal.rs:3"), "{f}");
}

#[test]
fn injected_rmw_and_mixed_orderings_fail() {
    let ws = Workspace::from_sources(&[(
        "crates/obs/src/serve.rs",
        "fn admit(inflight: &AtomicUsize) {\n\
         let n = inflight.load(Ordering::Acquire);\n\
         inflight.store(n + 1, Ordering::Release);\n\
         }\n\
         fn relaxed_peek(inflight: &AtomicUsize) -> usize {\n\
         inflight.load(Ordering::Relaxed)\n\
         }",
    )]);
    let report = conc::analyze_rooted(&ws, &Allowlist::default(), &[]);
    let kinds: Vec<&str> = report
        .atomics
        .findings
        .iter()
        .map(|f| f.kind.as_str())
        .collect();
    assert!(kinds.contains(&"load-store-rmw"), "{kinds:?}");
    assert!(kinds.contains(&"mixed-ordering"), "{kinds:?}");
    assert!(report.failures().len() >= 2);
}

#[test]
fn unallowlisted_entry_fails_but_allowlisted_passes() {
    let src = "pub struct H { cell: Rc<u8> }";
    let ws = Workspace::from_sources(&[("crates/reldb/src/h.rs", src)]);
    let bare = conc::analyze_rooted(&ws, &Allowlist::default(), &[("reldb", "H")]);
    assert_eq!(bare.failures().len(), 1);
    let allow = Allowlist::parse("reldb::H cell profile cell, single-threaded executor");
    let allowed = conc::analyze_rooted(&ws, &allow, &[("reldb", "H")]);
    assert!(allowed.failures().is_empty(), "{:?}", allowed.failures());
    // And once the debt is paid, the stale entry itself fails the gate.
    let paid = Workspace::from_sources(&[("crates/reldb/src/h.rs", "pub struct H { n: u8 }")]);
    let stale = conc::analyze_rooted(&paid, &allow, &[("reldb", "H")]);
    let failures = stale.failures();
    assert_eq!(failures.len(), 1);
    assert!(
        failures[0].contains("stale allowlist entry"),
        "{failures:?}"
    );
}

// ---- report schema round-trips ---------------------------------------------

fn parse_json(text: &str) -> Json {
    json::parse(text).expect("report must parse with the obs-report JSON parser")
}

#[test]
fn conclint_report_roundtrips_through_obs_json_parser() {
    let report = real_report();
    let parsed = parse_json(&report.to_json());
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("conclint/v1")
    );
    let roots = parsed
        .get("sendsync")
        .and_then(Json::as_arr)
        .expect("sendsync array");
    assert_eq!(roots.len(), report.roots.len());
    for (node, r) in roots.iter().zip(&report.roots) {
        assert_eq!(
            node.get("root").and_then(Json::as_str),
            Some(r.root.as_str())
        );
        let chains = node.get("chains").and_then(Json::as_arr).expect("chains");
        assert_eq!(chains.len(), r.chains.len());
        for (cn, c) in chains.iter().zip(&r.chains) {
            assert_eq!(cn.get("path").and_then(Json::as_str), Some(c.path.as_str()));
            assert_eq!(
                cn.get("line").and_then(Json::as_u64),
                Some(u64::from(c.line))
            );
        }
    }
    let locks = parsed.get("locks").expect("locks object");
    let sites = locks
        .get("acquisitions")
        .and_then(Json::as_arr)
        .expect("sites");
    assert_eq!(sites.len(), report.locks.sites.len());
    let atomics = parsed
        .get("atomics")
        .and_then(|a| a.get("atomics"))
        .and_then(Json::as_arr)
        .expect("atomics array");
    assert_eq!(atomics.len(), report.atomics.atomics.len());
}

#[test]
fn lint_violation_report_roundtrips_through_obs_json_parser() {
    let violations = lint::lint_source(
        "bad.rs",
        "fn f(rows: &[u64]) -> u64 { rows[0] + path(\"a\\\"b\").unwrap() }",
    );
    assert!(!violations.is_empty());
    let parsed = parse_json(&lint::to_json(&violations));
    let arr = parsed.as_arr().expect("violations array");
    assert_eq!(arr.len(), violations.len());
    for (node, v) in arr.iter().zip(&violations) {
        assert_eq!(node.get("file").and_then(Json::as_str), Some("bad.rs"));
        assert_eq!(node.get("rule").and_then(Json::as_str), Some(v.rule));
        assert_eq!(
            node.get("line").and_then(Json::as_u64),
            Some(u64::from(v.line))
        );
        assert_eq!(
            node.get("message").and_then(Json::as_str),
            Some(v.message.as_str())
        );
    }
}

#[test]
fn empty_conclint_sections_still_parse() {
    // A workspace with no locks, no atomics, no findings must still emit
    // valid JSON (empty arrays, not truncated objects).
    let ws = Workspace::from_sources(&[("crates/reldb/src/a.rs", "pub struct H { n: u8 }")]);
    let report = conc::analyze_rooted(&ws, &Allowlist::default(), &[("reldb", "H")]);
    let parsed = parse_json(&report.to_json());
    assert_eq!(
        parsed
            .get("locks")
            .and_then(|l| l.get("cycles"))
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
}
