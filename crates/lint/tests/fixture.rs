//! Integration test: lint a deliberately violating fixture and check that
//! every rule fires exactly where expected, suppressions hold, and test
//! modules are exempt.

use lint::{lint_source, to_json};

const FIXTURE: &str = include_str!("fixtures/violations.rs.txt");

#[test]
fn fixture_trips_every_rule_once() {
    let violations = lint_source("violations.rs", FIXTURE);
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    assert_eq!(
        rules,
        vec![
            "no-unwrap",
            "no-expect",
            "no-panic",
            "no-unreachable",
            "no-todo",
            "no-index",
            "no-len-truncate",
            "no-cost-truncate",
            "bare-allow",
        ],
        "{violations:#?}"
    );
}

#[test]
fn fixture_lines_are_attributed() {
    let violations = lint_source("violations.rs", FIXTURE);
    for v in &violations {
        let line = FIXTURE.lines().nth(v.line as usize - 1).unwrap_or("");
        let needle = match v.rule {
            "no-unwrap" => ".unwrap()",
            "no-expect" => ".expect(",
            "no-panic" => "panic!",
            "no-unreachable" => "unreachable!",
            "no-todo" => "todo!",
            "no-index" => "row[0]",
            "no-len-truncate" => ".len() as u32",
            "no-cost-truncate" => "est_rows as usize",
            "bare-allow" => "lint:allow",
            other => panic!("unexpected rule {other}"),
        };
        assert!(
            line.contains(needle),
            "rule {} attributed to line {}: {line:?}",
            v.rule,
            v.line
        );
    }
}

#[test]
fn suppressed_site_not_reported() {
    let violations = lint_source("violations.rs", FIXTURE);
    // The `suppressed` fn's unwrap carries lint:allow(no-unwrap); only the
    // one in `unwraps` may be reported.
    let unwraps: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "no-unwrap")
        .collect();
    assert_eq!(unwraps.len(), 1);
    let line = FIXTURE
        .lines()
        .nth(unwraps[0].line as usize - 1)
        .unwrap_or("");
    assert!(!line.contains("lint:allow"));
}

#[test]
fn untimed_lock_gate_has_teeth() {
    // A raw lock in the storage crate's library code trips the rule...
    let src = "use std::sync::RwLock;\npub struct S { db: RwLock<u32> }\n";
    let v = lint_source("crates/reldb/src/fake_storage.rs", src);
    assert_eq!(
        v.iter().filter(|v| v.rule == "no-untimed-lock").count(),
        2,
        "{v:#?}"
    );
    // ...while the timed wrapper's own implementation (obs crate) and
    // unrelated files stay clean.
    assert!(lint_source("crates/obs/src/timed_lock.rs", src).is_empty());
    assert!(lint_source("violations.rs", src).is_empty());
}

#[test]
fn json_report_is_machine_readable() {
    let violations = lint_source("violations.rs", FIXTURE);
    let json = to_json(&violations);
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert_eq!(json.matches("\"rule\":").count(), violations.len());
    assert!(json.contains("\"rule\": \"no-len-truncate\""));
}
