//! Integration tests for the `--sql` gate.
//!
//! Three layers, mirroring `conc_gate.rs`:
//! 1. **Real workspace**: parse the actual source tree, run all three SQL
//!    analyses against the committed `SQL_ALLOWLIST.txt`, and assert the
//!    gate is clean — and that the corpus is actually seen (non-trivial
//!    statement and function counts, the six backends' tables cataloged).
//! 2. **Gate teeth**: injected defects — a raw interpolation flow, a
//!    typo'd column, a malformed constant fragment — must each fail with
//!    a diagnostic naming the site (and, for flows, the full source→sink
//!    chain with file:line at both ends).
//! 3. **Report schema**: `target/sqllint.json` must round-trip through
//!    the monitoring endpoint's JSON parser (`xmlrel-obs-report`), so CI
//!    artifacts stay machine-readable.

use lint::conc::{Allowlist, Workspace};
use lint::sqlflow::{self, SqlReport};
use std::path::PathBuf;
use xmlrel_obs_report::json::{self, Json};

/// The workspace root, from this crate's manifest dir (crates/lint).
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn real_report() -> SqlReport {
    let root = workspace_root();
    let roots = vec![root.join("src"), root.join("crates")];
    let ws = Workspace::load(&roots).expect("parse workspace");
    let allow = Allowlist::load(&root.join("SQL_ALLOWLIST.txt"));
    sqlflow::analyze(&ws, &allow)
}

// ---- real workspace --------------------------------------------------------

#[test]
fn workspace_sql_gate_is_clean() {
    let report = real_report();
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "sql gate must be clean on the committed tree:\n{}",
        failures.join("\n")
    );
}

#[test]
fn workspace_sql_corpus_is_actually_seen() {
    // If these go to zero the scanner broke, not the code: the six
    // backends' translation layer is full of SQL.
    let report = real_report();
    assert!(
        report.stats.fns_scanned >= 100,
        "taint pass saw only {} fn(s)",
        report.stats.fns_scanned
    );
    assert!(
        report.stats.literals_checked >= 40,
        "const-SQL pass parsed only {} literal(s)",
        report.stats.literals_checked
    );
    // The closed-catalog schemes (edge, interval, dewey, binary text,
    // inline text, universal meta) all have literal DDL.
    assert!(
        report.stats.tables_cataloged >= 6,
        "only {} table(s) cataloged",
        report.stats.tables_cataloged
    );
}

#[test]
fn workspace_allowlist_entries_are_all_live() {
    // Redundant with failures() but pins the shrink-only contract from
    // the allowlist side: every committed entry matches a live finding.
    let report = real_report();
    assert!(
        report.stale_allowlist.is_empty(),
        "stale SQL_ALLOWLIST entries: {:?}",
        report.stale_allowlist
    );
}

// ---- gate teeth ------------------------------------------------------------

/// A fixture file in the taint pass's scope plus DDL for the tables it
/// mentions (so the ident pass has a catalog to check against).
fn fixture(src: &str) -> SqlReport {
    let ws = Workspace::from_sources(&[("crates/core/src/compile/fix.rs", src)]);
    sqlflow::analyze(&ws, &Allowlist::default())
}

#[test]
fn injected_raw_interpolation_fails_with_full_chain() {
    let report = fixture(
        r#"fn setup(db: &Db) { db.execute("CREATE TABLE edge (doc INT, label TEXT)"); }
        fn find(db: &Db, label: &str) {
            let mut sql = String::from("SELECT doc FROM edge WHERE label = '");
            sql.push_str(label);
            sql.push('\'');
            db.query(&sql);
        }"#,
    );
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    // The diagnostic names the sink site, the full chain with file:line
    // at both ends, and the remediation.
    assert!(f.contains("sql-flow"), "{f}");
    assert!(
        f.contains("crates/core/src/compile/fix.rs:2"),
        "source end must carry file:line: {f}"
    );
    assert!(
        f.contains("crates/core/src/compile/fix.rs:6"),
        "sink end must carry file:line: {f}"
    );
    assert!(f.contains("carries untrusted text"), "{f}");
    assert!(f.contains("`label"), "{f}");
    assert!(f.contains("flows into `sql`"), "{f}");
    assert!(f.contains("sql_lit/sql_ident"), "{f}");
    assert!(f.contains("SQL_ALLOWLIST.txt"), "{f}");
}

#[test]
fn injected_typod_column_fails_naming_table_and_column() {
    let report = fixture(
        r#"fn f(db: &Db, doc: i64) {
            db.execute("CREATE TABLE inode (doc INT, pre INT, size INT, level INT)");
            db.query(&format!("SELECT pre, sizee FROM inode WHERE doc = {doc}"));
        }"#,
    );
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    assert!(f.contains("sql-ident"), "{f}");
    assert!(f.contains("`sizee` is not a column of `inode`"), "{f}");
    assert!(f.contains("crates/core/src/compile/fix.rs:3"), "{f}");
}

#[test]
fn injected_malformed_constant_fragment_fails_with_parser_error() {
    let report = fixture(
        r#"fn f(db: &Db) {
            db.query("SELECT pre FORM inode LIMIT 1");
        }"#,
    );
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    let f = &failures[0];
    assert!(f.contains("sql-parse"), "{f}");
    assert!(f.contains("crates/core/src/compile/fix.rs:2"), "{f}");
    assert!(f.contains("folded: SELECT pre FORM inode"), "{f}");
}

#[test]
fn seam_routed_version_of_each_fixture_is_clean() {
    let report = fixture(
        r#"fn setup(db: &Db) { db.execute("CREATE TABLE edge (doc INT, label TEXT)"); }
        fn find(db: &Db, label: &str) {
            db.query(&format!("SELECT doc FROM edge WHERE label = {}", sql_lit(label)));
        }"#,
    );
    assert!(report.failures().is_empty(), "{:?}", report.failures());
}

#[test]
fn unallowlisted_flow_fails_but_allowlisted_passes_and_stale_fails() {
    let src = r#"fn f(db: &Db, name: &str) {
        db.execute("CREATE TABLE t (name TEXT)");
        db.query(&format!("SELECT name FROM t WHERE name = '{name}'"));
    }"#;
    let ws = Workspace::from_sources(&[("crates/core/src/compile/fix.rs", src)]);
    let bare = sqlflow::analyze(&ws, &Allowlist::default());
    assert_eq!(bare.failures().len(), 1);
    let key = bare.flows[0].key();

    let allow = Allowlist::parse(&format!("flow {key} known-safe, tracked in ROADMAP item 4"));
    let allowed = sqlflow::analyze(&ws, &allow);
    assert!(allowed.failures().is_empty(), "{:?}", allowed.failures());

    // Once the flow is routed through the seam, the entry goes stale and
    // itself fails the gate (shrink-only, same contract as conc).
    let paid = Workspace::from_sources(&[(
        "crates/core/src/compile/fix.rs",
        r#"fn f(db: &Db, name: &str) {
            db.execute("CREATE TABLE t (name TEXT)");
            db.query(&format!("SELECT name FROM t WHERE name = {}", sql_lit(name)));
        }"#,
    )]);
    let stale = sqlflow::analyze(&paid, &allow);
    let failures = stale.failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(
        failures[0].contains("stale allowlist entry"),
        "{failures:?}"
    );
    assert!(failures[0].contains("may only shrink"), "{failures:?}");
}

// ---- report schema round-trips ---------------------------------------------

#[test]
fn sqllint_report_roundtrips_through_obs_json_parser() {
    let report = real_report();
    let parsed =
        json::parse(&report.to_json()).expect("report must parse with the obs-report JSON parser");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("sqllint/v1")
    );
    let flows = parsed.get("flows").and_then(Json::as_arr).expect("flows");
    assert_eq!(flows.len(), report.flows.len());
    for (node, f) in flows.iter().zip(&report.flows) {
        assert_eq!(
            node.get("file").and_then(Json::as_str),
            Some(f.file.as_str())
        );
        assert_eq!(
            node.get("fn").and_then(Json::as_str),
            Some(f.fn_name.as_str())
        );
        assert_eq!(
            node.get("sink_line").and_then(Json::as_u64),
            Some(u64::from(f.sink_line))
        );
        let chain = node.get("chain").and_then(Json::as_arr).expect("chain");
        assert_eq!(chain.len(), f.chain.len());
    }
    let idents = parsed.get("idents").and_then(Json::as_arr).expect("idents");
    assert_eq!(idents.len(), report.ident_findings.len());
    let stats = parsed.get("stats").expect("stats");
    assert_eq!(
        stats.get("fns_scanned").and_then(Json::as_u64),
        Some(report.stats.fns_scanned as u64)
    );
    assert!(parsed.get("ok").is_some());
}

#[test]
fn sqllint_report_with_findings_roundtrips_too() {
    // Chains contain backquotes and arrows; make sure escaping holds up
    // when the report is non-empty.
    let report = fixture(
        r#"fn f(db: &Db, name: &str) {
            db.query(&format!("SELECT x FROM nosuch WHERE n = '{name}'"));
            db.query("SELECT pre FORM t LIMIT 1");
        }"#,
    );
    assert!(!report.flows.is_empty());
    assert!(!report.const_findings.is_empty());
    let parsed = json::parse(&report.to_json()).expect("parse");
    assert_eq!(
        parsed
            .get("flows")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(report.flows.len())
    );
    assert_eq!(
        parsed
            .get("const_sql")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(report.const_findings.len())
    );
}
