//! DBLP-style bibliography corpus: shallow, wide, data-centric — the
//! shape where DTD inlining shines (few set-valued elements, lots of
//! single-occurrence leaves).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlpar::{Document, NodeId, QName};

use crate::words::{person_name, sentence};

/// The corpus DTD.
pub const DBLP_DTD: &str = r#"
<!ELEMENT dblp (article*, inproceedings*)>
<!ELEMENT article (author+, title, journal, year, volume?)>
<!ATTLIST article key CDATA #REQUIRED>
<!ELEMENT inproceedings (author+, title, booktitle, year)>
<!ATTLIST inproceedings key CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
"#;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// Number of article entries.
    pub articles: usize,
    /// Number of inproceedings entries.
    pub inproceedings: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> DblpConfig {
        DblpConfig {
            articles: 300,
            inproceedings: 200,
            seed: 19990101,
        }
    }
}

/// Journals drawn for `journal` elements.
pub const JOURNALS: &[&str] = &[
    "TODS",
    "VLDB Journal",
    "SIGMOD Record",
    "TKDE",
    "Information Systems",
];

/// Venues drawn for `booktitle` elements.
pub const VENUES: &[&str] = &["SIGMOD", "VLDB", "ICDE", "EDBT", "PODS"];

/// Generate the bibliography document.
pub fn generate(cfg: &DblpConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut doc = Document::new_with_root(QName::local("dblp"));
    let root = doc.root();
    for i in 0..cfg.articles {
        let art = el(
            &mut doc,
            root,
            "article",
            &[("key", &format!("journals/a{i}"))],
        );
        for _ in 0..rng.gen_range(1..=3usize) {
            let pid = rng.gen_range(0..500);
            let a = person_name(&mut rng, pid);
            text_el(&mut doc, art, "author", &a);
        }
        text_el(&mut doc, art, "title", &title_case(&sentence(&mut rng, 6)));
        text_el(
            &mut doc,
            art,
            "journal",
            JOURNALS[rng.gen_range(0..JOURNALS.len())],
        );
        text_el(
            &mut doc,
            art,
            "year",
            &format!("{}", rng.gen_range(1985..=2003)),
        );
        if rng.gen_bool(0.6) {
            text_el(
                &mut doc,
                art,
                "volume",
                &format!("{}", rng.gen_range(1..=30)),
            );
        }
    }
    for i in 0..cfg.inproceedings {
        let inp = el(
            &mut doc,
            root,
            "inproceedings",
            &[("key", &format!("conf/c{i}"))],
        );
        for _ in 0..rng.gen_range(1..=4usize) {
            let pid = rng.gen_range(0..500);
            let a = person_name(&mut rng, pid);
            text_el(&mut doc, inp, "author", &a);
        }
        text_el(&mut doc, inp, "title", &title_case(&sentence(&mut rng, 7)));
        text_el(
            &mut doc,
            inp,
            "booktitle",
            VENUES[rng.gen_range(0..VENUES.len())],
        );
        text_el(
            &mut doc,
            inp,
            "year",
            &format!("{}", rng.gen_range(1985..=2003)),
        );
    }
    doc
}

/// Generate and serialize.
pub fn generate_xml(cfg: &DblpConfig) -> String {
    xmlpar::serialize::to_string(&generate(cfg))
}

fn el(doc: &mut Document, parent: NodeId, name: &str, attrs: &[(&str, &str)]) -> NodeId {
    let attributes = attrs
        .iter()
        .map(|(n, v)| xmlpar::Attribute {
            name: QName::local(*n),
            value: (*v).to_string(),
        })
        .collect();
    doc.add_element(parent, QName::local(name), attributes)
}

fn text_el(doc: &mut Document, parent: NodeId, name: &str, text: &str) -> NodeId {
    let e = el(doc, parent, name, &[]);
    doc.add_text(e, text);
    e
}

fn title_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut cap = true;
    for c in s.chars() {
        if cap && c.is_ascii_alphabetic() {
            out.push(c.to_ascii_uppercase());
            cap = false;
        } else {
            out.push(c);
            if c == ' ' {
                cap = false; // only the first word, DBLP style
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = DblpConfig {
            articles: 10,
            inproceedings: 5,
            seed: 7,
        };
        let a = generate_xml(&cfg);
        assert_eq!(a, generate_xml(&cfg));
        let doc = generate(&cfg);
        let hist = doc.label_histogram();
        assert_eq!(hist["article"], 10);
        assert_eq!(hist["inproceedings"], 5);
        assert!(hist["author"] >= 15);
    }

    #[test]
    fn dtd_parses_and_inlines() {
        let dtd = xmlpar::dtd::parse_dtd_fragment(DBLP_DTD).unwrap();
        let norm = dtd.normalize();
        // author is + under article: Many after normalization.
        let art = &norm["article"];
        let author = art.children.iter().find(|(c, _)| c == "author").unwrap();
        assert_eq!(author.1, xmlpar::dtd::Card::Many);
    }
}
