//! Deterministic pseudo-natural text generation.

use rand::rngs::SmallRng;
use rand::Rng;

/// A fixed vocabulary (Shakespeare-flavoured, as XMark's generator uses).
pub const WORDS: &[&str] = &[
    "the", "quick", "auction", "price", "gold", "silver", "merchant", "harbor", "letter", "season",
    "winter", "summer", "market", "guild", "ledger", "promise", "journey", "river", "mountain",
    "castle", "key", "door", "window", "garden", "rose", "thorn", "crown", "sword", "shield",
    "banner", "wagon", "horse", "road", "bridge", "tower", "bell", "song", "story", "page", "ink",
    "quill", "scroll", "candle", "lantern", "shadow", "light", "dawn", "dusk", "tide", "shore",
    "ship", "sail", "anchor", "compass", "map", "treasure", "chest", "coin", "bargain", "trade",
    "offer", "bid", "seal", "wax", "ribbon", "cloth", "silk", "wool", "spice", "salt", "honey",
    "bread", "wine", "barrel", "cellar", "attic", "roof", "stone",
];

/// Generate `n` space-separated words.
pub fn sentence(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 6);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

/// A personal name like "Quick Merchant42".
pub fn person_name(rng: &mut SmallRng, id: usize) -> String {
    let first = WORDS[rng.gen_range(0..WORDS.len())];
    let last = WORDS[rng.gen_range(0..WORDS.len())];
    let cap = |w: &str| {
        let mut chars = w.chars();
        match chars.next() {
            Some(c) => c.to_ascii_uppercase().to_string() + chars.as_str(),
            None => String::new(),
        }
    };
    format!("{} {}{id}", cap(first), cap(last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(sentence(&mut a, 10), sentence(&mut b, 10));
    }

    #[test]
    fn sentence_word_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sentence(&mut rng, 7);
        assert_eq!(s.split(' ').count(), 7);
    }

    #[test]
    fn names_capitalized_and_unique_by_id() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n1 = person_name(&mut rng, 1);
        let n2 = person_name(&mut rng, 2);
        assert_ne!(n1, n2);
        assert!(n1.chars().next().unwrap().is_uppercase());
    }
}
