//! `xmlgen` — deterministic synthetic XML corpora and the benchmark query
//! workload for the `xmlrel` experiments.
//!
//! Substitutes for the datasets the published experiments used (XMark,
//! DBLP, document archives): each generator is seeded, parameterized on
//! the structural axes that matter (fanout, depth, recursion, text ratio),
//! and ships a DTD so the inlining scheme can be exercised.

#![warn(missing_docs)]

pub mod auction;
pub mod dblp;
pub mod deep;
pub mod queries;
pub mod textheavy;
pub mod words;

pub use auction::{AuctionConfig, AUCTION_DTD};
pub use dblp::{DblpConfig, DBLP_DTD};
pub use deep::{DeepConfig, DEEP_DTD};
pub use queries::{QueryClass, WorkloadQuery, AUCTION_QUERIES, DBLP_QUERIES, DEEP_QUERIES};
pub use textheavy::{TextConfig, TEXT_DTD};
