//! Deep recursive corpus: nested `section` trees (the worst case for
//! child-chain translation and the showcase for native descendant axes
//! and for recursive-DTD handling in the inlining scheme).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlpar::{Document, NodeId, QName};

use crate::words::sentence;

/// The corpus DTD — `section` is recursive.
pub const DEEP_DTD: &str = r#"
<!ELEMENT report (section*)>
<!ELEMENT section (heading, para*, section*)>
<!ATTLIST section depth CDATA #IMPLIED>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
"#;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeepConfig {
    /// Maximum nesting depth of sections.
    pub depth: usize,
    /// Sections per level.
    pub fanout: usize,
    /// Paragraphs per section.
    pub paras: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepConfig {
    fn default() -> DeepConfig {
        DeepConfig {
            depth: 6,
            fanout: 3,
            paras: 2,
            seed: 4242,
        }
    }
}

/// Generate the recursive document.
pub fn generate(cfg: &DeepConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut doc = Document::new_with_root(QName::local("report"));
    let root = doc.root();
    for _ in 0..cfg.fanout {
        section(&mut doc, root, 1, cfg, &mut rng);
    }
    doc
}

/// Generate and serialize.
pub fn generate_xml(cfg: &DeepConfig) -> String {
    xmlpar::serialize::to_string(&generate(cfg))
}

fn section(doc: &mut Document, parent: NodeId, depth: usize, cfg: &DeepConfig, rng: &mut SmallRng) {
    let s = doc.add_element(
        parent,
        QName::local("section"),
        vec![xmlpar::Attribute {
            name: QName::local("depth"),
            value: depth.to_string(),
        }],
    );
    let h = doc.add_element(s, QName::local("heading"), vec![]);
    let heading = sentence(rng, 3);
    doc.add_text(h, heading);
    for _ in 0..cfg.paras {
        let p = doc.add_element(s, QName::local("para"), vec![]);
        let n = rng.gen_range(5..15);
        let t = sentence(rng, n);
        doc.add_text(p, t);
    }
    if depth < cfg.depth {
        for _ in 0..cfg.fanout.min(2) {
            section(doc, s, depth + 1, cfg, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_reached() {
        let cfg = DeepConfig {
            depth: 5,
            fanout: 2,
            paras: 1,
            seed: 1,
        };
        let doc = generate(&cfg);
        // report=0, sections 1..5, heading=6, its text node=7.
        assert_eq!(doc.max_depth(), 7);
    }

    #[test]
    fn deterministic() {
        let cfg = DeepConfig::default();
        assert_eq!(generate_xml(&cfg), generate_xml(&cfg));
    }

    #[test]
    fn recursive_dtd_parses() {
        let dtd = xmlpar::dtd::parse_dtd_fragment(DEEP_DTD).unwrap();
        let norm = dtd.normalize();
        assert!(norm["section"].children.iter().any(|(c, _)| c == "section"));
    }
}
