//! The benchmark query workload (Q1–Q12) over the auction corpus, plus
//! per-corpus extras. Each query is annotated with the class it exercises
//! so experiments can slice by class.

/// Query class, for experiment grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Pure child-axis chain.
    ChildChain,
    /// Contains one or more descendant (`//`) steps.
    Descendant,
    /// Value predicate (attribute or text comparison).
    ValuePredicate,
    /// Positional predicate.
    Positional,
    /// FLWOR (iteration, where, order by, join, constructor).
    Flwor,
}

/// One workload query.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadQuery {
    /// Identifier ("Q1"...).
    pub id: &'static str,
    /// Query text in the implemented XPath/FLWOR subset.
    pub text: &'static str,
    /// Class.
    pub class: QueryClass,
    /// Human description.
    pub description: &'static str,
}

/// The auction-corpus workload.
pub const AUCTION_QUERIES: &[WorkloadQuery] = &[
    WorkloadQuery {
        id: "Q1",
        text: "/site/regions/region/item/name",
        class: QueryClass::ChildChain,
        description: "item names via a 5-step child chain",
    },
    WorkloadQuery {
        id: "Q2",
        text: "/site/people/person[@id = 'person7']/name",
        class: QueryClass::ValuePredicate,
        description: "point lookup by person id",
    },
    WorkloadQuery {
        id: "Q3",
        text: "/site/open_auctions/open_auction/bidder/increase",
        class: QueryClass::ChildChain,
        description: "all bid increases",
    },
    WorkloadQuery {
        id: "Q4",
        text: "//item/name",
        class: QueryClass::Descendant,
        description: "leading descendant step",
    },
    WorkloadQuery {
        id: "Q5",
        text: "//open_auction//increase",
        class: QueryClass::Descendant,
        description: "double descendant",
    },
    WorkloadQuery {
        id: "Q6",
        text: "/site/people//age",
        class: QueryClass::Descendant,
        description: "trailing descendant (order-preserving case)",
    },
    WorkloadQuery {
        id: "Q7",
        text: "/site/people/person[profile/age > 40]/name",
        class: QueryClass::ValuePredicate,
        description: "nested-path numeric predicate",
    },
    WorkloadQuery {
        id: "Q8",
        text: "/site/regions/region/item[price > 90]/name",
        class: QueryClass::ValuePredicate,
        description: "selective text-value range predicate",
    },
    WorkloadQuery {
        id: "Q9",
        text: "//item[@featured = 'yes']/name",
        class: QueryClass::ValuePredicate,
        description: "attribute equality under //",
    },
    WorkloadQuery {
        id: "Q10",
        text: "/site/people/person/name/text()",
        class: QueryClass::ChildChain,
        description: "text() values",
    },
    WorkloadQuery {
        id: "Q11",
        text: "for $p in /site/people/person where $p/profile/age > 60 \
               order by $p/name return $p/name",
        class: QueryClass::Flwor,
        description: "FLWOR with where and order by",
    },
    WorkloadQuery {
        id: "Q12",
        text: "for $a in /site/open_auctions/open_auction, \
               $p in /site/people/person \
               where $a/seller/@person = $p/@id and $p/profile/age > 50 \
               return <sale>{$p/name, $a/initial}</sale>",
        class: QueryClass::Flwor,
        description: "FLWOR join on id reference with constructor",
    },
];

/// Queries of one class.
pub fn by_class(class: QueryClass) -> Vec<&'static WorkloadQuery> {
    AUCTION_QUERIES
        .iter()
        .filter(|q| q.class == class)
        .collect()
}

/// Find a query by id.
pub fn by_id(id: &str) -> Option<&'static WorkloadQuery> {
    AUCTION_QUERIES.iter().find(|q| q.id == id)
}

/// DBLP-corpus path queries (join-count experiment E6).
pub const DBLP_QUERIES: &[WorkloadQuery] = &[
    WorkloadQuery {
        id: "D1",
        text: "/dblp/article/title",
        class: QueryClass::ChildChain,
        description: "article titles",
    },
    WorkloadQuery {
        id: "D2",
        text: "/dblp/article[year = '2000']/title",
        class: QueryClass::ValuePredicate,
        description: "titles from 2000",
    },
    WorkloadQuery {
        id: "D3",
        text: "/dblp/inproceedings[booktitle = 'ICDE']/author",
        class: QueryClass::ValuePredicate,
        description: "ICDE authors",
    },
    WorkloadQuery {
        id: "D4",
        text: "//author",
        class: QueryClass::Descendant,
        description: "all authors anywhere",
    },
];

/// Deep-corpus queries (recursion experiment E12).
pub const DEEP_QUERIES: &[WorkloadQuery] = &[
    WorkloadQuery {
        id: "R1",
        text: "//section/heading",
        class: QueryClass::Descendant,
        description: "headings at every depth",
    },
    WorkloadQuery {
        id: "R2",
        text: "/report/section/section/section/heading",
        class: QueryClass::ChildChain,
        description: "exact-depth chain",
    },
    WorkloadQuery {
        id: "R3",
        text: "//section[@depth = '4']/heading",
        class: QueryClass::ValuePredicate,
        description: "depth-4 headings by attribute",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for q in AUCTION_QUERIES
            .iter()
            .chain(DBLP_QUERIES)
            .chain(DEEP_QUERIES)
        {
            xqir::parse_query(q.text).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn classes_cover_workload() {
        assert!(!by_class(QueryClass::ChildChain).is_empty());
        assert!(!by_class(QueryClass::Descendant).is_empty());
        assert!(!by_class(QueryClass::ValuePredicate).is_empty());
        assert!(!by_class(QueryClass::Flwor).is_empty());
        assert!(by_id("Q5").is_some());
        assert!(by_id("nope").is_none());
    }
}
