//! Text-heavy corpus: few elements, large text payloads and mixed
//! content — stresses value storage, `contains()` translation, and the
//! mixed-content paths of every scheme.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlpar::{Document, QName};

use crate::words::sentence;

/// The corpus DTD (mixed content in `para`).
pub const TEXT_DTD: &str = r#"
<!ELEMENT archive (entry*)>
<!ELEMENT entry (subject, body)>
<!ATTLIST entry id CDATA #REQUIRED>
<!ELEMENT subject (#PCDATA)>
<!ELEMENT body (para*)>
<!ELEMENT para (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
"#;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TextConfig {
    /// Number of entries.
    pub entries: usize,
    /// Paragraphs per entry.
    pub paras: usize,
    /// Words per paragraph.
    pub words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TextConfig {
    fn default() -> TextConfig {
        TextConfig {
            entries: 50,
            paras: 4,
            words: 60,
            seed: 777,
        }
    }
}

/// Generate the archive document.
pub fn generate(cfg: &TextConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut doc = Document::new_with_root(QName::local("archive"));
    let root = doc.root();
    for i in 0..cfg.entries {
        let entry = doc.add_element(
            root,
            QName::local("entry"),
            vec![xmlpar::Attribute {
                name: QName::local("id"),
                value: format!("e{i}"),
            }],
        );
        let subj = doc.add_element(entry, QName::local("subject"), vec![]);
        let subject = sentence(&mut rng, 5);
        doc.add_text(subj, subject);
        let body = doc.add_element(entry, QName::local("body"), vec![]);
        for _ in 0..cfg.paras {
            let para = doc.add_element(body, QName::local("para"), vec![]);
            // Mixed content: text, an emphasized span, more text.
            let first = sentence(&mut rng, cfg.words / 2);
            doc.add_text(para, first + " ");
            if rng.gen_bool(0.5) {
                let em = doc.add_element(para, QName::local("em"), vec![]);
                let hot = sentence(&mut rng, 2);
                doc.add_text(em, hot);
                let rest = sentence(&mut rng, cfg.words / 2);
                doc.add_text(para, format!(" {rest}"));
            } else {
                let rest = sentence(&mut rng, cfg.words / 2);
                doc.add_text(para, rest);
            }
        }
    }
    doc
}

/// Generate and serialize.
pub fn generate_xml(cfg: &TextConfig) -> String {
    xmlpar::serialize::to_string(&generate(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_dominates_structure() {
        let cfg = TextConfig {
            entries: 10,
            paras: 3,
            words: 40,
            seed: 1,
        };
        let doc = generate(&cfg);
        let xml = xmlpar::serialize::to_string(&doc);
        let tags: usize = doc.element_count() * 10; // ~10 bytes of markup per element
        assert!(
            xml.len() > tags * 2,
            "text should dominate: {} vs {}",
            xml.len(),
            tags
        );
    }

    #[test]
    fn deterministic_and_mixed() {
        let cfg = TextConfig::default();
        let xml = generate_xml(&cfg);
        assert_eq!(xml, generate_xml(&cfg));
        assert!(xml.contains("<em>"));
    }

    #[test]
    fn dtd_parses() {
        let dtd = xmlpar::dtd::parse_dtd_fragment(TEXT_DTD).unwrap();
        let norm = dtd.normalize();
        assert!(norm["para"].pcdata);
    }
}
