//! XMark-style auction corpus.
//!
//! A scaled-down, DTD-conforming analogue of the XMark benchmark document
//! (`site` with regions/items, people, open and closed auctions). The
//! generator is seeded and parameterized by a scale factor; scale 1.0
//! produces roughly 10k elements. The DTD below drives the inlining
//! scheme, and the element/attribute shapes exercise every query class in
//! the workload: long child chains, `//` at several depths, value
//! predicates on attributes and text, and joins via id references.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlpar::{Document, NodeId, QName};

use crate::words::{person_name, sentence};

/// The corpus DTD (internal-subset syntax, for DTD-driven inlining).
pub const AUCTION_DTD: &str = r#"
<!ELEMENT site (regions, people, open_auctions, closed_auctions)>
<!ELEMENT regions (region*)>
<!ELEMENT region (item*)>
<!ATTLIST region name CDATA #REQUIRED>
<!ELEMENT item (name, description, price)>
<!ATTLIST item id CDATA #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, profile?)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT profile (interest*, age?)>
<!ELEMENT interest (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (itemref, seller, initial, bidder*)>
<!ATTLIST open_auction id CDATA #REQUIRED>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item CDATA #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person CDATA #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date, increase)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (itemref, buyer, finalprice)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person CDATA #REQUIRED>
<!ELEMENT finalprice (#PCDATA)>
"#;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct AuctionConfig {
    /// Scale factor; 1.0 ≈ 10k elements.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AuctionConfig {
    fn default() -> AuctionConfig {
        AuctionConfig {
            scale: 0.1,
            seed: 20030301,
        }
    }
}

impl AuctionConfig {
    /// Config at a scale with the default seed.
    pub fn at_scale(scale: f64) -> AuctionConfig {
        AuctionConfig {
            scale,
            ..AuctionConfig::default()
        }
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }
}

/// The six region names.
pub const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generate the auction document.
pub fn generate(cfg: &AuctionConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let items = cfg.count(400);
    let people = cfg.count(250);
    let open = cfg.count(120);
    let closed = cfg.count(60);

    let mut doc = Document::new_with_root(QName::local("site"));
    let site = doc.root();

    // Regions with items.
    let regions = add(&mut doc, site, "regions", &[]);
    let mut item_ids = Vec::with_capacity(items);
    let per_region = items.div_ceil(REGIONS.len());
    let mut item_no = 0usize;
    for region_name in REGIONS {
        if item_no >= items {
            break;
        }
        let region = add(&mut doc, regions, "region", &[("name", region_name)]);
        for _ in 0..per_region {
            if item_no >= items {
                break;
            }
            let id = format!("item{item_no}");
            let featured = if rng.gen_bool(0.1) { "yes" } else { "no" };
            let item = add(
                &mut doc,
                region,
                "item",
                &[("id", &id), ("featured", featured)],
            );
            let name = sentence(&mut rng, 2);
            add_text_el(&mut doc, item, "name", &name);
            add_text_el(&mut doc, item, "description", &sentence(&mut rng, 12));
            add_text_el(
                &mut doc,
                item,
                "price",
                &format!("{}", rng.gen_range(1..=100)),
            );
            item_ids.push(id);
            item_no += 1;
        }
    }

    // People.
    let people_el = add(&mut doc, site, "people", &[]);
    for p in 0..people {
        let id = format!("person{p}");
        let person = add(&mut doc, people_el, "person", &[("id", &id)]);
        let pname = person_name(&mut rng, p);
        add_text_el(&mut doc, person, "name", &pname);
        add_text_el(
            &mut doc,
            person,
            "emailaddress",
            &format!(
                "mailto:{}@example.org",
                pname.to_lowercase().replace(' ', ".")
            ),
        );
        if rng.gen_bool(0.7) {
            let profile = add(&mut doc, person, "profile", &[]);
            for _ in 0..rng.gen_range(0..3usize) {
                let interest = sentence(&mut rng, 1);
                add_text_el(&mut doc, profile, "interest", &interest);
            }
            if rng.gen_bool(0.8) {
                add_text_el(
                    &mut doc,
                    profile,
                    "age",
                    &format!("{}", rng.gen_range(18..80)),
                );
            }
        }
    }

    // Open auctions.
    let opens = add(&mut doc, site, "open_auctions", &[]);
    for a in 0..open {
        let id = format!("open{a}");
        let auction = add(&mut doc, opens, "open_auction", &[("id", &id)]);
        let item = &item_ids[rng.gen_range(0..item_ids.len())];
        add(&mut doc, auction, "itemref", &[("item", item)]);
        let seller = format!("person{}", rng.gen_range(0..people));
        add(&mut doc, auction, "seller", &[("person", &seller)]);
        add_text_el(
            &mut doc,
            auction,
            "initial",
            &format!("{}", rng.gen_range(1..=50)),
        );
        for _ in 0..rng.gen_range(0..5usize) {
            let bidder = add(&mut doc, auction, "bidder", &[]);
            add_text_el(
                &mut doc,
                bidder,
                "date",
                &format!(
                    "2002-{:02}-{:02}",
                    rng.gen_range(1..=12),
                    rng.gen_range(1..=28)
                ),
            );
            add_text_el(
                &mut doc,
                bidder,
                "increase",
                &format!("{}", rng.gen_range(1..=20)),
            );
        }
    }

    // Closed auctions.
    let closeds = add(&mut doc, site, "closed_auctions", &[]);
    for _ in 0..closed {
        let auction = add(&mut doc, closeds, "closed_auction", &[]);
        let item = &item_ids[rng.gen_range(0..item_ids.len())];
        add(&mut doc, auction, "itemref", &[("item", item)]);
        let buyer = format!("person{}", rng.gen_range(0..people));
        add(&mut doc, auction, "buyer", &[("person", &buyer)]);
        add_text_el(
            &mut doc,
            auction,
            "finalprice",
            &format!("{}", rng.gen_range(10..=200)),
        );
    }

    doc
}

/// Generate and serialize (for parser-driven pipelines).
pub fn generate_xml(cfg: &AuctionConfig) -> String {
    xmlpar::serialize::to_string(&generate(cfg))
}

fn add(doc: &mut Document, parent: NodeId, name: &str, attrs: &[(&str, &str)]) -> NodeId {
    let attributes = attrs
        .iter()
        .map(|(n, v)| xmlpar::Attribute {
            name: QName::local(*n),
            value: (*v).to_string(),
        })
        .collect();
    doc.add_element(parent, QName::local(name), attributes)
}

fn add_text_el(doc: &mut Document, parent: NodeId, name: &str, text: &str) -> NodeId {
    let el = add(doc, parent, name, &[]);
    doc.add_text(el, text);
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = AuctionConfig::at_scale(0.05);
        assert_eq!(generate_xml(&cfg), generate_xml(&cfg));
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(&AuctionConfig::at_scale(0.05)).element_count();
        let large = generate(&AuctionConfig::at_scale(0.2)).element_count();
        assert!(large > small * 2, "{large} vs {small}");
    }

    #[test]
    fn structure_matches_expectations() {
        let doc = generate(&AuctionConfig::at_scale(0.05));
        let root = doc.root();
        assert_eq!(doc.name(root).unwrap().local, "site");
        let hist = doc.label_histogram();
        assert!(hist["item"] >= 20);
        assert!(hist["person"] >= 12);
        assert!(hist.contains_key("open_auction"));
        assert!(hist.contains_key("closed_auction"));
    }

    #[test]
    fn conforms_to_dtd_for_inlining() {
        // The DTD must parse and accept the generated document's shape.
        let dtd = xmlpar::dtd::parse_dtd_fragment(AUCTION_DTD).unwrap();
        assert!(dtd.elements.contains_key("site"));
        let norm = dtd.normalize();
        assert!(norm["item"].children.iter().any(|(c, _)| c == "name"));
    }

    #[test]
    fn serialized_form_reparses() {
        let xml = generate_xml(&AuctionConfig::at_scale(0.05));
        let doc = Document::parse(&xml).unwrap();
        assert_eq!(doc.name(doc.root()).unwrap().local, "site");
    }
}
