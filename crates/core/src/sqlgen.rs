//! SQL text assembly for translated queries.

/// How a table participates in the generated FROM clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Regular join (conditions go to WHERE; the engine's optimizer folds
    /// them into join conditions).
    Inner,
    /// LEFT OUTER JOIN (used for predicate branches under `or`, where an
    /// absent value must not eliminate the candidate node).
    Left,
}

/// Accumulates FROM items and WHERE conjuncts while a path is compiled,
/// and renders the final SELECT.
#[derive(Debug, Default, Clone)]
pub struct SqlBuilder {
    tables: Vec<(String, String, JoinMode, Vec<String>)>,
    wheres: Vec<String>,
    next_alias: usize,
}

impl SqlBuilder {
    /// Fresh builder.
    pub fn new() -> SqlBuilder {
        SqlBuilder::default()
    }

    /// Reserve a new table alias.
    pub fn fresh_alias(&mut self) -> String {
        let a = format!("t{}", self.next_alias);
        self.next_alias += 1;
        a
    }

    /// Add a table with a regular join; returns its alias.
    pub fn add_table(&mut self, table: &str) -> String {
        let alias = self.fresh_alias();
        self.tables.push((
            table.to_string(),
            alias.clone(),
            JoinMode::Inner,
            Vec::new(),
        ));
        alias
    }

    /// Add a table with an explicit mode and ON conditions.
    pub fn add_table_with(&mut self, table: &str, mode: JoinMode, on: Vec<String>) -> String {
        let alias = self.fresh_alias();
        self.tables
            .push((table.to_string(), alias.clone(), mode, on));
        alias
    }

    /// Add a WHERE conjunct.
    pub fn cond(&mut self, c: impl Into<String>) {
        self.wheres.push(c.into());
    }

    /// Number of tables so far.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Render `SELECT {select} FROM ... WHERE ...` (no ORDER BY/DISTINCT —
    /// the caller wraps as needed).
    pub fn render(&self, select: &str, distinct: bool) -> String {
        let mut sql = String::from("SELECT ");
        if distinct {
            sql.push_str("DISTINCT ");
        }
        sql.push_str(select);
        if self.tables.is_empty() {
            return sql;
        }
        sql.push_str(" FROM ");
        for (i, (table, alias, mode, on)) in self.tables.iter().enumerate() {
            if i == 0 {
                sql.push_str(&format!("{table} {alias}"));
                continue;
            }
            match mode {
                JoinMode::Inner => {
                    // Rendered as comma joins + WHERE; the optimizer turns
                    // them into proper joins with pushed-down conditions.
                    sql.push_str(&format!(", {table} {alias}"));
                }
                JoinMode::Left => {
                    let cond = if on.is_empty() {
                        "1 = 1".to_string()
                    } else {
                        on.join(" AND ")
                    };
                    sql.push_str(&format!(" LEFT JOIN {table} {alias} ON {cond}"));
                }
            }
        }
        // Inner-mode ON conditions live in WHERE.
        let mut wheres: Vec<String> = Vec::new();
        for (_, _, mode, on) in &self.tables {
            if *mode == JoinMode::Inner {
                wheres.extend(on.iter().cloned());
            }
        }
        wheres.extend(self.wheres.iter().cloned());
        if !wheres.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&wheres.join(" AND "));
        }
        sql
    }
}

/// The blessed quoting seam (see DESIGN.md §16): every dynamic string
/// spliced into SQL text anywhere in this crate must pass through
/// `sql_lit` (literal position) or `sql_ident` (table/column position).
/// Re-exported from `reldb::sql::quote` so the translation layer and the
/// shredder share one escaping discipline; `xmlrel-lint --sql` blesses
/// exactly these names as taint sanitizers.
pub use reldb::sql::quote::{sql_ident, sql_lit};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_comma_joins_and_where() {
        let mut b = SqlBuilder::new();
        let a0 = b.add_table("edge");
        let a1 = b.add_table_with(
            "edge",
            JoinMode::Inner,
            vec![format!("{a1}.source = {a0}.target", a1 = "t1")],
        );
        b.cond(format!("{a0}.doc = 1"));
        let sql = b.render(&format!("{a1}.target"), true);
        assert_eq!(
            sql,
            "SELECT DISTINCT t1.target FROM edge t0, edge t1 \
             WHERE t1.source = t0.target AND t0.doc = 1"
        );
    }

    #[test]
    fn renders_left_joins_with_on() {
        let mut b = SqlBuilder::new();
        let a0 = b.add_table("inode");
        let a1 = b.add_table_with(
            "inode",
            JoinMode::Left,
            vec![format!("t1.parent = {a0}.pre")],
        );
        let sql = b.render(&format!("{a0}.pre, {a1}.value"), false);
        assert!(
            sql.contains("LEFT JOIN inode t1 ON t1.parent = t0.pre"),
            "{sql}"
        );
    }

    #[test]
    fn sql_lit_escapes() {
        assert_eq!(sql_lit("O'Brien"), "'O''Brien'");
    }

    #[test]
    fn no_tables_scalar_select() {
        let b = SqlBuilder::new();
        assert_eq!(b.render("1", false), "SELECT 1");
    }
}
