//! `XmlStore`: the user-facing API — store XML in the relational engine,
//! retrieve it with XPath/XQuery.
//!
//! Construction goes through [`StoreBuilder`]:
//!
//! ```text
//! let store = XmlStore::builder(scheme).path("db_dir").open()?;
//! ```
//!
//! and every retrieval goes through one [`QueryRequest`] pipeline:
//!
//! ```text
//! let out = store.request("/bib/book/title")
//!     .doc("bib")
//!     .explain(Explain::Analyze)
//!     .trace(&sink)
//!     .run()?;
//! ```
//!
//! The request runs parse → translate → plan → execute → publish under
//! tracing spans, bumps the `queries_total{scheme=…}` metric, and returns a
//! [`QueryOutput`] carrying the published items, the raw rows, the compiled
//! SQL, and (when asked) the [`PlanReport`] and runtime
//! [`ExecProfile`](reldb::ExecProfile).
//!
//! Every execution is also recorded in the store's query [`Ledger`]: the
//! query collapses to a fingerprint with rolling latency/row/q-error
//! stats, and an execution that crosses the ledger's latency or q-error
//! threshold leaves a forensic capture (full `EXPLAIN ANALYZE` plus the
//! trace-ring tail) readable via [`XmlStore::ledger`], the `/slow`
//! monitoring endpoint, and the `xmlrel slow` CLI.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use reldb::{CancelToken, Database, Deadline, ExecLimits, ExecProfile, Value};
use shredder::{
    docstore, BinaryScheme, DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, MappingScheme,
    ShredStats, StorageStats, UniversalScheme,
};
use xmlpar::Document;
use xmlrel_obs::timed_lock::{TimedReadGuard, TimedRwLock, TimedWriteGuard, POISON_RECOVERIES};
use xmlrel_obs::{metrics, trace, PhaseTimings};
use xqir::parse_query;

use crate::compile::driver::{compile_query, OutKind, Slot, Template, Translated};
use crate::compile::{
    binary::BinaryCompiler, dewey::DeweyCompiler, edge::EdgeCompiler, inline::InlineCompiler,
    interval::IntervalCompiler, universal::UniversalCompiler, NodeKey, StepCompiler,
};
use crate::contract::{check_contract, QueryTraits};
use crate::error::{CoreError, Result};
use crate::ledger::{fingerprint, Ledger, SlowCapture, SlowTrigger};
use crate::publish;

/// Which mapping scheme a store uses.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Edge table.
    Edge(EdgeScheme),
    /// Binary (label-partitioned).
    Binary(BinaryScheme),
    /// Universal relation.
    Universal(UniversalScheme),
    /// Interval (pre/size/level).
    Interval(IntervalScheme),
    /// Dewey order keys.
    Dewey(DeweyScheme),
    /// DTD shared inlining.
    Inline(InlineScheme),
}

impl Scheme {
    /// The scheme's name.
    pub fn name(&self) -> &'static str {
        self.ops().name()
    }

    /// Borrow as the shredder trait object.
    pub fn ops(&self) -> &dyn MappingScheme {
        match self {
            Scheme::Edge(s) => s,
            Scheme::Binary(s) => s,
            Scheme::Universal(s) => s,
            Scheme::Interval(s) => s,
            Scheme::Dewey(s) => s,
            Scheme::Inline(s) => s,
        }
    }

    fn compiler(&self) -> Box<dyn StepCompiler + '_> {
        match self {
            Scheme::Edge(s) => Box::new(EdgeCompiler::new(s.clone())),
            Scheme::Binary(s) => Box::new(BinaryCompiler::new(s.clone())),
            Scheme::Universal(s) => Box::new(UniversalCompiler::new(s.clone())),
            Scheme::Interval(s) => Box::new(IntervalCompiler::new(s.clone())),
            Scheme::Dewey(s) => Box::new(DeweyCompiler::new(s.clone())),
            Scheme::Inline(s) => Box::new(InlineCompiler::new(s.clone())),
        }
    }

    fn publish_key(&self, db: &Database, key: &NodeKey) -> Result<String> {
        match (self, key) {
            (Scheme::Edge(s), NodeKey::Pre { doc, pre }) => {
                publish::publish_edge(db, s, *doc, *pre)
            }
            (Scheme::Binary(s), NodeKey::Pre { doc, pre }) => {
                publish::publish_binary(db, s, *doc, *pre)
            }
            (Scheme::Universal(s), NodeKey::Pre { doc, pre }) => {
                publish::publish_universal(db, s, *doc, *pre)
            }
            (Scheme::Interval(s), NodeKey::Pre { doc, pre }) => {
                publish::publish_interval(db, s, *doc, *pre)
            }
            (Scheme::Dewey(s), NodeKey::Dewey { doc, key }) => {
                publish::publish_dewey(db, s, *doc, key)
            }
            (
                Scheme::Inline(s),
                NodeKey::Inline {
                    doc,
                    anchor,
                    id,
                    path,
                },
            ) => publish::publish_inline(db, s, *doc, anchor, *id, path),
            _ => Err(CoreError::Translate(
                "node key does not match the scheme".into(),
            )),
        }
    }
}

/// How much plan detail a [`QueryRequest`] should gather alongside its
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Explain {
    /// Results only (the default).
    #[default]
    None,
    /// Also compile-time detail: the chosen plan, its cost breakdown, and
    /// plan-quality diagnostics ([`QueryOutput::plan`]).
    Plan,
    /// Everything `Plan` gathers plus a runtime [`ExecProfile`] with
    /// per-operator actuals ([`QueryOutput::profile`]).
    Analyze,
}

/// A query result: the published items plus everything the pipeline
/// learned on the way. Items are serialized fragments or string values, in
/// document order where the scheme guarantees one.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// One entry per result item.
    pub items: Vec<String>,
    /// The raw relational rows behind the items, after positional
    /// post-processing.
    pub rows: Vec<Vec<Value>>,
    /// The SQL the query compiled to.
    pub sql: String,
    /// Plan report, when requested via [`Explain::Plan`] or
    /// [`Explain::Analyze`].
    pub plan: Option<PlanReport>,
    /// Runtime operator profile, when requested via [`Explain::Analyze`].
    pub profile: Option<ExecProfile>,
    /// Per-phase wall-time breakdown of this execution (queue time is
    /// zero here; the serve layer fills it in for served requests).
    pub phases: PhaseTimings,
}

impl QueryOutput {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items matched.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Everything a plan verification learned about one query's chosen plan:
/// the compiled SQL, the physical plan, its cost breakdown, and any
/// plan-quality or contract findings. Obtained from
/// [`QueryRequest::report`] or carried in [`QueryOutput::plan`].
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The compiled SQL.
    pub sql: String,
    /// Rendered physical plan (EXPLAIN output).
    pub explain: String,
    /// Rendered cost breakdown, one line per plan node.
    pub cost: String,
    /// Total estimated cost of the chosen plan.
    pub total_cost: f64,
    /// Anti-pattern and contract findings (empty = plan is within contract
    /// and free of detectable planning mistakes).
    pub diagnostics: Vec<reldb::plan::Diagnostic>,
}

impl PlanReport {
    /// True when no findings were raised.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Builder for an [`XmlStore`]: pick the scheme, then optionally a durable
/// location (a directory [`path`](StoreBuilder::path) or an explicit
/// [`backend`](StoreBuilder::backend)) and scheme knobs. With neither path
/// nor backend, [`open`](StoreBuilder::open) yields an in-memory store.
pub struct StoreBuilder {
    scheme: Scheme,
    path: Option<std::path::PathBuf>,
    backend: Option<Box<dyn reldb::StorageBackend>>,
    value_index: Option<bool>,
    ledger: Option<Ledger>,
}

impl StoreBuilder {
    /// Store durably in a directory on disk: previously loaded documents
    /// are recovered from the latest snapshot plus the write-ahead log; a
    /// fresh directory gets the scheme's tables installed.
    pub fn path(mut self, path: impl Into<std::path::PathBuf>) -> StoreBuilder {
        self.path = Some(path.into());
        self
    }

    /// Store durably over an explicit storage backend (e.g. an in-memory
    /// or fault-injecting backend in tests). Mutually exclusive with
    /// [`path`](StoreBuilder::path).
    pub fn backend(mut self, backend: Box<dyn reldb::StorageBackend>) -> StoreBuilder {
        self.backend = Some(backend);
        self
    }

    /// Toggle the secondary index on the content `value` column
    /// (experiment E5's knob). Only the edge, binary, and interval schemes
    /// have the knob; [`open`](StoreBuilder::open) rejects the others.
    pub fn value_index(mut self, on: bool) -> StoreBuilder {
        self.value_index = Some(on);
        self
    }

    /// Feed this store's query ledger into an existing (shared) [`Ledger`]
    /// — e.g. one ledger across the stores of a scheme comparison, read by
    /// one monitoring endpoint. Without this, the store gets a fresh
    /// ledger with default thresholds.
    pub fn ledger(mut self, ledger: Ledger) -> StoreBuilder {
        self.ledger = Some(ledger);
        self
    }

    /// Open the store.
    pub fn open(self) -> Result<XmlStore> {
        let mut scheme = self.scheme;
        if let Some(on) = self.value_index {
            match &mut scheme {
                Scheme::Edge(s) => s.with_value_index = on,
                Scheme::Binary(s) => s.with_value_index = on,
                Scheme::Interval(s) => s.with_value_index = on,
                other => {
                    return Err(CoreError::Translate(format!(
                        "the {} scheme has no value-index knob",
                        other.name()
                    )))
                }
            }
        }
        let backend = match (self.backend, self.path) {
            (Some(_), Some(_)) => {
                return Err(CoreError::Translate(
                    "give StoreBuilder a path or a backend, not both".into(),
                ))
            }
            (Some(b), None) => Some(b),
            (None, Some(p)) => {
                Some(Box::new(reldb::FileBackend::open(p)?) as Box<dyn reldb::StorageBackend>)
            }
            (None, None) => None,
        };
        let ledger = self.ledger.unwrap_or_default();
        match backend {
            Some(b) => XmlStore::open_backend_impl(scheme, b, ledger),
            None => XmlStore::new_impl(scheme, ledger),
        }
    }
}

/// A point-in-time health snapshot of a store: liveness of the document
/// catalog plus the durability status of the underlying database.
/// Obtained from [`XmlStore::health`]; [`render`](HealthReport::render)
/// produces the `/healthz` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// True when the store can answer queries and durability is not
    /// poisoned.
    pub ok: bool,
    /// The mapping scheme's name.
    pub scheme: String,
    /// Number of loaded documents.
    pub documents: usize,
    /// Durability and catalog status of the underlying database.
    pub db: reldb::DbStatus,
    /// Process-wide count of poisoned-lock recoveries (the
    /// `lock_poison_recoveries_total` counter). Non-zero means a thread
    /// panicked while holding a lock and a later acquisition recovered —
    /// previously silent, now on every health check.
    pub poison_recoveries: u64,
}

impl HealthReport {
    /// Plain-text rendering, one `key: value` per line.
    pub fn render(&self) -> String {
        format!(
            "status: {}\nscheme: {}\ndocuments: {}\ntables: {}\ndurable: {}\n\
             snapshot_generation: {}\npoisoned: {}\nlock_poison_recoveries: {}\n",
            if self.ok { "ok" } else { "degraded" },
            self.scheme,
            self.documents,
            self.db.tables,
            self.db.durable,
            self.db.snapshot_generation,
            self.db.poisoned,
            self.poison_recoveries,
        )
    }
}

/// What taking a snapshot cost: time blocked on the database lock plus
/// time spent in the copy-on-write clone itself.
#[derive(Debug, Clone, Copy, Default)]
struct SnapTiming {
    lock_wait_us: u64,
    clone_us: u64,
}

/// An XML store: one relational database + one mapping scheme.
///
/// The store is a *handle*: clone-cheap, `Send + Sync`, and safe to share
/// across threads. The database sits behind one `RwLock`, but queries do
/// not hold it while they run — each query executes against a pinned
/// copy-on-write [`snapshot`](XmlStore::snapshot), so any number of
/// readers proceed while a writer (document load, removal, checkpoint)
/// commits through the same lock. See DESIGN.md §17.
///
/// The lock is a [`TimedRwLock`] named `db`: every acquisition feeds the
/// `lock_wait_us`/`lock_hold_us` histograms, contention counters, and
/// the writer-stall gauge (DESIGN.md §18), so the contention this design
/// trades on is measurable, not assumed.
#[derive(Clone)]
pub struct XmlStore {
    db: Arc<TimedRwLock<Database>>,
    scheme: Scheme,
    ledger: Ledger,
}

impl XmlStore {
    /// Start building a store over `scheme`. See [`StoreBuilder`].
    pub fn builder(scheme: Scheme) -> StoreBuilder {
        StoreBuilder {
            scheme,
            path: None,
            backend: None,
            value_index: None,
            ledger: None,
        }
    }

    fn new_impl(scheme: Scheme, ledger: Ledger) -> Result<XmlStore> {
        let mut db = Database::new();
        docstore::install(&mut db)?;
        scheme.ops().install(&mut db)?;
        Ok(Self::wrap(db, scheme, ledger))
    }

    /// Finish construction: wrap the database in the timed lock and
    /// pre-register the snapshot gauges so the scrape surface shows them
    /// (at zero) before the first query.
    fn wrap(db: Database, scheme: Scheme, ledger: Ledger) -> XmlStore {
        metrics::gauge_set("snapshot_epoch_lag", 0);
        XmlStore {
            db: Arc::new(TimedRwLock::new("db", db)),
            scheme,
            ledger,
        }
    }

    fn open_backend_impl(
        scheme: Scheme,
        backend: Box<dyn reldb::StorageBackend>,
        ledger: Ledger,
    ) -> Result<XmlStore> {
        let mut db = Database::open_with_backend(backend)?;
        if db.catalog.table_names().is_empty() {
            // Fresh database: create the scheme's tables (logged to the
            // WAL like any other statement). A recovered database already
            // has them.
            docstore::install(&mut db)?;
            scheme.ops().install(&mut db)?;
        }
        Ok(Self::wrap(db, scheme, ledger))
    }

    /// Take the database lock for reading. The timed wrapper records
    /// wait/hold time and recovers (and counts) poisoning: a reader that
    /// panicked cannot have left the database inconsistent.
    fn db_read(&self) -> TimedReadGuard<'_, Database> {
        self.db.read()
    }

    /// Take the database lock for writing. Poisoning is recovered (and
    /// counted) in the wrapper: the database's own durability poisoning
    /// (tracked inside [`Database`]) is the real write-safety interlock,
    /// and it survives a panicking thread where the lock's poison flag
    /// would merely wedge every future caller.
    fn db_write(&self) -> TimedWriteGuard<'_, Database> {
        self.db.write()
    }

    /// A read-only point-in-time snapshot of the underlying database.
    ///
    /// Cheap (the lock is held only long enough to Arc-bump the table map
    /// — see [`Database::snapshot`]), and the returned handle keeps
    /// answering at its epoch no matter what later commits do. Every
    /// [`QueryRequest`] runs against one of these, never against the
    /// locked database itself.
    pub fn snapshot(&self) -> Database {
        self.snapshot_timed().0
    }

    /// [`snapshot`](XmlStore::snapshot) plus what it cost: lock wait and
    /// clone duration, with the `snapshot_clone_us` histogram and the
    /// `snapshot_tables` size gauge fed on the way.
    fn snapshot_timed(&self) -> (Database, SnapTiming) {
        let guard = self.db_read();
        let lock_wait_us = guard.wait_us();
        let started = Instant::now();
        let snap = guard.snapshot();
        drop(guard);
        let clone_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        metrics::observe_us("snapshot_clone_us", clone_us);
        metrics::gauge_set("snapshot_tables", snap.catalog.table_names().len() as i64);
        (
            snap,
            SnapTiming {
                lock_wait_us,
                clone_us,
            },
        )
    }

    /// The store's current commit epoch (bumped once per committed
    /// mutation).
    pub fn epoch(&self) -> u64 {
        self.db_read().epoch()
    }

    /// Run `f` with shared read access to the underlying database (for
    /// EXPLAIN, storage accounting, the benchmark harness). Do not call
    /// other store methods from inside `f`; for anything long-running,
    /// take a [`snapshot`](XmlStore::snapshot) instead.
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db_read())
    }

    /// Run `f` with exclusive access to the underlying database (knob
    /// tweaks, direct updates). Blocks new snapshots — keep `f` short,
    /// and do not call other store methods from inside it.
    pub fn with_db_mut<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db_write())
    }

    /// A handle on this store's query ledger: per-fingerprint rolling
    /// stats and the slow-query capture ring. The handle is clone-cheap
    /// and thread-safe, so a monitoring endpoint can read it while the
    /// store keeps executing.
    pub fn ledger(&self) -> Ledger {
        self.ledger.clone()
    }

    /// Configure an HTTP monitoring/query endpoint for this store. The
    /// builder clones the handle, so the server's per-connection worker
    /// threads answer `POST /query` directly against snapshot reads
    /// while this handle keeps loading documents:
    ///
    /// ```no_run
    /// # use xmlrel_core::{Scheme, XmlStore};
    /// # use shredder::IntervalScheme;
    /// # let store = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open().unwrap();
    /// let handle = store.serve().addr("127.0.0.1:0").max_inflight(8).start().unwrap();
    /// ```
    pub fn serve(&self) -> crate::serve::ServerBuilder {
        crate::serve::ServerBuilder::new(self.clone())
    }

    /// A point-in-time health snapshot: `/healthz` material.
    pub fn health(&self) -> HealthReport {
        let db = self.db_read();
        let status = db.status();
        let documents = Self::documents_in(&db);
        HealthReport {
            ok: !status.poisoned && documents.is_ok(),
            scheme: self.scheme.name().to_string(),
            documents: documents.map(|d| d.len()).unwrap_or(0),
            db: status,
            poison_recoveries: metrics::counter_value(POISON_RECOVERIES),
        }
    }

    /// Checkpoint the store: serialize all tables to a new snapshot and
    /// truncate the write-ahead log. No-op for in-memory stores.
    pub fn persist(&mut self) -> Result<()> {
        self.db_write().checkpoint()?;
        Ok(())
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Parse and store a document under `name`; returns (doc id, stats).
    pub fn load_str(&mut self, name: &str, xml: &str) -> Result<(i64, ShredStats)> {
        let doc = {
            let _span = trace::span("xml.parse", "core");
            Document::parse(xml)?
        };
        self.load_document(name, &doc)
    }

    /// Store an already-parsed document. The write lock is held for the
    /// whole shred, so the load commits as one epoch step — snapshot
    /// readers see the document fully loaded or not at all.
    pub fn load_document(&mut self, name: &str, doc: &Document) -> Result<(i64, ShredStats)> {
        let _span = trace::span("shred", "core");
        let (id, stats) = {
            let mut db = self.db_write();
            if docstore::lookup(&db, name)?.is_some() {
                return Err(CoreError::Translate(format!(
                    "document {name:?} already loaded"
                )));
            }
            let id = docstore::register(&mut db, name)?;
            let stats = self.scheme.ops().shred(&mut db, id, doc)?;
            (id, stats)
        };
        metrics::counter_inc(&metrics::labelled(
            "documents_loaded_total",
            "scheme",
            self.scheme.name(),
        ));
        Ok((id, stats))
    }

    fn doc_id_in(db: &Database, name: &str) -> Result<i64> {
        docstore::lookup(db, name)?.ok_or_else(|| CoreError::NoSuchDocument(name.to_string()))
    }

    /// Document id by name.
    pub fn doc_id(&self, name: &str) -> Result<i64> {
        Self::doc_id_in(&self.db_read(), name)
    }

    /// Remove a document.
    pub fn remove(&mut self, name: &str) -> Result<usize> {
        let mut db = self.db_write();
        let id = Self::doc_id_in(&db, name)?;
        let n = self.scheme.ops().delete_document(&mut db, id)?;
        docstore::unregister(&mut db, id)?;
        Ok(n)
    }

    /// Reconstruct a whole document as XML text.
    pub fn reconstruct(&self, name: &str) -> Result<String> {
        let db = self.snapshot();
        let id = Self::doc_id_in(&db, name)?;
        let doc = self.scheme.ops().reconstruct(&db, id)?;
        Ok(xmlpar::serialize::to_string(&doc))
    }

    /// Begin a query request. Finish it with [`QueryRequest::run`],
    /// [`QueryRequest::count`], [`QueryRequest::rows`],
    /// [`QueryRequest::translated`], or [`QueryRequest::report`].
    ///
    /// The request captures a copy-on-write snapshot of the store as it is
    /// *now*; [`QueryRequest::snapshot`] pins the whole pipeline to it.
    pub fn request<'a>(&'a self, query: &'a str) -> QueryRequest<'a> {
        let (snap, snap_timing) = self.snapshot_timed();
        QueryRequest {
            store: self,
            snap,
            snap_timing,
            pinned: false,
            query,
            doc: None,
            explain: Explain::None,
            sink: None,
            deadline: None,
            cancel: None,
            request_id: None,
        }
    }

    /// Per-request execution limits: the store's configured limits with
    /// this request's deadline and cancel token merged in. When both the
    /// store and the request carry a deadline, the tighter one wins.
    fn request_limits(
        db: &Database,
        deadline: Option<Deadline>,
        cancel: Option<CancelToken>,
    ) -> ExecLimits {
        let mut limits = db.limits.clone();
        limits.deadline = match (deadline, limits.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if cancel.is_some() {
            limits.cancel = cancel;
        }
        limits
    }

    /// Phase-boundary deadline/cancel check: a trip outside the executor
    /// (translate, publish) is still a failed execution, so it lands in
    /// the ledger with its diagnostic like any operator-level trip.
    fn poll_phase(&self, limits: &ExecLimits, op: &str, query: &str) -> Result<()> {
        if let Err(e) = limits.poll(op) {
            self.ledger.observe_error(query, &e.to_string());
            return Err(e.into());
        }
        Ok(())
    }

    /// Translate, scoped to one document when `doc` is given. A
    /// statically-empty result compiles to the `SELECT NULL LIMIT 0` stub.
    fn translate_impl(
        &self,
        db: &Database,
        query_text: &str,
        doc: Option<&str>,
    ) -> Result<Translated> {
        let _span = trace::span("translate", "core");
        let doc_id = match doc {
            Some(name) => Some(Self::doc_id_in(db, name)?),
            None => None,
        };
        let query = {
            let _span = trace::span("xq.parse", "core");
            parse_query(query_text)?
        };
        let compiler = self.scheme.compiler();
        let t = match compile_query(compiler.as_ref(), db, &query, doc_id) {
            Err(CoreError::EmptyResult) => Translated {
                sql: "SELECT NULL LIMIT 0".into(),
                out: OutKind::Values { col: 0 },
                key_width: compiler.key_width(),
                positional: None,
            },
            other => other?,
        };
        self.debug_verify(db, &t)?;
        Ok(t)
    }

    /// Execute translated SQL and apply positional post-processing. With
    /// `analyze`, also collect the runtime operator profile. Every
    /// execution — success or failure — is recorded in the store's query
    /// ledger; a threshold-crossing one leaves a forensic capture.
    fn fetch(
        &self,
        db: &Database,
        query_text: &str,
        t: &Translated,
        analyze: bool,
        limits: &ExecLimits,
        request_id: Option<&str>,
    ) -> Result<(Vec<Vec<Value>>, Option<ExecProfile>)> {
        metrics::counter_inc(&metrics::labelled(
            "queries_total",
            "scheme",
            self.scheme.name(),
        ));
        let _span = trace::span("execute", "sql");
        let started = std::time::Instant::now();
        let fetched = if analyze {
            db.query_profiled_limited(&t.sql, limits)
                .map(|(result, profile)| (result.rows, Some(profile)))
        } else {
            db.query_readonly_limited(&t.sql, limits)
                .map(|r| (r.rows, None))
        };
        let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        metrics::observe_us(
            &metrics::labelled("query_wall_us", "scheme", self.scheme.name()),
            wall_us,
        );
        let (raw, profile) = match fetched {
            Ok(v) => v,
            Err(e) => {
                // The ledger keeps the diagnostic: for deadline or
                // cancellation trips it names the operator that observed
                // the trip.
                self.ledger
                    .observe_error_with_id(query_text, &e.to_string(), request_id);
                return Err(e.into());
            }
        };
        let q_error = profile.as_ref().map(|p| p.rollup().max_q_error);
        if let Some(trigger) =
            self.ledger
                .observe_with_id(query_text, wall_us, raw.len() as u64, q_error, request_id)
        {
            self.capture_forensics(
                db,
                query_text,
                t,
                wall_us,
                raw.len() as u64,
                q_error,
                profile.as_ref(),
                trigger,
                request_id,
            );
        }
        Ok((apply_positional(t, raw), profile))
    }

    /// Assemble and store the forensic record for a threshold-crossing
    /// execution: the full `EXPLAIN ANALYZE` render (re-running the query
    /// under the profiler when the offending run was unprofiled — the
    /// data is still there, so the re-run sees the same plan and
    /// cardinalities) plus the tail of the installed trace ring.
    #[allow(clippy::too_many_arguments)]
    fn capture_forensics(
        &self,
        db: &Database,
        query_text: &str,
        t: &Translated,
        wall_us: u64,
        rows: u64,
        q_error: Option<f64>,
        profile: Option<&ExecProfile>,
        trigger: SlowTrigger,
        request_id: Option<&str>,
    ) {
        let config = self.ledger.config();
        let (rendered, q_error) = match profile {
            Some(p) => (Some(p.render(true)), q_error),
            None => match db.query_profiled(&t.sql) {
                Ok((_, p)) => {
                    let q = p.rollup().max_q_error;
                    (Some(p.render(true)), Some(q))
                }
                Err(_) => (None, q_error),
            },
        };
        let explain_analyze = match rendered {
            Some(r) => format!("sql: {}\n{r}", t.sql),
            None => format!(
                "sql: {}\n(profile unavailable: re-execution failed)\n",
                t.sql
            ),
        };
        let trace_tail = trace::current()
            .map(|s| s.tail(config.trace_tail))
            .unwrap_or_default();
        self.ledger.capture(SlowCapture {
            seq: 0,
            fingerprint: fingerprint(query_text),
            query: query_text.to_string(),
            scheme: self.scheme.name().to_string(),
            wall_us,
            rows,
            q_error: q_error.unwrap_or(1.0),
            trigger,
            explain_analyze,
            trace_tail,
            request_id: request_id.unwrap_or_default().to_string(),
        });
    }

    /// Publish rows as XML fragments / string values per the translated
    /// query's output kind.
    fn publish_rows(
        &self,
        db: &Database,
        t: &Translated,
        rows: &[Vec<Value>],
    ) -> Result<Vec<String>> {
        let compiler = self.scheme.compiler();
        let mut items = Vec::with_capacity(rows.len());
        match &t.out {
            OutKind::Values { col } => {
                for row in rows {
                    match &row[*col] {
                        Value::Null => {}
                        v => items.push(v.to_string()),
                    }
                }
            }
            OutKind::Nodes => {
                for row in rows {
                    let key = compiler.decode_key(&row[..t.key_width])?;
                    items.push(self.scheme.publish_key(db, &key)?);
                }
            }
            OutKind::Constructed(template) => {
                for row in rows {
                    let mut s = String::new();
                    self.render_template(db, template, row, compiler.as_ref(), &mut s)?;
                    items.push(s);
                }
            }
        }
        Ok(items)
    }

    /// Statically validate a compiled query string against the catalog this
    /// store's shredder actually created: re-parse it with the SQL parser,
    /// bind it, and run the plan validator over the bound, optimized, and
    /// physical plans. Returns every diagnostic found (empty = clean).
    pub fn verify_sql(&self, sql: &str) -> Result<Vec<reldb::plan::Diagnostic>> {
        Self::verify_sql_in(&self.db_read(), sql)
    }

    fn verify_sql_in(db: &Database, sql: &str) -> Result<Vec<reldb::plan::Diagnostic>> {
        use reldb::plan::{
            bind_select, optimize, plan_physical, validate_logical, validate_physical,
        };
        use reldb::sql::parser::parse_statement;
        use reldb::sql::Statement;
        let stmt = parse_statement(sql).map_err(CoreError::Db)?;
        let Statement::Select(sel) = stmt else {
            return Err(CoreError::Translate(format!(
                "compiled query is not a SELECT: {sql}"
            )));
        };
        let catalog = &db.catalog;
        let bound = bind_select(catalog, &sel).map_err(CoreError::Db)?;
        // Comma-join SQL binds as condition-less joins under one filter;
        // predicate pushdown rewrites that into conditioned joins. Style
        // lints (e.g. cartesian-product) are therefore only meaningful on
        // the optimized plan — keep just type errors from the bound one.
        let mut diags: Vec<reldb::plan::Diagnostic> = validate_logical(catalog, &bound)
            .into_iter()
            .filter(|d| d.severity == reldb::plan::Severity::Error)
            .collect();
        let optimized = optimize(bound, &db.optimizer, catalog);
        diags.extend(validate_logical(catalog, &optimized));
        let physical = plan_physical(catalog, &optimized, &db.physical).map_err(CoreError::Db)?;
        diags.extend(validate_physical(catalog, &physical));
        diags.dedup();
        Ok(diags)
    }

    fn verify_translated(
        &self,
        db: &Database,
        query_text: &str,
        t: &Translated,
    ) -> Result<PlanReport> {
        use reldb::plan::{
            analyze_physical, bind_select, cost, explain_physical, optimize, plan_physical,
            AnalyzerOptions,
        };
        use reldb::sql::parser::parse_statement;
        use reldb::sql::Statement;

        let _span = trace::span("plan.verify", "core");

        // A statically-empty result compiles to the `SELECT NULL LIMIT 0`
        // stub; there is no access path to check.
        if t.sql == "SELECT NULL LIMIT 0" {
            return Ok(PlanReport {
                sql: t.sql.clone(),
                explain: "Values (empty)".into(),
                cost: String::new(),
                total_cost: 0.0,
                diagnostics: Vec::new(),
            });
        }

        let stmt = parse_statement(&t.sql).map_err(CoreError::Db)?;
        let Statement::Select(sel) = stmt else {
            return Err(CoreError::Translate(format!(
                "compiled query is not a SELECT: {}",
                t.sql
            )));
        };
        let catalog = &db.catalog;
        let bound = bind_select(catalog, &sel).map_err(CoreError::Db)?;
        let optimized = optimize(bound, &db.optimizer, catalog);
        let physical = plan_physical(catalog, &optimized, &db.physical).map_err(CoreError::Db)?;

        let mut diagnostics = analyze_physical(catalog, &physical, &AnalyzerOptions::default());
        let query = parse_query(query_text)?;
        let traits = QueryTraits::of(&query);
        let contract = self.scheme.compiler().contract();
        diagnostics.extend(check_contract(&contract, &traits, db, &physical));

        let report = cost::report_physical(catalog, &physical);
        Ok(PlanReport {
            sql: t.sql.clone(),
            explain: explain_physical(&physical),
            cost: report.render(),
            total_cost: report.total(),
            diagnostics,
        })
    }

    /// Debug-build hook: every query string a scheme compiler emits must
    /// re-parse and validate against the live catalog, so the whole test
    /// suite doubles as a static check over all six compile backends.
    #[cfg(debug_assertions)]
    fn debug_verify(&self, db: &Database, t: &Translated) -> Result<()> {
        let diags = Self::verify_sql_in(db, &t.sql)?;
        if let Some(d) = diags
            .iter()
            .find(|d| d.severity == reldb::plan::Severity::Error)
        {
            return Err(CoreError::Translate(format!(
                "scheme {:?} compiled SQL that fails validation: {d}; sql: {}",
                self.scheme.name(),
                t.sql
            )));
        }
        Ok(())
    }

    #[cfg(not(debug_assertions))]
    fn debug_verify(&self, _db: &Database, _t: &Translated) -> Result<()> {
        Ok(())
    }

    fn render_template(
        &self,
        db: &Database,
        template: &Template,
        row: &[Value],
        compiler: &dyn StepCompiler,
        out: &mut String,
    ) -> Result<()> {
        out.push('<');
        out.push_str(&template.name);
        for (k, v) in &template.attrs {
            out.push_str(&format!(" {k}=\"{}\"", xmlpar::escape::escape_attr(v)));
        }
        if template.children.is_empty() {
            out.push_str("/>");
            return Ok(());
        }
        out.push('>');
        for child in &template.children {
            match child {
                Slot::Text(t) => out.push_str(&xmlpar::escape::escape_text(t)),
                Slot::Value(col) => {
                    if let Some(v) = row.get(*col) {
                        if !v.is_null() {
                            out.push_str(&xmlpar::escape::escape_text(&v.to_string()));
                        }
                    }
                }
                Slot::Node(start) => {
                    let key = compiler.decode_key(&row[*start..*start + compiler.key_width()])?;
                    out.push_str(&self.scheme.publish_key(db, &key)?);
                }
                Slot::Nested(t) => self.render_template(db, t, row, compiler, out)?,
            }
        }
        out.push_str("</");
        out.push_str(&template.name);
        out.push('>');
        Ok(())
    }

    /// Storage accounting for the scheme's tables.
    pub fn storage_stats(&self) -> StorageStats {
        self.scheme.ops().storage_stats(&self.db_read())
    }

    /// Number of joins in the translated SQL's logical plan (experiment
    /// E6's metric).
    pub fn join_count(&self, query_text: &str) -> Result<usize> {
        let db = self.snapshot();
        let t = self.translate_impl(&db, query_text, None)?;
        let (logical, _) = db.plan_select(&t.sql)?;
        Ok(logical.join_count())
    }

    fn documents_in(db: &Database) -> Result<Vec<(i64, String)>> {
        Ok(docstore::list(db)?
            .into_iter()
            .map(|d| (d.id, d.name))
            .collect())
    }

    /// List loaded documents.
    pub fn documents(&self) -> Result<Vec<(i64, String)>> {
        Self::documents_in(&self.db_read())
    }
}

/// One query, being configured: scope it with [`doc`](QueryRequest::doc),
/// pick detail with [`explain`](QueryRequest::explain), attach a trace
/// sink with [`trace`](QueryRequest::trace), pin consistency with
/// [`snapshot`](QueryRequest::snapshot), then finish with one of the
/// terminal methods. Created by [`XmlStore::request`].
pub struct QueryRequest<'a> {
    store: &'a XmlStore,
    /// Copy-on-write snapshot captured when the builder was created.
    snap: Database,
    /// What capturing that snapshot cost (lock wait + clone).
    snap_timing: SnapTiming,
    pinned: bool,
    query: &'a str,
    doc: Option<&'a str>,
    explain: Explain,
    sink: Option<&'a trace::TraceSink>,
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
    request_id: Option<String>,
}

impl<'a> QueryRequest<'a> {
    /// Scope the query to one loaded document.
    pub fn doc(mut self, name: &'a str) -> QueryRequest<'a> {
        self.doc = Some(name);
        self
    }

    /// Pin the whole pipeline — translate, execute, publish — to the
    /// copy-on-write snapshot captured when this builder was created, so
    /// a writer committing mid-request can never tear the result.
    ///
    /// This is the consistency mode served queries run under (the
    /// [`ServerBuilder`](crate::serve::ServerBuilder) endpoint pins every
    /// request). Without it, a terminal method reads the store's latest
    /// state at the moment it starts — still a single consistent epoch,
    /// just a fresher one.
    pub fn snapshot(mut self) -> QueryRequest<'a> {
        self.pinned = true;
        self
    }

    /// Gather plan detail alongside the results (see [`Explain`]).
    pub fn explain(mut self, mode: Explain) -> QueryRequest<'a> {
        self.explain = mode;
        self
    }

    /// Record tracing spans for this request into `sink`.
    pub fn trace(mut self, sink: &'a trace::TraceSink) -> QueryRequest<'a> {
        self.sink = Some(sink);
        self
    }

    /// Give this request a wall-clock budget, counted from now. The
    /// pipeline checks it at phase boundaries and the executor polls it
    /// inside every blocking operator loop; a trip surfaces as
    /// [`reldb::DbError::DeadlineExceeded`] naming the tripping operator.
    pub fn timeout_ms(mut self, ms: u64) -> QueryRequest<'a> {
        self.deadline = Some(Deadline::after_millis(ms));
        self
    }

    /// Give this request an absolute deadline. When the store's own
    /// limits also carry one, the tighter deadline wins.
    pub fn deadline(mut self, deadline: Deadline) -> QueryRequest<'a> {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token: cancelling it from any thread makes
    /// the request fail promptly with [`reldb::DbError::Cancelled`].
    pub fn cancel(mut self, token: &CancelToken) -> QueryRequest<'a> {
        self.cancel = Some(token.clone());
        self
    }

    /// Correlate this request with a serve-layer request ID: the
    /// `store.query` span is suffixed with it, and the ledger row (and
    /// any slow capture) record it, so an `X-Request-Id` response header
    /// greps straight to the request's evidence.
    pub fn request_id(mut self, id: &str) -> QueryRequest<'a> {
        self.request_id = Some(id.to_string());
        self
    }

    /// Translate, execute, and publish; the [`QueryOutput`] carries
    /// whatever extra detail [`explain`](QueryRequest::explain) asked for.
    pub fn run(self) -> Result<QueryOutput> {
        let QueryRequest {
            store,
            snap,
            snap_timing,
            pinned,
            query,
            doc,
            explain,
            sink,
            deadline,
            cancel,
            request_id,
        } = self;
        let _guard = sink.map(trace::install);
        let span_name: std::borrow::Cow<'static, str> = match &request_id {
            Some(id) => format!("store.query#{id}").into(),
            None => "store.query".into(),
        };
        let _span = trace::span(span_name, "core");
        let mut phases = PhaseTimings::default();
        let db = if pinned {
            // Pinned requests serve a snapshot taken earlier; record how
            // far behind the current commit epoch it is by now.
            let lag = store.epoch().saturating_sub(snap.epoch());
            metrics::gauge_set("snapshot_epoch_lag", lag as i64);
            phases.lock_wait_us = snap_timing.lock_wait_us;
            phases.snapshot_clone_us = snap_timing.clone_us;
            snap
        } else {
            let (fresh, timing) = store.snapshot_timed();
            metrics::gauge_set("snapshot_epoch_lag", 0);
            phases.lock_wait_us = timing.lock_wait_us;
            phases.snapshot_clone_us = timing.clone_us;
            fresh
        };
        let limits = XmlStore::request_limits(&db, deadline, cancel);
        store.poll_phase(&limits, "translate", query)?;
        let translate_started = Instant::now();
        let t = store.translate_impl(&db, query, doc)?;
        let plan = match explain {
            Explain::None => None,
            Explain::Plan | Explain::Analyze => Some(store.verify_translated(&db, query, &t)?),
        };
        phases.translate_us = elapsed_us(translate_started);
        let execute_started = Instant::now();
        let (rows, profile) = store.fetch(
            &db,
            query,
            &t,
            explain == Explain::Analyze,
            &limits,
            request_id.as_deref(),
        )?;
        phases.execute_us = elapsed_us(execute_started);
        store.poll_phase(&limits, "publish", query)?;
        let publish_started = Instant::now();
        let items = {
            let _span = trace::span("publish", "core");
            store.publish_rows(&db, &t, &rows)?
        };
        phases.publish_us = elapsed_us(publish_started);
        Ok(QueryOutput {
            items,
            rows,
            sql: t.sql,
            plan,
            profile,
            phases,
        })
    }

    /// Number of matches without publishing. Consistent with
    /// [`QueryRequest::run`]: for value results, NULLs (absent attributes
    /// / empty text) do not count.
    pub fn count(self) -> Result<usize> {
        let QueryRequest {
            store,
            snap,
            pinned,
            query,
            doc,
            sink,
            deadline,
            cancel,
            request_id,
            ..
        } = self;
        let _guard = sink.map(trace::install);
        let _span = trace::span("store.query_count", "core");
        let db = if pinned { snap } else { store.snapshot() };
        let limits = XmlStore::request_limits(&db, deadline, cancel);
        store.poll_phase(&limits, "translate", query)?;
        let t = store.translate_impl(&db, query, doc)?;
        let (rows, _) = store.fetch(&db, query, &t, false, &limits, request_id.as_deref())?;
        Ok(match &t.out {
            OutKind::Values { col } => rows.iter().filter(|r| !r[*col].is_null()).count(),
            _ => rows.len(),
        })
    }

    /// Execute and return the raw relational rows after positional
    /// post-processing, skipping XML publishing.
    pub fn rows(self) -> Result<Vec<Vec<Value>>> {
        let QueryRequest {
            store,
            snap,
            pinned,
            query,
            doc,
            sink,
            deadline,
            cancel,
            request_id,
            ..
        } = self;
        let _guard = sink.map(trace::install);
        let _span = trace::span("store.query_rows", "core");
        let db = if pinned { snap } else { store.snapshot() };
        let limits = XmlStore::request_limits(&db, deadline, cancel);
        store.poll_phase(&limits, "translate", query)?;
        let t = store.translate_impl(&db, query, doc)?;
        Ok(store
            .fetch(&db, query, &t, false, &limits, request_id.as_deref())?
            .0)
    }

    /// Translate to SQL without executing.
    pub fn translated(self) -> Result<Translated> {
        let QueryRequest {
            store,
            snap,
            pinned,
            query,
            doc,
            sink,
            ..
        } = self;
        let _guard = sink.map(trace::install);
        let _span = trace::span("store.translate", "core");
        let db = if pinned { snap } else { store.snapshot() };
        store.translate_impl(&db, query, doc)
    }

    /// Compile the query and check the physical plan the optimizer chose
    /// against this scheme's access-path contract plus the generic
    /// plan-quality analyzer, without executing. Returns a [`PlanReport`]
    /// with the rendered plan, its cost breakdown, and every finding
    /// (empty diagnostics = the optimizer delivered all the access paths
    /// the scheme promises).
    pub fn report(self) -> Result<PlanReport> {
        let QueryRequest {
            store,
            snap,
            pinned,
            query,
            doc,
            sink,
            ..
        } = self;
        let _guard = sink.map(trace::install);
        let _span = trace::span("store.report", "core");
        let db = if pinned { snap } else { store.snapshot() };
        let t = store.translate_impl(&db, query, doc)?;
        store.verify_translated(&db, query, &t)
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Positional predicate post-processing: per parent, rank the DISTINCT
/// sibling-order values and keep every row whose anchor node is the n-th
/// sibling. (The anchor step may be an interior step, so several result
/// rows can share one anchor node.)
fn apply_positional(t: &Translated, rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let Some(p) = t.positional else {
        return rows;
    };
    let mut groups: HashMap<String, Vec<Vec<Value>>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for row in rows {
        let parent = row[p.parent_col].to_string();
        if !groups.contains_key(&parent) {
            order.push(parent.clone());
        }
        groups.entry(parent).or_default().push(row);
    }
    let mut kept = Vec::new();
    for parent in order {
        let Some(g) = groups.remove(&parent) else {
            continue;
        };
        let mut distinct: Vec<&Value> = g.iter().map(|r| &r[p.order_col]).collect();
        distinct.sort();
        distinct.dedup();
        let idx = (p.n as usize).saturating_sub(1);
        let Some(target) = distinct.get(idx) else {
            continue;
        };
        let target = (*target).clone();
        for row in g {
            if row[p.order_col] == target {
                kept.push(row);
            }
        }
    }
    kept
}
