//! The query ledger: per-query-shape rolling statistics plus slow-query
//! forensics.
//!
//! Every execution through [`XmlStore`](crate::XmlStore) is normalized to
//! a **fingerprint** — the query text with literals stripped and
//! whitespace collapsed — so `/bib/book[@year > 1990]` and
//! `/bib/book[@year>1994]` land in the same row of the ledger. Each
//! fingerprint keeps rolling stats: execution count, a power-of-two
//! latency histogram, rows produced, error count, and the worst q-error
//! any profiled run of that shape has shown.
//!
//! When one execution crosses a configured latency or q-error threshold
//! ([`LedgerConfig`]), the store captures a forensic record: the full
//! `EXPLAIN ANALYZE` render of that query plus the tail of the installed
//! trace ring — the spans leading up to the slow moment. Captures live in
//! a bounded ring (oldest evicted first) and surface three ways: the
//! monitoring endpoint's `/slow`, [`XmlStore::ledger`](crate::XmlStore::ledger),
//! and the `xmlrel slow` CLI.
//!
//! The ledger is a cheap clone (`Arc` inside): the store feeds it on its
//! thread while a monitoring endpoint reads it from another.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use xmlrel_obs::metrics::{self, Histogram};
use xmlrel_obs::timed_lock::{TimedMutex, TimedMutexGuard};
use xmlrel_obs::trace::{json_quote, Event};

/// Thresholds and capacities for slow-query capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerConfig {
    /// Wall-time threshold in microseconds: an execution at or above it
    /// is captured.
    pub slow_wall_us: u64,
    /// q-error threshold: a profiled execution whose worst per-operator
    /// q-error reaches it is captured even when fast — a misestimate is
    /// tomorrow's slow query at the next data size.
    pub slow_q_error: f64,
    /// Maximum forensic captures retained; the oldest is evicted (and
    /// counted) once full.
    pub capture_capacity: usize,
    /// How many trailing trace events a capture snapshots from the
    /// thread's installed ring.
    pub trace_tail: usize,
}

impl Default for LedgerConfig {
    fn default() -> LedgerConfig {
        LedgerConfig {
            slow_wall_us: 100_000,
            slow_q_error: 64.0,
            capture_capacity: 32,
            trace_tail: 32,
        }
    }
}

/// Why a capture fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowTrigger {
    /// Wall time crossed [`LedgerConfig::slow_wall_us`].
    Latency,
    /// Worst q-error crossed [`LedgerConfig::slow_q_error`].
    QError,
    /// Both thresholds crossed.
    Both,
}

impl std::fmt::Display for SlowTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SlowTrigger::Latency => "latency",
            SlowTrigger::QError => "q-error",
            SlowTrigger::Both => "latency+q-error",
        })
    }
}

/// Rolling statistics for one query shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintStats {
    /// The normalized query shape.
    pub fingerprint: String,
    /// One raw query text that produced this fingerprint (the latest).
    pub exemplar: String,
    /// Successful executions.
    pub count: u64,
    /// Failed executions.
    pub errors: u64,
    /// Total rows produced across successful executions.
    pub rows: u64,
    /// Wall-time distribution in microseconds.
    pub latency_us: Histogram,
    /// Worst q-error any profiled execution of this shape has shown
    /// (1.0 = every estimate was perfect, or no profiled run yet).
    pub max_q_error_milli: u64,
    /// The most recent failure's diagnostic (e.g. the limit or the
    /// operator that tripped a deadline), if any execution has failed.
    pub last_error: Option<String>,
    /// The request ID of the most recent served execution of this shape,
    /// if any carried one — the grep key from an `X-Request-Id` response
    /// header back to its ledger row.
    pub last_request_id: Option<String>,
}

impl FingerprintStats {
    /// Worst q-error as a float (stored in milli-units so the struct
    /// stays `Eq` and hashable).
    pub fn max_q_error(&self) -> f64 {
        self.max_q_error_milli as f64 / 1000.0
    }
}

/// One forensic record of a threshold-crossing execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowCapture {
    /// Monotonic capture number (survives ring eviction, so gaps reveal
    /// how much history was lost).
    pub seq: u64,
    /// The normalized query shape.
    pub fingerprint: String,
    /// The raw query text.
    pub query: String,
    /// Mapping scheme the store was using.
    pub scheme: String,
    /// Wall time of the offending execution, microseconds.
    pub wall_us: u64,
    /// Rows the execution produced.
    pub rows: u64,
    /// Worst per-operator q-error of the profiled run.
    pub q_error: f64,
    /// Which threshold(s) fired.
    pub trigger: SlowTrigger,
    /// Full `EXPLAIN ANALYZE` render (SQL + per-operator est/act tree).
    pub explain_analyze: String,
    /// Tail of the installed trace ring at capture time.
    pub trace_tail: Vec<Event>,
    /// The request ID of the offending execution (empty for executions
    /// that did not come through the serve layer).
    pub request_id: String,
}

#[derive(Default)]
struct Inner {
    config: LedgerConfig,
    stats: BTreeMap<String, FingerprintStats>,
    captures: VecDeque<SlowCapture>,
    seq: u64,
    evicted: u64,
}

/// The ledger handle: clone-cheap, shareable across threads.
#[derive(Clone)]
pub struct Ledger {
    inner: Arc<TimedMutex<Inner>>,
}

impl Default for Ledger {
    fn default() -> Ledger {
        Ledger::new(LedgerConfig::default())
    }
}

impl Ledger {
    /// A ledger with the given thresholds.
    pub fn new(config: LedgerConfig) -> Ledger {
        Ledger {
            inner: Arc::new(TimedMutex::new(
                "ledger",
                Inner {
                    config,
                    ..Inner::default()
                },
            )),
        }
    }

    /// Take the ledger lock. The timed wrapper recovers (and counts)
    /// poisoning: every mutation leaves the maps structurally valid, and
    /// a panic elsewhere must not take the observability surface down
    /// with it.
    fn lock(&self) -> TimedMutexGuard<'_, Inner> {
        self.inner.lock()
    }

    /// The current thresholds.
    pub fn config(&self) -> LedgerConfig {
        self.lock().config
    }

    /// Replace the thresholds (existing stats and captures are kept).
    pub fn set_config(&self, config: LedgerConfig) {
        self.lock().config = config;
    }

    /// Record one successful execution. Returns the trigger when the
    /// execution crossed a threshold and the caller should assemble a
    /// forensic [`SlowCapture`] via [`capture`](Ledger::capture).
    pub fn observe(
        &self,
        query: &str,
        wall_us: u64,
        rows: u64,
        max_q_error: Option<f64>,
    ) -> Option<SlowTrigger> {
        self.observe_with_id(query, wall_us, rows, max_q_error, None)
    }

    /// [`observe`](Ledger::observe) with the serving request's ID, kept
    /// as the fingerprint's `last_request_id`.
    pub fn observe_with_id(
        &self,
        query: &str,
        wall_us: u64,
        rows: u64,
        max_q_error: Option<f64>,
        request_id: Option<&str>,
    ) -> Option<SlowTrigger> {
        let mut inner = self.lock();
        let fp = fingerprint(query);
        let entry = inner
            .stats
            .entry(fp)
            .or_insert_with_key(|k| empty_stats(k, query));
        entry.exemplar = query.to_string();
        entry.count += 1;
        entry.rows += rows;
        entry.latency_us.observe(wall_us);
        if let Some(id) = request_id {
            entry.last_request_id = Some(id.to_string());
        }
        if let Some(q) = max_q_error {
            entry.max_q_error_milli = entry.max_q_error_milli.max((q * 1000.0).round() as u64);
        }
        let config = inner.config;
        let slow = wall_us >= config.slow_wall_us;
        let wrong = max_q_error.is_some_and(|q| q >= config.slow_q_error);
        match (slow, wrong) {
            (true, true) => Some(SlowTrigger::Both),
            (true, false) => Some(SlowTrigger::Latency),
            (false, true) => Some(SlowTrigger::QError),
            (false, false) => None,
        }
    }

    /// Record one failed execution. `error` is the failure diagnostic —
    /// for limit and deadline trips it carries the limit or operator name,
    /// retained as the fingerprint's `last_error`.
    pub fn observe_error(&self, query: &str, error: &str) {
        self.observe_error_with_id(query, error, None);
    }

    /// [`observe_error`](Ledger::observe_error) with the serving
    /// request's ID, kept as the fingerprint's `last_request_id`.
    pub fn observe_error_with_id(&self, query: &str, error: &str, request_id: Option<&str>) {
        let mut inner = self.lock();
        let fp = fingerprint(query);
        let entry = inner
            .stats
            .entry(fp)
            .or_insert_with_key(|k| empty_stats(k, query));
        entry.exemplar = query.to_string();
        entry.errors += 1;
        entry.last_error = Some(error.to_string());
        if let Some(id) = request_id {
            entry.last_request_id = Some(id.to_string());
        }
    }

    /// Store one assembled forensic capture into the bounded ring.
    pub fn capture(&self, mut record: SlowCapture) {
        metrics::counter_inc("slow_captures_total");
        let mut inner = self.lock();
        record.seq = inner.seq;
        inner.seq += 1;
        if inner.captures.len() >= inner.config.capture_capacity.max(1) {
            inner.captures.pop_front();
            inner.evicted += 1;
        }
        inner.captures.push_back(record);
    }

    /// Rolling stats for every fingerprint, sorted by total wall time
    /// (descending) — the order an operator wants `top` in.
    pub fn stats(&self) -> Vec<FingerprintStats> {
        let inner = self.lock();
        let mut out: Vec<FingerprintStats> = inner.stats.values().cloned().collect();
        out.sort_by(|a, b| {
            b.latency_us
                .sum
                .cmp(&a.latency_us.sum)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }

    /// Stats for one fingerprint, if recorded.
    pub fn stats_for(&self, fingerprint_text: &str) -> Option<FingerprintStats> {
        self.lock().stats.get(fingerprint_text).cloned()
    }

    /// The retained forensic captures, oldest first.
    pub fn captures(&self) -> Vec<SlowCapture> {
        self.lock().captures.iter().cloned().collect()
    }

    /// How many captures the ring has evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Forget all stats and captures (thresholds are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.stats.clear();
        inner.captures.clear();
        inner.evicted = 0;
    }

    /// Render the top-N query shapes as an aligned text table. The
    /// p50/p90/p99 columns are upper bounds read off the shape's pow2
    /// latency histogram.
    pub fn render_top(&self, limit: usize) -> String {
        let stats = self.stats();
        let mut out = String::from(
            "count    err   rows      p50_us    p90_us    p99_us     total_ms  max_qerr  fingerprint\n",
        );
        for s in stats.iter().take(limit) {
            out.push_str(&format!(
                "{:<8} {:<5} {:<9} {:<9} {:<9} {:<10} {:<9.1} {:<9.1} {}\n",
                s.count,
                s.errors,
                s.rows,
                s.latency_us.percentile_bound(50),
                s.latency_us.percentile_bound(90),
                s.latency_us.percentile_bound(99),
                s.latency_us.sum as f64 / 1000.0,
                s.max_q_error(),
                s.fingerprint
            ));
        }
        out
    }

    /// Render the captures as a JSON array (the `/slow` body): newest
    /// last, each with its full `EXPLAIN ANALYZE` text and trace tail.
    pub fn slow_json(&self) -> String {
        let captures = self.captures();
        let evicted = self.evicted();
        let mut out = String::from("[");
        for (i, c) in captures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"seq\":{},\"request_id\":{},\"fingerprint\":{},\"query\":{},\"scheme\":{},\
                 \"wall_us\":{},\"rows\":{},\"q_error\":{:.3},\"trigger\":{},\
                 \"explain_analyze\":{},\"trace_tail\":[",
                c.seq,
                json_quote(&c.request_id),
                json_quote(&c.fingerprint),
                json_quote(&c.query),
                json_quote(&c.scheme),
                c.wall_us,
                c.rows,
                c.q_error,
                json_quote(&c.trigger.to_string()),
                json_quote(&c.explain_analyze),
            ));
            for (j, e) in c.trace_tail.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"cat\":{},\"start_us\":{},\"dur_us\":{},\"depth\":{}}}",
                    json_quote(&e.name),
                    json_quote(e.cat),
                    e.start_us,
                    e.dur_us,
                    e.depth
                ));
            }
            out.push_str("]}");
        }
        if !captures.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("],\"evicted\":{evicted}}}"));
        // The body is a JSON object so eviction is visible alongside the
        // array; wrap accordingly.
        format!("{{\"captures\":{out}")
    }
}

fn empty_stats(fingerprint_text: &str, query: &str) -> FingerprintStats {
    FingerprintStats {
        fingerprint: fingerprint_text.to_string(),
        exemplar: query.to_string(),
        count: 0,
        errors: 0,
        rows: 0,
        latency_us: Histogram::default(),
        max_q_error_milli: 1000,
        last_error: None,
        last_request_id: None,
    }
}

/// Normalize a query to its shape: string literals and numbers become
/// `?`, whitespace collapses (kept only between two word-like tokens so
/// `for $x in` survives but `[@year > 1990]` and `[@year>1990]` agree).
/// Equivalent queries collapse to one fingerprint; structurally distinct
/// queries keep distinct ones.
pub fn fingerprint(query: &str) -> String {
    let wordish = |c: char| c.is_alphanumeric() || c == '_' || c == '$' || c == '?';
    let mut out = String::with_capacity(query.len());
    let mut chars = query.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        let emit = if c == '\'' || c == '"' {
            // Consume to the matching quote (or end of input).
            for n in chars.by_ref() {
                if n == c {
                    break;
                }
            }
            '?'
        } else if c.is_ascii_digit() && (pending_space || !out.chars().last().is_some_and(wordish))
        {
            // A number starting a token (not `Q10`-style identifier
            // tails); swallow the rest of it, including decimals.
            while chars
                .peek()
                .is_some_and(|n| n.is_ascii_digit() || *n == '.')
            {
                chars.next();
            }
            '?'
        } else {
            c
        };
        if pending_space {
            if out.chars().last().is_some_and(wordish) && wordish(emit) {
                out.push(' ');
            }
            pending_space = false;
        }
        // Collapse literal runs: `(?, ?)` from `(1, 'a')` keeps both, but
        // a number directly after a number (digit groups split by the
        // tokenizer) never happens, so no special case is needed.
        out.push(emit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_strip_and_whitespace_collapses() {
        assert_eq!(
            fingerprint("/bib/book[@year > 1990]/title/text()"),
            "/bib/book[@year>?]/title/text()"
        );
        assert_eq!(
            fingerprint("/bib/book[@year>1994]/title/text()"),
            "/bib/book[@year>?]/title/text()"
        );
        assert_eq!(
            fingerprint("//item[name = \"gold\"]"),
            fingerprint("//item[name='silver']")
        );
    }

    #[test]
    fn identifier_digits_survive() {
        // Q10 is a name, not a literal.
        assert_eq!(fingerprint("/exp/Q10/result"), "/exp/Q10/result");
        assert_eq!(fingerprint("/exp/Q10[pos > 3]"), "/exp/Q10[pos>?]");
    }

    #[test]
    fn keywords_keep_their_separators() {
        assert_eq!(
            fingerprint("for $x in /site/item return $x"),
            fingerprint("for  $x   in /site/item\n return $x")
        );
        let fp = fingerprint("for $x in /a return $x");
        assert!(fp.contains("for $x in"), "{fp}");
    }

    #[test]
    fn distinct_shapes_stay_distinct() {
        assert_ne!(
            fingerprint("/bib/book[@year > 1990]"),
            fingerprint("/bib/book[@id > 1990]")
        );
        assert_ne!(fingerprint("/a/b"), fingerprint("/a//b"));
        assert_ne!(fingerprint("/a/b"), fingerprint("/a/b/text()"));
    }

    #[test]
    fn observe_accumulates_per_fingerprint() {
        let ledger = Ledger::default();
        ledger.observe("/a[x > 1]", 100, 2, Some(1.5));
        ledger.observe("/a[x > 999]", 300, 4, Some(3.0));
        ledger.observe("/b", 50, 1, None);
        let stats = ledger.stats();
        assert_eq!(stats.len(), 2);
        // Sorted by total wall time: /a first (400us > 50us).
        assert_eq!(stats[0].fingerprint, "/a[x>?]");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].rows, 6);
        assert_eq!(stats[0].latency_us.sum, 400);
        assert!((stats[0].max_q_error() - 3.0).abs() < 1e-9);
        assert_eq!(stats[1].fingerprint, "/b");
    }

    #[test]
    fn thresholds_trigger_latency_and_q_error() {
        let ledger = Ledger::new(LedgerConfig {
            slow_wall_us: 1000,
            slow_q_error: 10.0,
            ..LedgerConfig::default()
        });
        assert_eq!(ledger.observe("/q", 10, 0, Some(1.0)), None);
        assert_eq!(
            ledger.observe("/q", 5000, 0, Some(1.0)),
            Some(SlowTrigger::Latency)
        );
        assert_eq!(
            ledger.observe("/q", 10, 0, Some(50.0)),
            Some(SlowTrigger::QError)
        );
        assert_eq!(
            ledger.observe("/q", 5000, 0, Some(50.0)),
            Some(SlowTrigger::Both)
        );
        // Unprofiled runs can only trip on latency.
        assert_eq!(ledger.observe("/q", 10, 0, None), None);
    }

    #[test]
    fn capture_ring_is_bounded_and_counts_eviction() {
        let ledger = Ledger::new(LedgerConfig {
            capture_capacity: 2,
            ..LedgerConfig::default()
        });
        for i in 0..5 {
            ledger.capture(SlowCapture {
                seq: 0,
                fingerprint: format!("/q{i}"),
                query: format!("/q{i}"),
                scheme: "edge".into(),
                wall_us: 1000 + i,
                rows: 0,
                q_error: 1.0,
                trigger: SlowTrigger::Latency,
                explain_analyze: "plan".into(),
                trace_tail: Vec::new(),
                request_id: String::new(),
            });
        }
        let captures = ledger.captures();
        assert_eq!(captures.len(), 2);
        assert_eq!(ledger.evicted(), 3);
        // The latest captures survive, with monotonic seq numbers.
        assert_eq!(captures[0].fingerprint, "/q3");
        assert_eq!(captures[1].fingerprint, "/q4");
        assert_eq!(captures[0].seq, 3);
        assert_eq!(captures[1].seq, 4);
    }

    #[test]
    fn slow_json_shape() {
        let ledger = Ledger::default();
        ledger.capture(SlowCapture {
            seq: 0,
            fingerprint: "/q[x>?]".into(),
            query: "/q[x > 3]".into(),
            scheme: "interval".into(),
            wall_us: 123456,
            rows: 7,
            q_error: 12.5,
            trigger: SlowTrigger::Both,
            explain_analyze: "Sort\n  SeqScan \"edge\"\n".into(),
            trace_tail: vec![Event {
                name: "execute".into(),
                cat: "sql",
                start_us: 10,
                dur_us: 120000,
                depth: 2,
            }],
            request_id: "req-77".into(),
        });
        let json = ledger.slow_json();
        assert!(json.starts_with("{\"captures\":["), "{json}");
        assert!(json.contains("\"request_id\":\"req-77\""), "{json}");
        assert!(json.contains("\"trigger\":\"latency+q-error\""), "{json}");
        assert!(json.contains("\"explain_analyze\":\"Sort\\n"), "{json}");
        assert!(json.contains("\"name\":\"execute\""), "{json}");
        assert!(json.ends_with("\"evicted\":0}"), "{json}");
    }

    #[test]
    fn errors_are_counted() {
        let ledger = Ledger::default();
        ledger.observe_error(
            "/broken[x > 1]",
            "resource limit exceeded: Sort buffered 9 rows",
        );
        ledger.observe_error(
            "/broken[x > 2]",
            "deadline exceeded: Sort exceeded the query deadline",
        );
        let stats = ledger.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].errors, 2);
        assert_eq!(stats[0].count, 0);
        // The latest failure's diagnostic is retained.
        let last = stats[0].last_error.as_deref().unwrap();
        assert!(last.contains("deadline exceeded"), "{last}");
    }

    #[test]
    fn render_top_is_a_table() {
        let ledger = Ledger::default();
        ledger.observe("/a", 1000, 3, Some(2.0));
        let table = ledger.render_top(10);
        let mut lines = table.lines();
        assert!(lines.next().is_some_and(|h| h.contains("fingerprint")));
        assert!(lines.next().is_some_and(|r| r.contains("/a")));
    }
}
