//! Subtree updates: the experiment that separates order encodings.
//!
//! - **Interval** (pre/size): inserting a subtree renumbers every node
//!   whose `pre` follows the insertion point and grows every ancestor's
//!   `size` — O(document) row touches.
//! - **Dewey**: appending a subtree only writes the new rows; no existing
//!   key changes — O(subtree) row touches (plain Dewey; mid-sibling
//!   inserts renumber following siblings' subtrees, which ORDPATH's
//!   careting would avoid).
//!
//! Both operations preserve exact reconstruction, which the tests verify.

use reldb::{row_int, Database, ExecResult, Value};
use shredder::dewey::{child_key, descendant_pattern};
use shredder::walk::flatten;
use xmlpar::Document;

use crate::error::{CoreError, Result};
use crate::sqlgen::sql_lit;

/// What an update touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Pre-existing rows that had to be rewritten (renumbering).
    pub rows_renumbered: usize,
    /// Rows inserted (the new subtree).
    pub rows_inserted: usize,
    /// Rows deleted.
    pub rows_deleted: usize,
}

fn affected(r: ExecResult) -> usize {
    match r {
        ExecResult::Affected(n) => n,
        ExecResult::Rows(_) => 0,
    }
}

/// Insert `fragment` as the **last child** of the interval-scheme node
/// `(doc, parent_pre)`.
pub fn interval_insert_child(
    db: &mut Database,
    doc: i64,
    parent_pre: i64,
    fragment: &Document,
) -> Result<UpdateStats> {
    let parent = db.query_readonly(&format!(
        "SELECT size, level FROM inode WHERE doc = {doc} AND pre = {parent_pre}"
    ))?;
    let row = parent
        .rows
        .first()
        .ok_or_else(|| CoreError::Translate(format!("no inode ({doc},{parent_pre})")))?;
    let psize = row_int(row, 0).unwrap_or(0);
    let plevel = row_int(row, 1).unwrap_or(0);
    let next_ord = db
        .query_readonly(&format!(
            "SELECT MAX(ordinal) FROM inode WHERE doc = {doc} AND parent = {parent_pre}"
        ))?
        .scalar()
        .and_then(Value::as_int)
        .map(|m| m + 1)
        .unwrap_or(0);

    let recs = flatten(fragment);
    let n = recs.len() as i64;
    let start = parent_pre + psize + 1;
    let boundary = parent_pre + psize;

    let mut stats = UpdateStats::default();
    // Grow ancestors (their pre/size are untouched by the shift below).
    stats.rows_renumbered += affected(db.execute(&format!(
        "UPDATE inode SET size = size + {n} WHERE doc = {doc} \
         AND pre <= {parent_pre} AND pre + size >= {parent_pre}"
    ))?);
    // Shift everything after the insertion point.
    stats.rows_renumbered += affected(db.execute(&format!(
        "UPDATE inode SET pre = pre + {n} WHERE doc = {doc} AND pre > {boundary}"
    ))?);
    stats.rows_renumbered += affected(db.execute(&format!(
        "UPDATE inode SET parent = parent + {n} WHERE doc = {doc} AND parent > {boundary}"
    ))?);
    // Insert the fragment.
    let rows: Vec<Vec<Value>> = recs
        .iter()
        .map(|r| {
            vec![
                Value::Int(doc),
                Value::Int(r.pre + start),
                Value::Int(r.size),
                Value::Int(r.level + plevel + 1),
                Value::Int(r.parent.map(|p| p + start).unwrap_or(parent_pre)),
                Value::Int(if r.parent.is_none() {
                    next_ord
                } else {
                    r.ordinal
                }),
                Value::text(r.kind.tag()),
                r.name.clone().map(Value::Text).unwrap_or(Value::Null),
                r.value.clone().map(Value::Text).unwrap_or(Value::Null),
            ]
        })
        .collect();
    stats.rows_inserted = db.bulk_insert("inode", rows)?;
    Ok(stats)
}

/// Delete the subtree rooted at the interval-scheme node `(doc, pre)`.
pub fn interval_delete_subtree(db: &mut Database, doc: i64, pre: i64) -> Result<UpdateStats> {
    let q = db.query_readonly(&format!(
        "SELECT size, parent, ordinal FROM inode WHERE doc = {doc} AND pre = {pre}"
    ))?;
    let row = q
        .rows
        .first()
        .ok_or_else(|| CoreError::Translate(format!("no inode ({doc},{pre})")))?;
    let size = row_int(row, 0).unwrap_or(0);
    let parent = row_int(row, 1);
    let ordinal = row_int(row, 2).unwrap_or(0);
    let n = size + 1;
    let hi = pre + size;

    let mut stats = UpdateStats {
        rows_deleted: affected(db.execute(&format!(
            "DELETE FROM inode WHERE doc = {doc} AND pre >= {pre} AND pre <= {hi}"
        ))?),
        ..UpdateStats::default()
    };
    // Shrink ancestors.
    stats.rows_renumbered += affected(db.execute(&format!(
        "UPDATE inode SET size = size - {n} WHERE doc = {doc} \
         AND pre < {pre} AND pre + size >= {hi}"
    ))?);
    // Close the pre gap.
    stats.rows_renumbered += affected(db.execute(&format!(
        "UPDATE inode SET pre = pre - {n} WHERE doc = {doc} AND pre > {hi}"
    ))?);
    stats.rows_renumbered += affected(db.execute(&format!(
        "UPDATE inode SET parent = parent - {n} WHERE doc = {doc} AND parent > {hi}"
    ))?);
    // Close the ordinal gap among following siblings.
    if let Some(p) = parent {
        stats.rows_renumbered += affected(db.execute(&format!(
            "UPDATE inode SET ordinal = ordinal - 1 WHERE doc = {doc} \
             AND parent = {p} AND ordinal > {ordinal}"
        ))?);
    }
    Ok(stats)
}

/// Insert `fragment` as the **last child** of the Dewey-scheme node
/// `(doc, parent_key)` — no existing row changes.
pub fn dewey_insert_child(
    db: &mut Database,
    doc: i64,
    parent_key: &str,
    fragment: &Document,
) -> Result<UpdateStats> {
    let parent = db.query_readonly(&format!(
        "SELECT level FROM dnode WHERE doc = {doc} AND dewey = {}",
        sql_lit(parent_key)
    ))?;
    let row = parent
        .rows
        .first()
        .ok_or_else(|| CoreError::Translate(format!("no dnode ({doc},{parent_key})")))?;
    let plevel = row_int(row, 0).unwrap_or(0);
    let next_ord = db
        .query_readonly(&format!(
            "SELECT MAX(ordinal) FROM dnode WHERE doc = {doc} AND parent = {}",
            sql_lit(parent_key)
        ))?
        .scalar()
        .and_then(Value::as_int)
        .map(|m| m + 1)
        .unwrap_or(0);

    let recs = flatten(fragment);
    // Derive keys: the fragment root becomes child `next_ord` of the parent.
    let mut keys: Vec<String> = Vec::with_capacity(recs.len());
    for r in &recs {
        let key = match r.parent {
            None => child_key(parent_key, next_ord),
            Some(p) => child_key(&keys[p as usize], r.ordinal),
        };
        keys.push(key);
    }
    let rows: Vec<Vec<Value>> = recs
        .iter()
        .zip(&keys)
        .map(|(r, key)| {
            vec![
                Value::Int(doc),
                Value::text(key.clone()),
                r.parent
                    .map(|p| Value::text(keys[p as usize].clone()))
                    .unwrap_or_else(|| Value::text(parent_key)),
                Value::Int(if r.parent.is_none() {
                    next_ord
                } else {
                    r.ordinal
                }),
                Value::Int(r.level + plevel + 1),
                Value::text(r.kind.tag()),
                r.name.clone().map(Value::Text).unwrap_or(Value::Null),
                r.value.clone().map(Value::Text).unwrap_or(Value::Null),
            ]
        })
        .collect();
    let inserted = db.bulk_insert("dnode", rows)?;
    Ok(UpdateStats {
        rows_renumbered: 0,
        rows_inserted: inserted,
        rows_deleted: 0,
    })
}

/// Delete the subtree rooted at the Dewey-scheme node `(doc, key)` — no
/// other row changes (keys may leave gaps; order is preserved).
pub fn dewey_delete_subtree(db: &mut Database, doc: i64, key: &str) -> Result<UpdateStats> {
    let deleted = affected(db.execute(&format!(
        "DELETE FROM dnode WHERE doc = {doc} AND (dewey = {k} OR dewey LIKE {pat})",
        k = sql_lit(key),
        pat = sql_lit(&descendant_pattern(key))
    ))?);
    if deleted == 0 {
        return Err(CoreError::Translate(format!("no dnode ({doc},{key})")));
    }
    Ok(UpdateStats {
        rows_renumbered: 0,
        rows_inserted: 0,
        rows_deleted: deleted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Scheme, XmlStore};
    use shredder::{DeweyScheme, IntervalScheme};

    const XML: &str = "<a><b><c>x</c></b><d>y</d></a>";

    #[test]
    fn interval_insert_preserves_reconstruction() {
        let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
            .open()
            .unwrap();
        let (doc, _) = store.load_str("t", XML).unwrap();
        // Insert <e>z</e> as last child of <b> (pre of b = 1).
        let frag = Document::parse("<e>z</e>").unwrap();
        let stats = store
            .with_db_mut(|db| interval_insert_child(db, doc, 1, &frag))
            .unwrap();
        assert_eq!(stats.rows_inserted, 2);
        // Renumbered: ancestors a,b sizes + shifted d,y (pre and parent).
        assert!(stats.rows_renumbered >= 4, "{stats:?}");
        assert_eq!(
            store.reconstruct("t").unwrap(),
            "<a><b><c>x</c><e>z</e></b><d>y</d></a>"
        );
    }

    #[test]
    fn interval_delete_preserves_reconstruction() {
        let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
            .open()
            .unwrap();
        let (doc, _) = store.load_str("t", XML).unwrap();
        // Delete <b> (pre 1, subtree of 3 nodes).
        let stats = store
            .with_db_mut(|db| interval_delete_subtree(db, doc, 1))
            .unwrap();
        assert_eq!(stats.rows_deleted, 3);
        assert_eq!(store.reconstruct("t").unwrap(), "<a><d>y</d></a>");
        // Queries still work after renumbering.
        assert_eq!(store.request("/a/d/text()").run().unwrap().items, vec!["y"]);
    }

    #[test]
    fn dewey_insert_touches_nothing_existing() {
        let mut store = XmlStore::builder(Scheme::Dewey(DeweyScheme::new()))
            .open()
            .unwrap();
        let (doc, _) = store.load_str("t", XML).unwrap();
        // Parent <b> has key 000000.000000.
        let frag = Document::parse("<e>z</e>").unwrap();
        let stats = store
            .with_db_mut(|db| dewey_insert_child(db, doc, "000000.000000", &frag))
            .unwrap();
        assert_eq!(stats.rows_renumbered, 0);
        assert_eq!(stats.rows_inserted, 2);
        assert_eq!(
            store.reconstruct("t").unwrap(),
            "<a><b><c>x</c><e>z</e></b><d>y</d></a>"
        );
    }

    #[test]
    fn dewey_delete_is_local() {
        let mut store = XmlStore::builder(Scheme::Dewey(DeweyScheme::new()))
            .open()
            .unwrap();
        let (doc, _) = store.load_str("t", XML).unwrap();
        let stats = store
            .with_db_mut(|db| dewey_delete_subtree(db, doc, "000000.000000"))
            .unwrap();
        assert_eq!(stats.rows_renumbered, 0);
        assert_eq!(stats.rows_deleted, 3);
        assert_eq!(store.reconstruct("t").unwrap(), "<a><d>y</d></a>");
    }

    #[test]
    fn renumbering_cost_scales_with_following_content() {
        // The E8 shape: interval renumbers O(rest of document), dewey O(0).
        let mut xml = String::from("<r><target/>");
        for i in 0..200 {
            xml.push_str(&format!("<f>{i}</f>"));
        }
        xml.push_str("</r>");

        let mut istore = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
            .open()
            .unwrap();
        let (idoc, _) = istore.load_str("t", &xml).unwrap();
        let frag = Document::parse("<x/>").unwrap();
        let istats = istore
            .with_db_mut(|db| interval_insert_child(db, idoc, 1, &frag))
            .unwrap();

        let mut dstore = XmlStore::builder(Scheme::Dewey(DeweyScheme::new()))
            .open()
            .unwrap();
        let (ddoc, _) = dstore.load_str("t", &xml).unwrap();
        let dstats = dstore
            .with_db_mut(|db| dewey_insert_child(db, ddoc, "000000.000000", &frag))
            .unwrap();

        assert!(
            istats.rows_renumbered > 200,
            "interval must renumber following rows: {istats:?}"
        );
        assert_eq!(dstats.rows_renumbered, 0, "dewey appends locally");
        // Both reconstruct identically.
        assert_eq!(
            istore.reconstruct("t").unwrap(),
            dstore.reconstruct("t").unwrap()
        );
    }

    #[test]
    fn missing_targets_error() {
        let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
            .open()
            .unwrap();
        let (doc, _) = store.load_str("t", XML).unwrap();
        let frag = Document::parse("<e/>").unwrap();
        assert!(store
            .with_db_mut(|db| interval_insert_child(db, doc, 999, &frag))
            .is_err());
        assert!(store
            .with_db_mut(|db| interval_delete_subtree(db, doc, 999))
            .is_err());
        let mut dstore = XmlStore::builder(Scheme::Dewey(DeweyScheme::new()))
            .open()
            .unwrap();
        let (ddoc, _) = dstore.load_str("t", XML).unwrap();
        assert!(dstore
            .with_db_mut(|db| dewey_insert_child(db, ddoc, "zz", &frag))
            .is_err());
        assert!(dstore
            .with_db_mut(|db| dewey_delete_subtree(db, ddoc, "zz"))
            .is_err());
    }
}
