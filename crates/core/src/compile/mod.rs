//! XPath/FLWOR → SQL compilation.
//!
//! Per-scheme knowledge is isolated behind [`StepCompiler`]; the generic
//! [`driver`] walks the query AST once and asks the compiler to emit FROM
//! items and conditions for each axis step. Schemes without a native
//! descendant encoding (edge, binary, universal) declare so, and the
//! driver *expands* `//` and `*` patterns against the scheme's stored path
//! summary into a `UNION ALL` of concrete child chains — the published
//! technique for those mappings, and the source of their characteristic
//! slowdown on recursive queries.

pub mod binary;
pub mod dewey;
pub mod driver;
pub mod edge;
pub mod inline;
pub mod interval;
pub mod universal;

use reldb::{Database, Value};
use xqir::ast::NodeTest;

use crate::contract::AccessContract;
use crate::error::{CoreError, Result};
use crate::sqlgen::{JoinMode, SqlBuilder};

/// A bound node variable during compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRef {
    /// SQL alias of the row representing the node (empty for virtual refs).
    pub alias: String,
    /// Scheme-specific payload.
    pub meta: NodeMeta,
}

/// Scheme-specific node metadata.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMeta {
    /// Row-per-node schemes (edge, interval, dewey): the alias row *is*
    /// the node.
    Plain,
    /// Binary scheme: the alias row lives in the label's table.
    Labeled {
        /// The element label (names the table).
        label: String,
    },
    /// Universal scheme: the node is `t_<stem>` of the alias row.
    Universal {
        /// Column stem of the element's label.
        stem: String,
    },
    /// Inline scheme: a tabled row plus an inline path within it.
    Inline {
        /// Element name of the *tabled* anchor.
        anchor: String,
        /// Inline path from the anchor ("[]" = the anchor itself).
        path: Vec<String>,
    },
}

/// A decoded node identifier, consumed by the publisher.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKey {
    /// (doc, pre) — edge / binary / interval / universal.
    Pre {
        /// Document id.
        doc: i64,
        /// Pre-order node id.
        pre: i64,
    },
    /// (doc, dewey key).
    Dewey {
        /// Document id.
        doc: i64,
        /// Dewey key.
        key: String,
    },
    /// (doc, anchor element, surrogate id, inline path).
    Inline {
        /// Document id.
        doc: i64,
        /// Tabled anchor element name.
        anchor: String,
        /// Surrogate row id.
        id: i64,
        /// Inline path within the anchor's row.
        path: Vec<String>,
    },
}

/// Per-scheme step compilation.
pub trait StepCompiler {
    /// Scheme name (for error messages).
    fn scheme(&self) -> &'static str;

    /// True when `//` and `*` compile natively (no path expansion needed).
    fn native_recursive(&self) -> bool;

    /// The access-path contract this scheme promises: which indexes its
    /// compiled plans may touch and how descendant steps must be realized.
    /// Checked against every chosen plan by `QueryRequest::report`.
    fn contract(&self) -> AccessContract;

    /// Concrete root-to-element label paths (`/a/b/c` strings) for
    /// expansion schemes.
    fn concrete_paths(&self, db: &Database, doc: Option<i64>) -> Result<Vec<String>> {
        let _ = (db, doc);
        Err(CoreError::Translate(format!(
            "scheme {:?} has no path summary",
            self.scheme()
        )))
    }

    /// Bind the document's root element, constrained to match `test`.
    fn root_with_test(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef>;

    /// Bind element children of `ctx` matching `test`.
    fn child(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef>;

    /// Bind element descendants of `ctx` matching `test`
    /// (native schemes only).
    fn descendant(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let _ = (db, b, ctx, test);
        Err(CoreError::Translate(format!(
            "descendant axis requires path expansion in scheme {:?}",
            self.scheme()
        )))
    }

    /// Bind any element in the document matching `test` (used for a
    /// leading `//` on native schemes).
    fn any_element(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let _ = (db, b, doc, test);
        Err(CoreError::Translate(format!(
            "leading // requires path expansion in scheme {:?}",
            self.scheme()
        )))
    }

    /// SQL expression for an attribute's value (may add joined tables).
    fn attr_value(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        mode: JoinMode,
    ) -> Result<String>;

    /// SQL expression for the element's direct text value (may add joins).
    fn text_value(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String>;

    /// Expressions identifying the node, starting with the document id.
    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>>;

    /// An expression that is non-NULL exactly when the node exists (used
    /// for existence tests over LEFT-joined predicate branches).
    fn existence_expr(&self, ctx: &NodeRef) -> Result<String>;

    /// Number of key columns this scheme produces.
    fn key_width(&self) -> usize;

    /// Decode key columns from a result row.
    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey>;

    /// Document-order expression for `ctx`, when the scheme has one.
    fn order_expr(&self, ctx: &NodeRef) -> Option<String>;

    /// `(parent id expr, sibling order expr)` for positional predicates.
    fn positional_exprs(&self, ctx: &NodeRef) -> Option<(String, String)>;
}

/// Helper: the label from a node test (None for wildcard/text).
pub fn test_label(test: &NodeTest) -> Option<&str> {
    match test {
        NodeTest::Name(n) => Some(n),
        _ => None,
    }
}

/// Helper: decode (doc, pre) keys shared by several schemes.
pub fn decode_pre_key(vals: &[Value]) -> Result<NodeKey> {
    match (
        vals.first().and_then(Value::as_int),
        vals.get(1).and_then(Value::as_int),
    ) {
        (Some(doc), Some(pre)) => Ok(NodeKey::Pre { doc, pre }),
        _ => Err(CoreError::Translate(format!("bad node key {vals:?}"))),
    }
}
