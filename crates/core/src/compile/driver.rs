//! Generic query compilation over a [`StepCompiler`].

use xqir::ast::{
    Axis, Clause, CmpOp, Condition, Flwor, Literal, NodeTest, PathExpr, Predicate, Query,
    ReturnExpr, Step,
};
use xqir::normalize_path;

use reldb::Database;

use crate::compile::{NodeRef, StepCompiler};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_lit, JoinMode, SqlBuilder};

/// Maximum `UNION ALL` branches produced by path expansion.
pub const MAX_EXPANSION: usize = 128;

/// One expanded concrete chain: labels paired with the pattern step (if
/// any) whose predicates apply at that position.
type Chain<'s> = Vec<(String, Option<&'s Step>)>;

/// A compiled query.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The SQL text.
    pub sql: String,
    /// What the result rows mean.
    pub out: OutKind,
    /// Width of one node key in this scheme.
    pub key_width: usize,
    /// Positional post-processing, if the query had a final `[n]`.
    pub positional: Option<PositionalPost>,
}

/// Result-row interpretation.
#[derive(Debug, Clone)]
pub enum OutKind {
    /// Column `col` holds a string value (attribute / text / element value).
    Values {
        /// Value column index.
        col: usize,
    },
    /// Columns `0 .. key_width` hold a node key; publish the subtree.
    Nodes,
    /// Assemble an XML fragment per row from a constructor template.
    Constructed(Template),
}

/// Element-constructor template (column indexes reference the SELECT list).
#[derive(Debug, Clone)]
pub struct Template {
    /// Element name.
    pub name: String,
    /// Literal attributes.
    pub attrs: Vec<(String, String)>,
    /// Child slots.
    pub children: Vec<Slot>,
}

/// One constructor child.
#[derive(Debug, Clone)]
pub enum Slot {
    /// Literal text.
    Text(String),
    /// A string value column.
    Value(usize),
    /// A node key starting at this column; publish the subtree.
    Node(usize),
    /// A nested constructor.
    Nested(Template),
}

/// Final-step positional predicate: keep the `n`-th row per parent.
#[derive(Debug, Clone, Copy)]
pub struct PositionalPost {
    /// 1-based position.
    pub n: u32,
    /// Column holding the parent id.
    pub parent_col: usize,
    /// Column holding the sibling order key.
    pub order_col: usize,
}

/// Compile a whole query (path or FLWOR).
pub fn compile_query(
    step: &dyn StepCompiler,
    db: &Database,
    query: &Query,
    doc: Option<i64>,
) -> Result<Translated> {
    match query {
        Query::Path(p) => compile_path_query(step, db, p, doc),
        Query::Flwor(f) => compile_flwor(step, db, f, doc),
    }
}

// ---- bare path queries ----------------------------------------------------

/// Compile a bare absolute path query.
pub fn compile_path_query(
    step: &dyn StepCompiler,
    db: &Database,
    path: &PathExpr,
    doc: Option<i64>,
) -> Result<Translated> {
    let path = normalize_path(path);
    if path.start.is_some() {
        return Err(CoreError::Translate(
            "a bare path query must start at the document root".into(),
        ));
    }
    if path.has_parent_step() {
        return Err(CoreError::Translate(
            "parent steps remain after normalization; backward axes are unsupported".into(),
        ));
    }
    let (elem_steps, tail) = split_tail(&path.steps)?;
    if elem_steps.is_empty() {
        return Err(CoreError::Translate("path selects no element".into()));
    }

    let needs_expansion = !step.native_recursive()
        && elem_steps
            .iter()
            .any(|s| s.axis == Axis::Descendant || s.test == NodeTest::Wildcard);

    let branches: Vec<Chain<'_>> = if needs_expansion {
        expand_against_summary(step, db, elem_steps, doc)?
    } else {
        Vec::new()
    };

    let mut arms: Vec<String> = Vec::new();
    let mut meta: Option<(OutKind, Option<PositionalPost>, Option<usize>)> = None;
    let arm_inputs: Vec<Option<&Chain<'_>>> = if needs_expansion {
        branches.iter().map(Some).collect()
    } else {
        vec![None]
    };
    for branch in arm_inputs {
        let mut b = SqlBuilder::new();
        let (ctx, anchor) = match branch {
            Some(chain) => match compile_concrete_chain(step, db, &mut b, chain, doc) {
                Ok(c) => c,
                Err(CoreError::EmptyResult) => continue,
                Err(e) => return Err(e),
            },
            None => match compile_native_steps(step, db, &mut b, elem_steps, doc) {
                Ok(c) => c,
                Err(CoreError::EmptyResult) => {
                    return Ok(empty_translated(step, &tail));
                }
                Err(e) => return Err(e),
            },
        };

        // Assemble the SELECT list.
        let mut select: Vec<String> = Vec::new();
        let out = match &tail {
            Tail::None => {
                select.extend(step.key_exprs(&ctx)?);
                OutKind::Nodes
            }
            Tail::Attribute(name) => {
                let v = step.attr_value(db, &mut b, &ctx, name, JoinMode::Inner)?;
                select.push(v);
                select.extend(step.key_exprs(&ctx)?);
                OutKind::Values { col: 0 }
            }
            Tail::Text => {
                let v = step.text_value(db, &mut b, &ctx, JoinMode::Inner)?;
                select.push(v);
                select.extend(step.key_exprs(&ctx)?);
                OutKind::Values { col: 0 }
            }
        };
        let mut order_col = None;
        if let Some(o) = step.order_expr(&ctx) {
            order_col = Some(select.len());
            select.push(o);
        }
        let positional = match anchor {
            None => None,
            Some(a) => {
                let parent_col = select.len();
                select.push(a.parent_expr);
                let order_col2 = select.len();
                select.push(a.order_expr);
                Some(PositionalPost {
                    n: a.n,
                    parent_col,
                    order_col: order_col2,
                })
            }
        };
        arms.push(b.render(&select.join(", "), true));
        meta = Some((out, positional, order_col));
    }
    let Some((out, positional, order_col)) = meta else {
        // No branch survived: the path provably selects nothing.
        return Ok(empty_translated(step, &tail));
    };
    let mut sql = arms.join(" UNION ALL ");
    if let Some(o) = order_col {
        sql.push_str(&format!(" ORDER BY {}", o + 1));
    }
    Ok(Translated {
        sql,
        out,
        key_width: step.key_width(),
        positional,
    })
}

enum Tail {
    None,
    Attribute(String),
    Text,
}

/// A query that returns zero rows with the right shape.
fn empty_translated(step: &dyn StepCompiler, tail: &Tail) -> Translated {
    let (out, extra) = match tail {
        Tail::None => (OutKind::Nodes, 0),
        Tail::Attribute(_) | Tail::Text => (OutKind::Values { col: 0 }, 1),
    };
    let nulls = vec!["NULL"; step.key_width() + extra].join(", ");
    Translated {
        sql: format!("SELECT {nulls} LIMIT 0"),
        out,
        key_width: step.key_width(),
        positional: None,
    }
}

/// Split trailing attribute / text() step off the element part.
fn split_tail(steps: &[Step]) -> Result<(&[Step], Tail)> {
    match steps.last() {
        Some(last) if last.axis == Axis::Attribute => {
            if !last.predicates.is_empty() {
                return Err(CoreError::Translate(
                    "predicates on attribute steps are unsupported".into(),
                ));
            }
            match &last.test {
                NodeTest::Name(n) => Ok((&steps[..steps.len() - 1], Tail::Attribute(n.clone()))),
                _ => Err(CoreError::Translate(
                    "wildcard attribute steps are unsupported".into(),
                )),
            }
        }
        Some(last) if last.test == NodeTest::Text => {
            if !last.predicates.is_empty() {
                return Err(CoreError::Translate(
                    "predicates on text() steps are unsupported".into(),
                ));
            }
            if last.axis == Axis::Descendant {
                return Err(CoreError::Translate(
                    "//text() is unsupported; name the element first".into(),
                ));
            }
            Ok((&steps[..steps.len() - 1], Tail::Text))
        }
        _ => {
            // Interior attribute / text steps are invalid.
            if steps[..steps.len().saturating_sub(1)]
                .iter()
                .any(|s| s.axis == Axis::Attribute || s.test == NodeTest::Text)
            {
                return Err(CoreError::Translate(
                    "attribute / text() steps must be last".into(),
                ));
            }
            Ok((steps, Tail::None))
        }
    }
}

/// Compile steps on a native-recursive scheme.
fn compile_native_steps(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    steps: &[Step],
    doc: Option<i64>,
) -> Result<(NodeRef, Option<PositionalAnchor>)> {
    let mut ctx: Option<NodeRef> = None;
    let mut positional: Option<PositionalAnchor> = None;
    for s in steps {
        let next = match (&ctx, s.axis) {
            (None, Axis::Child) => step.root_with_test(db, b, doc, &s.test)?,
            (None, Axis::Descendant) => step.any_element(db, b, doc, &s.test)?,
            (Some(c), Axis::Child) => step.child(db, b, c, &s.test)?,
            (Some(c), Axis::Descendant) => step.descendant(db, b, c, &s.test)?,
            (_, other) => {
                return Err(CoreError::Translate(format!(
                    "axis {other:?} is unsupported in element steps"
                )))
            }
        };
        apply_predicates(step, db, b, &next, s, &mut positional)?;
        ctx = Some(next);
    }
    let ctx = ctx.ok_or_else(|| CoreError::Translate("empty path".into()))?;
    Ok((ctx, positional))
}

/// A positional predicate captured at its step.
struct PositionalAnchor {
    n: u32,
    parent_expr: String,
    order_expr: String,
}

fn apply_predicates(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    ctx: &NodeRef,
    s: &Step,
    positional: &mut Option<PositionalAnchor>,
) -> Result<()> {
    for p in &s.predicates {
        if let Predicate::Position(n) = p {
            if positional.is_some() {
                return Err(CoreError::Translate(
                    "at most one positional predicate per query is supported".into(),
                ));
            }
            let (parent_expr, order_expr) = step.positional_exprs(ctx).ok_or_else(|| {
                CoreError::Translate(format!(
                    "positional predicates are unsupported in scheme {:?}",
                    step.scheme()
                ))
            })?;
            *positional = Some(PositionalAnchor {
                n: *n,
                parent_expr,
                order_expr,
            });
            continue;
        }
        let cond = compile_predicate(step, db, b, ctx, p, JoinMode::Inner)?;
        b.cond(cond);
    }
    Ok(())
}

/// Compile one concrete label chain (expansion schemes).
fn compile_concrete_chain(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    chain: &[(String, Option<&Step>)],
    doc: Option<i64>,
) -> Result<(NodeRef, Option<PositionalAnchor>)> {
    let mut ctx: Option<NodeRef> = None;
    let mut positional: Option<PositionalAnchor> = None;
    for (label, pattern) in chain {
        let test = NodeTest::Name(label.clone());
        let next = match &ctx {
            None => step.root_with_test(db, b, doc, &test)?,
            Some(c) => step.child(db, b, c, &test)?,
        };
        if let Some(s) = pattern {
            apply_predicates(step, db, b, &next, s, &mut positional)?;
        }
        ctx = Some(next);
    }
    let ctx = ctx.ok_or_else(|| CoreError::Translate("empty chain".into()))?;
    Ok((ctx, positional))
}

/// Expand a step pattern against the scheme's stored concrete paths.
fn expand_against_summary<'s>(
    step: &dyn StepCompiler,
    db: &Database,
    steps: &'s [Step],
    doc: Option<i64>,
) -> Result<Vec<Chain<'s>>> {
    let paths = step.concrete_paths(db, doc)?;
    let mut out: Vec<Chain<'s>> = Vec::new();
    for path in &paths {
        let labels: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut assignment = vec![None::<&Step>; labels.len()];
        match_pattern(steps, 0, &labels, 0, &mut assignment, &mut |a| {
            let chain: Vec<(String, Option<&Step>)> = labels
                .iter()
                .zip(a.iter())
                .map(|(l, s)| ((*l).to_string(), *s))
                .collect();
            if !out.contains(&chain) {
                out.push(chain);
            }
        });
        if out.len() > MAX_EXPANSION {
            return Err(CoreError::Translate(format!(
                "path expansion exceeds {MAX_EXPANSION} branches; use a scheme \
                 with a native descendant axis"
            )));
        }
    }
    if out.is_empty() {
        // Nothing matches: emit a query over a single impossible branch so
        // the result is empty rather than an error.
        return Ok(Vec::new());
    }
    Ok(out)
}

/// Recursive pattern-to-path alignment. The pattern must consume the whole
/// label sequence.
fn match_pattern<'s>(
    steps: &'s [Step],
    si: usize,
    labels: &[&str],
    li: usize,
    assignment: &mut Vec<Option<&'s Step>>,
    emit: &mut dyn FnMut(&[Option<&'s Step>]),
) {
    if si == steps.len() {
        if li == labels.len() {
            emit(assignment);
        }
        return;
    }
    let s = &steps[si];
    let matches = |label: &str| match &s.test {
        NodeTest::Name(n) => n == label,
        NodeTest::Wildcard => true,
        NodeTest::Text => false,
    };
    match s.axis {
        Axis::Child if li < labels.len() && matches(labels[li]) => {
            assignment[li] = Some(s);
            match_pattern(steps, si + 1, labels, li + 1, assignment, emit);
            assignment[li] = None;
        }
        Axis::Descendant => {
            for j in li..labels.len() {
                if matches(labels[j]) {
                    assignment[j] = Some(s);
                    match_pattern(steps, si + 1, labels, j + 1, assignment, emit);
                    assignment[j] = None;
                }
            }
        }
        _ => {}
    }
}

// ---- predicates -------------------------------------------------------------

/// Compile a step predicate to a SQL boolean expression; joins are added
/// to the builder (LEFT joins under `or`).
pub fn compile_predicate(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    ctx: &NodeRef,
    pred: &Predicate,
    mode: JoinMode,
) -> Result<String> {
    match pred {
        Predicate::Position(_) => Err(CoreError::Translate(
            "positional predicates are only supported on the final step".into(),
        )),
        Predicate::Exists(path) => {
            let v = compile_value_path(step, db, b, Some(ctx), path, mode)?;
            Ok(format!("{} IS NOT NULL", v.existence_expr()))
        }
        Predicate::Compare { path, op, value } => {
            let v = compile_value_path(step, db, b, Some(ctx), path, mode)?;
            Ok(compare_sql(&v.value_expr()?, *op, value))
        }
        Predicate::Contains { path, needle } => {
            let v = compile_value_path(step, db, b, Some(ctx), path, mode)?;
            Ok(format!(
                "{} LIKE {}",
                v.value_expr()?,
                sql_lit(&format!("%{needle}%"))
            ))
        }
        Predicate::And(l, r) => {
            let a = compile_predicate(step, db, b, ctx, l, mode)?;
            let c = compile_predicate(step, db, b, ctx, r, mode)?;
            Ok(format!("({a} AND {c})"))
        }
        Predicate::Or(l, r) => {
            let a = compile_predicate(step, db, b, ctx, l, JoinMode::Left)?;
            let c = compile_predicate(step, db, b, ctx, r, JoinMode::Left)?;
            Ok(format!("({a} OR {c})"))
        }
        Predicate::Not(_) => Err(CoreError::Translate(
            "not(...) requires anti-joins and is not supported by the translator".into(),
        )),
    }
}

fn compare_sql(value_expr: &str, op: CmpOp, lit: &Literal) -> String {
    let op_s = match op {
        CmpOp::Eq => "=",
        CmpOp::NotEq => "<>",
        CmpOp::Lt => "<",
        CmpOp::LtEq => "<=",
        CmpOp::Gt => ">",
        CmpOp::GtEq => ">=",
    };
    match lit {
        Literal::Int(i) => format!("num({value_expr}) {op_s} {i}"),
        Literal::Float(f) => format!("num({value_expr}) {op_s} {f}"),
        Literal::Str(s) => format!("{value_expr} {op_s} {}", sql_lit(s)),
    }
}

/// Where a relative value path landed.
pub struct ValuePath {
    expr: ValueExprKind,
}

enum ValueExprKind {
    /// A string value expression (attribute or text).
    Value(String),
    /// An element; `key` is its first key expression (existence test) and
    /// `text` the lazily-computed text value.
    Element { key: String, text: String },
}

impl ValuePath {
    /// SQL expression for the string value.
    pub fn value_expr(&self) -> Result<String> {
        Ok(match &self.expr {
            ValueExprKind::Value(v) => v.clone(),
            ValueExprKind::Element { text, .. } => text.clone(),
        })
    }

    /// SQL expression whose non-NULLness proves existence.
    pub fn existence_expr(&self) -> String {
        match &self.expr {
            ValueExprKind::Value(v) => v.clone(),
            ValueExprKind::Element { key, .. } => key.clone(),
        }
    }
}

/// Compile a relative path (inside predicates / conditions / returns) from
/// `ctx` (or from the root when the path has no variable and `ctx` is
/// None), ending at a value.
pub fn compile_value_path(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    ctx: Option<&NodeRef>,
    path: &PathExpr,
    mode: JoinMode,
) -> Result<ValuePath> {
    let mut cur = match ctx {
        Some(c) => c.clone(),
        None => {
            return Err(CoreError::Translate(
                "relative path without a context node".into(),
            ))
        }
    };
    let steps = &path.steps;
    for (i, s) in steps.iter().enumerate() {
        let last = i + 1 == steps.len();
        if !s.predicates.is_empty() {
            return Err(CoreError::Translate(
                "predicates inside predicate paths are unsupported".into(),
            ));
        }
        match (s.axis, &s.test) {
            (Axis::SelfAxis, _) => continue,
            (Axis::Attribute, NodeTest::Name(n)) if last => {
                let v = step.attr_value(db, b, &cur, n, mode)?;
                return Ok(ValuePath {
                    expr: ValueExprKind::Value(v),
                });
            }
            (Axis::Child, NodeTest::Text) if last => {
                let v = step.text_value(db, b, &cur, mode)?;
                return Ok(ValuePath {
                    expr: ValueExprKind::Value(v),
                });
            }
            (Axis::Child, test @ (NodeTest::Name(_) | NodeTest::Wildcard)) => {
                cur = child_with_mode(step, db, b, &cur, test, mode)?;
            }
            (Axis::Descendant, test @ (NodeTest::Name(_) | NodeTest::Wildcard)) => {
                if !step.native_recursive() {
                    return Err(CoreError::Translate(format!(
                        "descendant steps inside predicates are unsupported in scheme {:?}",
                        step.scheme()
                    )));
                }
                cur = step.descendant(db, b, &cur, test)?;
            }
            (axis, test) => {
                return Err(CoreError::Translate(format!(
                    "unsupported step {axis:?} {test:?} in value path"
                )))
            }
        }
    }
    // Ends at an element: value = its direct text; existence = its id.
    let key = step.existence_expr(&cur)?;
    let text = step.text_value(db, b, &cur, mode)?;
    Ok(ValuePath {
        expr: ValueExprKind::Element { key, text },
    })
}

/// `child`, honoring LEFT-join mode for `or` branches. Schemes implement
/// `child` with Inner semantics; for Left mode we degrade to Inner —
/// conservative but sound for `or` only when both operands reference
/// existing structure. To stay correct, Left mode routes through
/// `child_left` when the compiler provides it (all bundled compilers do
/// via attr/text value joins; element-step `or` operands remain Inner and
/// are documented as an approximation).
fn child_with_mode(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    ctx: &NodeRef,
    test: &NodeTest,
    _mode: JoinMode,
) -> Result<NodeRef> {
    step.child(db, b, ctx, test)
}

// ---- FLWOR ------------------------------------------------------------------

/// Compile a FLWOR expression.
pub fn compile_flwor(
    step: &dyn StepCompiler,
    db: &Database,
    f: &Flwor,
    doc: Option<i64>,
) -> Result<Translated> {
    let mut b = SqlBuilder::new();
    let mut vars: Vec<(String, NodeRef)> = Vec::new();
    let lookup = |vars: &[(String, NodeRef)], name: &str| -> Result<NodeRef> {
        vars.iter()
            .find(|(v, _)| v == name)
            .map(|(_, n)| n.clone())
            .ok_or_else(|| CoreError::Translate(format!("unbound variable ${name}")))
    };

    for clause in &f.clauses {
        let path = normalize_path(clause.path());
        if path.has_parent_step() {
            return Err(CoreError::Translate("parent steps in FLWOR clauses".into()));
        }
        let ctx = match &path.start {
            Some(v) => {
                let base = lookup(&vars, v)?;
                bind_rel_elements(step, db, &mut b, &base, &path.steps)?
            }
            None => {
                let (elem_steps, tail) = split_tail(&path.steps)?;
                if !matches!(tail, Tail::None) {
                    return Err(CoreError::Translate(
                        "for/let must bind element nodes, not values".into(),
                    ));
                }
                if !step.native_recursive()
                    && elem_steps
                        .iter()
                        .any(|s| s.axis == Axis::Descendant || s.test == NodeTest::Wildcard)
                {
                    return Err(CoreError::Translate(format!(
                        "FLWOR clause paths with // or * are unsupported in scheme {:?}",
                        step.scheme()
                    )));
                }
                let (ctx, anchor) = compile_native_steps(step, db, &mut b, elem_steps, doc)?;
                if anchor.is_some() {
                    return Err(CoreError::Translate(
                        "positional predicates in FLWOR clauses are unsupported".into(),
                    ));
                }
                ctx
            }
        };
        match clause {
            Clause::For { var, .. } | Clause::Let { var, .. } => {
                vars.push((var.clone(), ctx));
            }
        }
    }

    if let Some(cond) = &f.where_ {
        let sql = compile_condition(step, db, &mut b, &vars, cond, JoinMode::Inner)?;
        b.cond(sql);
    }

    // SELECT layout: return values / constructor slots, then node keys of
    // the returned node (when Nodes), then binding keys of every for-var
    // (dedup), then order-by columns.
    let mut select: Vec<String> = Vec::new();
    let out = compile_return(step, db, &mut b, &vars, &f.ret, &mut select)?;

    for (_, ctx) in &vars {
        select.extend(step.key_exprs(ctx)?);
    }
    let mut order_ordinals = Vec::new();
    for (path, asc) in &f.order_by {
        let base = match &path.start {
            Some(v) => Some(lookup(&vars, v)?),
            None => None,
        };
        let v = compile_value_path(step, db, &mut b, base.as_ref(), path, JoinMode::Left)?;
        order_ordinals.push((select.len() + 1, *asc));
        select.push(v.value_expr()?);
    }

    let mut sql = b.render(&select.join(", "), true);
    if !order_ordinals.is_empty() {
        let keys: Vec<String> = order_ordinals
            .iter()
            .map(|(i, asc)| format!("{i}{}", if *asc { "" } else { " DESC" }))
            .collect();
        sql.push_str(&format!(" ORDER BY {}", keys.join(", ")));
    }
    Ok(Translated {
        sql,
        out,
        key_width: step.key_width(),
        positional: None,
    })
}

/// Bind relative element steps from a variable's node.
fn bind_rel_elements(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    base: &NodeRef,
    steps: &[Step],
) -> Result<NodeRef> {
    let mut cur = base.clone();
    for s in steps {
        if !s.predicates.is_empty() {
            return Err(CoreError::Translate(
                "predicates in FLWOR clause paths are unsupported; use where".into(),
            ));
        }
        cur = match s.axis {
            Axis::Child => step.child(db, b, &cur, &s.test)?,
            Axis::Descendant => step.descendant(db, b, &cur, &s.test)?,
            other => {
                return Err(CoreError::Translate(format!(
                    "axis {other:?} unsupported in FLWOR clause paths"
                )))
            }
        };
    }
    Ok(cur)
}

/// Compile a WHERE condition.
fn compile_condition(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    vars: &[(String, NodeRef)],
    cond: &Condition,
    mode: JoinMode,
) -> Result<String> {
    let base_of = |b_: &PathExpr| -> Result<Option<NodeRef>> {
        match &b_.start {
            Some(v) => vars
                .iter()
                .find(|(name, _)| name == v)
                .map(|(_, n)| Some(n.clone()))
                .ok_or_else(|| CoreError::Translate(format!("unbound variable ${v}"))),
            None => Ok(None),
        }
    };
    match cond {
        Condition::Compare { path, op, value } => {
            let base = base_of(path)?;
            let v = compile_value_path(step, db, b, base.as_ref(), path, mode)?;
            Ok(compare_sql(&v.value_expr()?, *op, value))
        }
        Condition::Exists(path) => {
            let base = base_of(path)?;
            let v = compile_value_path(step, db, b, base.as_ref(), path, mode)?;
            Ok(format!("{} IS NOT NULL", v.existence_expr()))
        }
        Condition::Contains { path, needle } => {
            let base = base_of(path)?;
            let v = compile_value_path(step, db, b, base.as_ref(), path, mode)?;
            Ok(format!(
                "{} LIKE {}",
                v.value_expr()?,
                sql_lit(&format!("%{needle}%"))
            ))
        }
        Condition::Join { left, op, right } => {
            let lb = base_of(left)?;
            let lv = compile_value_path(step, db, b, lb.as_ref(), left, mode)?;
            let rb = base_of(right)?;
            let rv = compile_value_path(step, db, b, rb.as_ref(), right, mode)?;
            let op_s = match op {
                CmpOp::Eq => "=",
                CmpOp::NotEq => "<>",
                CmpOp::Lt => "<",
                CmpOp::LtEq => "<=",
                CmpOp::Gt => ">",
                CmpOp::GtEq => ">=",
            };
            Ok(format!("{} {op_s} {}", lv.value_expr()?, rv.value_expr()?))
        }
        Condition::And(l, r) => {
            let a = compile_condition(step, db, b, vars, l, mode)?;
            let c = compile_condition(step, db, b, vars, r, mode)?;
            Ok(format!("({a} AND {c})"))
        }
        Condition::Or(l, r) => {
            let a = compile_condition(step, db, b, vars, l, JoinMode::Left)?;
            let c = compile_condition(step, db, b, vars, r, JoinMode::Left)?;
            Ok(format!("({a} OR {c})"))
        }
        Condition::Not(_) => Err(CoreError::Translate(
            "not(...) requires anti-joins and is not supported by the translator".into(),
        )),
    }
}

/// Compile the return expression; pushes SELECT columns and returns the
/// output interpretation.
fn compile_return(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    vars: &[(String, NodeRef)],
    ret: &ReturnExpr,
    select: &mut Vec<String>,
) -> Result<OutKind> {
    match ret {
        ReturnExpr::Path(path) => match compile_return_path(step, db, b, vars, path, select)? {
            Slot::Value(col) => Ok(OutKind::Values { col }),
            Slot::Node(_start) => Ok(OutKind::Nodes),
            other => Err(CoreError::Translate(format!(
                "return path compiled to a non-output slot {other:?}"
            ))),
        },
        ReturnExpr::Text(t) => {
            select.push(sql_lit(t));
            Ok(OutKind::Values {
                col: select.len() - 1,
            })
        }
        ReturnExpr::Element { .. } => {
            let template = compile_template(step, db, b, vars, ret, select)?;
            Ok(OutKind::Constructed(template))
        }
    }
}

fn compile_template(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    vars: &[(String, NodeRef)],
    ret: &ReturnExpr,
    select: &mut Vec<String>,
) -> Result<Template> {
    let ReturnExpr::Element {
        name,
        attributes,
        children,
    } = ret
    else {
        return Err(CoreError::Translate(
            "expected an element constructor".into(),
        ));
    };
    let mut slots = Vec::new();
    for child in children {
        match child {
            ReturnExpr::Text(t) => slots.push(Slot::Text(t.clone())),
            ReturnExpr::Element { .. } => {
                slots.push(Slot::Nested(compile_template(
                    step, db, b, vars, child, select,
                )?));
            }
            ReturnExpr::Path(p) => {
                slots.push(compile_return_path(step, db, b, vars, p, select)?);
            }
        }
    }
    Ok(Template {
        name: name.clone(),
        attrs: attributes.clone(),
        children: slots,
    })
}

/// Compile a return-position path: value paths add one column; element
/// paths add key columns.
fn compile_return_path(
    step: &dyn StepCompiler,
    db: &Database,
    b: &mut SqlBuilder,
    vars: &[(String, NodeRef)],
    path: &PathExpr,
    select: &mut Vec<String>,
) -> Result<Slot> {
    let base = match &path.start {
        Some(v) => Some(
            vars.iter()
                .find(|(name, _)| name == v)
                .map(|(_, n)| n.clone())
                .ok_or_else(|| CoreError::Translate(format!("unbound variable ${v}")))?,
        ),
        None => None,
    };
    // Does the path end at a value?
    let ends_at_value = matches!(
        path.steps.last(),
        Some(s) if s.axis == Axis::Attribute || s.test == NodeTest::Text
    );
    if ends_at_value {
        let v = compile_value_path(step, db, b, base.as_ref(), path, JoinMode::Left)?;
        select.push(v.value_expr()?);
        return Ok(Slot::Value(select.len() - 1));
    }
    // Element path: bind (LEFT semantics unavailable → inner; see docs)
    // and emit its keys.
    let base = base.ok_or_else(|| {
        CoreError::Translate("return paths must start at a bound variable".into())
    })?;
    let ctx = bind_rel_elements(step, db, b, &base, &path.steps)?;
    let start = select.len();
    select.extend(step.key_exprs(&ctx)?);
    Ok(Slot::Node(start))
}
