//! Step compilation for the interval (pre/size/level) scheme: the
//! descendant axis is a range predicate, executed by the engine's
//! interval (structural) join.

use reldb::{Database, Value};
use shredder::IntervalScheme;
use xqir::ast::NodeTest;

use crate::compile::edge::add_join;
use crate::compile::{decode_pre_key, NodeKey, NodeMeta, NodeRef, StepCompiler};
use crate::contract::{AccessContract, DescendantAccess, IndexPat};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_lit, JoinMode, SqlBuilder};

/// Interval-scheme compiler.
#[derive(Debug, Clone)]
pub struct IntervalCompiler {
    /// The scheme.
    pub scheme: IntervalScheme,
}

impl IntervalCompiler {
    /// Wrap a scheme.
    pub fn new(scheme: IntervalScheme) -> IntervalCompiler {
        IntervalCompiler { scheme }
    }

    fn name_cond(alias: &str, test: &NodeTest) -> Result<Option<String>> {
        Ok(match test {
            NodeTest::Name(n) => Some(format!("{alias}.name = {}", sql_lit(n))),
            NodeTest::Wildcard => None,
            NodeTest::Text => {
                return Err(CoreError::Translate("text() is not an element test".into()))
            }
        })
    }
}

impl StepCompiler for IntervalCompiler {
    fn scheme(&self) -> &'static str {
        "interval"
    }

    fn native_recursive(&self) -> bool {
        true
    }

    fn contract(&self) -> AccessContract {
        AccessContract {
            scheme: "interval",
            indexes: vec![
                IndexPat::Exact("inode_pre"),
                IndexPat::Exact("inode_name"),
                IndexPat::Exact("inode_parent"),
                IndexPat::Exact("inode_value"),
            ],
            // The value index is experiment E5's knob; only promise it
            // when this instance actually created it.
            value_indexes: if self.scheme.with_value_index {
                vec![IndexPat::Exact("inode_value")]
            } else {
                vec![]
            },
            descendant: DescendantAccess::IntervalContainment,
        }
    }

    fn root_with_test(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("inode");
        b.cond(format!("{alias}.kind = 'elem'"));
        b.cond(format!("{alias}.parent IS NULL"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn child(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("inode");
        b.cond(format!("{alias}.parent = {}.pre", ctx.alias));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn descendant(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("inode");
        // The interval containment condition — picked up by the engine's
        // IntervalJoin operator.
        b.cond(format!("{alias}.pre > {}.pre", ctx.alias));
        b.cond(format!("{alias}.pre <= {0}.pre + {0}.size", ctx.alias));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn any_element(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("inode");
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn attr_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        mode: JoinMode,
    ) -> Result<String> {
        let on = vec![
            format!("__A.parent = {}.pre", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.kind = 'attr'".to_string(),
            format!("__A.name = {}", sql_lit(name)),
        ];
        let alias = add_join(b, "inode", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn text_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String> {
        let on = vec![
            format!("__A.parent = {}.pre", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.kind = 'text'".to_string(),
        ];
        let alias = add_join(b, "inode", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>> {
        Ok(vec![
            format!("{}.doc", ctx.alias),
            format!("{}.pre", ctx.alias),
        ])
    }

    fn existence_expr(&self, ctx: &NodeRef) -> Result<String> {
        Ok(format!("{}.pre", ctx.alias))
    }

    fn key_width(&self) -> usize {
        2
    }

    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey> {
        decode_pre_key(vals)
    }

    fn order_expr(&self, ctx: &NodeRef) -> Option<String> {
        Some(format!("{}.pre", ctx.alias))
    }

    fn positional_exprs(&self, ctx: &NodeRef) -> Option<(String, String)> {
        Some((
            format!("{}.parent", ctx.alias),
            format!("{}.pre", ctx.alias),
        ))
    }
}
