//! Step compilation for the binary (label-partitioned) scheme: each step
//! joins its label's own table; unknown labels provably select nothing.

use reldb::{Database, Value};
use shredder::BinaryScheme;
use xqir::ast::NodeTest;

use crate::compile::edge::add_join;
use crate::compile::{decode_pre_key, NodeKey, NodeMeta, NodeRef, StepCompiler};
use crate::contract::{AccessContract, DescendantAccess, IndexPat};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_ident, JoinMode, SqlBuilder};

/// Binary-scheme compiler.
#[derive(Debug, Clone)]
pub struct BinaryCompiler {
    /// The scheme (carries the label registry and path summary).
    pub scheme: BinaryScheme,
}

impl BinaryCompiler {
    /// Wrap a scheme.
    pub fn new(scheme: BinaryScheme) -> BinaryCompiler {
        BinaryCompiler { scheme }
    }

    fn element_table(&self, db: &Database, test: &NodeTest) -> Result<String> {
        match test {
            NodeTest::Name(n) => self
                .scheme
                .element_table(db, n)?
                .ok_or(CoreError::EmptyResult),
            NodeTest::Wildcard => Err(CoreError::Translate(
                "wildcard steps must be path-expanded in the binary scheme".into(),
            )),
            NodeTest::Text => Err(CoreError::Translate("text() is not an element test".into())),
        }
    }
}

impl StepCompiler for BinaryCompiler {
    fn scheme(&self) -> &'static str {
        "binary"
    }

    fn native_recursive(&self) -> bool {
        false
    }

    fn contract(&self) -> AccessContract {
        AccessContract {
            scheme: "binary",
            indexes: vec![
                IndexPat::Suffix("_src"),
                IndexPat::Suffix("_pre"),
                IndexPat::Suffix("_val"),
                IndexPat::Exact("bin_text_src"),
                IndexPat::Exact("bin_text_val"),
            ],
            // The value index is experiment E5's knob; only promise it
            // when this instance actually created it.
            value_indexes: if self.scheme.with_value_index {
                vec![IndexPat::Suffix("_val")]
            } else {
                vec![]
            },
            descendant: DescendantAccess::PathExpansion,
        }
    }

    fn concrete_paths(&self, db: &Database, doc: Option<i64>) -> Result<Vec<String>> {
        Ok(self.scheme.path_summary().paths(db, doc)?)
    }

    fn root_with_test(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let table = self.element_table(db, test)?;
        let alias = b.add_table(&sql_ident(&table));
        b.cond(format!("{alias}.source IS NULL"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        let label = match test {
            NodeTest::Name(n) => n.clone(),
            _ => String::new(),
        };
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Labeled { label },
        })
    }

    fn child(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let table = self.element_table(db, test)?;
        let alias = b.add_table(&sql_ident(&table));
        b.cond(format!("{alias}.source = {}.pre", ctx.alias));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        let label = match test {
            NodeTest::Name(n) => n.clone(),
            _ => String::new(),
        };
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Labeled { label },
        })
    }

    fn attr_value(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        mode: JoinMode,
    ) -> Result<String> {
        let Some(table) = self.scheme.attribute_table(db, name)? else {
            // The attribute never occurs anywhere: its value is NULL.
            return Ok("NULL".to_string());
        };
        let on = vec![
            format!("__A.source = {}.pre", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
        ];
        let alias = add_join(b, &table, mode, on);
        Ok(format!("{alias}.value"))
    }

    fn text_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String> {
        let on = vec![
            format!("__A.source = {}.pre", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
        ];
        let alias = add_join(b, "bin_text", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>> {
        Ok(vec![
            format!("{}.doc", ctx.alias),
            format!("{}.pre", ctx.alias),
        ])
    }

    fn existence_expr(&self, ctx: &NodeRef) -> Result<String> {
        Ok(format!("{}.pre", ctx.alias))
    }

    fn key_width(&self) -> usize {
        2
    }

    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey> {
        decode_pre_key(vals)
    }

    fn order_expr(&self, ctx: &NodeRef) -> Option<String> {
        Some(format!("{}.pre", ctx.alias))
    }

    fn positional_exprs(&self, ctx: &NodeRef) -> Option<(String, String)> {
        Some((
            format!("{}.source", ctx.alias),
            format!("{}.ordinal", ctx.alias),
        ))
    }
}
