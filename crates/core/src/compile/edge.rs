//! Step compilation for the edge scheme: one self-join per step.

use reldb::{Database, Value};
use shredder::EdgeScheme;
use xqir::ast::NodeTest;

use crate::compile::{decode_pre_key, NodeKey, NodeMeta, NodeRef, StepCompiler};
use crate::contract::{AccessContract, DescendantAccess, IndexPat};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_ident, sql_lit, JoinMode, SqlBuilder};

/// Edge-scheme compiler.
#[derive(Debug, Clone)]
pub struct EdgeCompiler {
    /// The scheme (carries table names and the path summary).
    pub scheme: EdgeScheme,
}

impl EdgeCompiler {
    /// Wrap a scheme.
    pub fn new(scheme: EdgeScheme) -> EdgeCompiler {
        EdgeCompiler { scheme }
    }

    fn name_cond(alias: &str, test: &NodeTest) -> Result<Option<String>> {
        Ok(match test {
            NodeTest::Name(n) => Some(format!("{alias}.label = {}", sql_lit(n))),
            NodeTest::Wildcard => None,
            NodeTest::Text => {
                return Err(CoreError::Translate("text() is not an element test".into()))
            }
        })
    }
}

impl StepCompiler for EdgeCompiler {
    fn scheme(&self) -> &'static str {
        "edge"
    }

    fn native_recursive(&self) -> bool {
        false
    }

    fn contract(&self) -> AccessContract {
        AccessContract {
            scheme: "edge",
            indexes: vec![
                IndexPat::Exact("edge_source"),
                IndexPat::Exact("edge_label"),
                IndexPat::Exact("edge_target"),
                IndexPat::Exact("edge_value"),
            ],
            // The value index is experiment E5's knob; only promise it
            // when this instance actually created it.
            value_indexes: if self.scheme.with_value_index {
                vec![IndexPat::Exact("edge_value")]
            } else {
                vec![]
            },
            descendant: DescendantAccess::PathExpansion,
        }
    }

    fn concrete_paths(&self, db: &Database, doc: Option<i64>) -> Result<Vec<String>> {
        Ok(self.scheme.path_summary().paths(db, doc)?)
    }

    fn root_with_test(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let _ = db;
        let alias = b.add_table("edge");
        b.cond(format!("{alias}.kind = 'elem'"));
        b.cond(format!("{alias}.source IS NULL"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn child(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let _ = db;
        let alias = b.add_table("edge");
        b.cond(format!("{alias}.source = {}.target", ctx.alias));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn attr_value(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        mode: JoinMode,
    ) -> Result<String> {
        let _ = db;
        let on = vec![
            format!("__A.source = {}.target", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.kind = 'attr'".to_string(),
            format!("__A.label = {}", sql_lit(name)),
        ];
        let alias = add_join(b, "edge", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn text_value(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String> {
        let _ = db;
        let on = vec![
            format!("__A.source = {}.target", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.kind = 'text'".to_string(),
        ];
        let alias = add_join(b, "edge", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>> {
        Ok(vec![
            format!("{}.doc", ctx.alias),
            format!("{}.target", ctx.alias),
        ])
    }

    fn existence_expr(&self, ctx: &NodeRef) -> Result<String> {
        Ok(format!("{}.target", ctx.alias))
    }

    fn key_width(&self) -> usize {
        2
    }

    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey> {
        decode_pre_key(vals)
    }

    fn order_expr(&self, ctx: &NodeRef) -> Option<String> {
        Some(format!("{}.target", ctx.alias))
    }

    fn positional_exprs(&self, ctx: &NodeRef) -> Option<(String, String)> {
        Some((
            format!("{}.source", ctx.alias),
            format!("{}.ordinal", ctx.alias),
        ))
    }
}

/// Add a joined table whose ON conditions were written against the
/// placeholder alias `__A`; the placeholder is rewritten to the fresh
/// alias. Inner mode routes conditions to WHERE.
pub(crate) fn add_join(b: &mut SqlBuilder, table: &str, mode: JoinMode, on: Vec<String>) -> String {
    let table = sql_ident(table);
    match mode {
        JoinMode::Inner => {
            let alias = b.add_table(&table);
            for c in on {
                b.cond(c.replace("__A", &alias));
            }
            alias
        }
        JoinMode::Left => {
            // Resolve the alias first so ON conditions can reference it.
            let alias_preview = format!("t{}", b.table_count());
            let on: Vec<String> = on
                .into_iter()
                .map(|c| c.replace("__A", &alias_preview))
                .collect();
            let alias = b.add_table_with(&table, JoinMode::Left, on);
            debug_assert_eq!(alias, alias_preview);
            alias
        }
    }
}
