//! Step compilation for the DTD-inlining scheme: child steps into inlined
//! elements stay on the *same* table row (no join — the scheme's whole
//! point); steps into tabled elements join via `parent_id`/`parent_tbl`/
//! `parent_path`. `//` and `*` are answered by enumerating the DTD graph
//! (bounded for recursive DTDs), exactly as the original proposal does.

use reldb::{Database, Value};
use shredder::inline::{ColKind, InlineScheme};
use xmlpar::dtd::Card;
use xqir::ast::NodeTest;

use crate::compile::edge::add_join;
use crate::compile::{NodeKey, NodeMeta, NodeRef, StepCompiler};
use crate::contract::{AccessContract, DescendantAccess, IndexPat};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_ident, sql_lit, JoinMode, SqlBuilder};

/// Depth bound when enumerating recursive DTD paths. Documents nested
/// deeper than this are not fully covered by `//` translation (the
/// published approach shares this limitation absent recursive SQL).
pub const DTD_PATH_DEPTH: usize = 16;

/// Cap on enumerated DTD paths.
pub const DTD_PATH_CAP: usize = 4096;

/// Inline-scheme compiler.
#[derive(Debug, Clone)]
pub struct InlineCompiler {
    /// The scheme (owns the mapping).
    pub scheme: InlineScheme,
}

impl InlineCompiler {
    /// Wrap a scheme.
    pub fn new(scheme: InlineScheme) -> InlineCompiler {
        InlineCompiler { scheme }
    }

    fn ctx_label<'a>(&self, ctx: &'a NodeRef) -> Result<&'a str> {
        match &ctx.meta {
            NodeMeta::Inline { anchor, path } => {
                Ok(path.last().map(String::as_str).unwrap_or(anchor.as_str()))
            }
            _ => Err(CoreError::Translate(
                "inline compiler got a foreign node".into(),
            )),
        }
    }
}

impl StepCompiler for InlineCompiler {
    fn scheme(&self) -> &'static str {
        "inline"
    }

    fn native_recursive(&self) -> bool {
        false
    }

    fn contract(&self) -> AccessContract {
        AccessContract {
            scheme: "inline",
            indexes: vec![
                IndexPat::Suffix("_parent"),
                IndexPat::Suffix("_id"),
                IndexPat::Exact("inl_text_parent"),
            ],
            value_indexes: vec![],
            descendant: DescendantAccess::PathExpansion,
        }
    }

    fn concrete_paths(&self, _db: &Database, _doc: Option<i64>) -> Result<Vec<String>> {
        // Enumerate label paths from the DTD graph (not the data): every
        // path that a conforming document can contain, bounded for cycles.
        let mapping = &self.scheme.mapping;
        let mut out = Vec::new();
        let mut stack = vec![(mapping.root.clone(), format!("/{}", mapping.root))];
        while let Some((el, path)) = stack.pop() {
            if out.len() >= DTD_PATH_CAP {
                return Err(CoreError::Translate(format!(
                    "DTD path enumeration exceeds {DTD_PATH_CAP} paths"
                )));
            }
            let depth = path.matches('/').count();
            out.push(path.clone());
            if depth >= DTD_PATH_DEPTH {
                continue;
            }
            if let Some(model) = mapping.models.get(&el) {
                for (child, _) in &model.children {
                    stack.push((child.clone(), format!("{path}/{child}")));
                }
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    fn root_with_test(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let NodeTest::Name(n) = test else {
            return Err(CoreError::Translate(
                "the inline scheme needs a named root step".into(),
            ));
        };
        let Some(def) = self.scheme.mapping.tables.get(n) else {
            return Err(CoreError::EmptyResult);
        };
        let alias = b.add_table(&sql_ident(&def.table));
        b.cond(format!("{alias}.parent_id IS NULL"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Inline {
                anchor: n.clone(),
                path: Vec::new(),
            },
        })
    }

    fn child(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let NodeTest::Name(m) = test else {
            return Err(CoreError::Translate(
                "wildcard steps must be DTD-expanded in the inline scheme".into(),
            ));
        };
        let NodeMeta::Inline { anchor, path } = &ctx.meta else {
            return Err(CoreError::Translate(
                "inline compiler got a foreign node".into(),
            ));
        };
        let cur_label = self.ctx_label(ctx)?;
        let model = self
            .scheme
            .mapping
            .models
            .get(cur_label)
            .ok_or(CoreError::EmptyResult)?;
        let Some((_, card)) = model.children.iter().find(|(c, _)| c == m) else {
            return Err(CoreError::EmptyResult);
        };
        if self.scheme.mapping.is_tabled(m) {
            let child_def = &self.scheme.mapping.tables[m];
            let anchor_def = &self.scheme.mapping.tables[anchor.as_str()];
            let alias = b.add_table(&sql_ident(&child_def.table));
            b.cond(format!("{alias}.parent_id = {}.id", ctx.alias));
            b.cond(format!(
                "{alias}.parent_tbl = {}",
                sql_lit(&anchor_def.table)
            ));
            b.cond(format!(
                "{alias}.parent_path = {}",
                sql_lit(&path.join("/"))
            ));
            b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
            Ok(NodeRef {
                alias,
                meta: NodeMeta::Inline {
                    anchor: m.clone(),
                    path: Vec::new(),
                },
            })
        } else {
            // Inlined: stay on the same row.
            let mut new_path = path.clone();
            new_path.push(m.clone());
            let def = &self.scheme.mapping.tables[anchor.as_str()];
            if *card == Card::Opt {
                if let Some(col) = def.find_col(&new_path, &ColKind::Present) {
                    b.cond(format!(
                        "{}.{} IS NOT NULL",
                        ctx.alias,
                        sql_ident(&col.column)
                    ));
                }
            }
            Ok(NodeRef {
                alias: ctx.alias.clone(),
                meta: NodeMeta::Inline {
                    anchor: anchor.clone(),
                    path: new_path,
                },
            })
        }
    }

    fn attr_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        _mode: JoinMode,
    ) -> Result<String> {
        let _ = b;
        let NodeMeta::Inline { anchor, path } = &ctx.meta else {
            return Err(CoreError::Translate(
                "inline compiler got a foreign node".into(),
            ));
        };
        let def = &self.scheme.mapping.tables[anchor.as_str()];
        match def.find_col(path, &ColKind::Attr(name.to_string())) {
            Some(col) => Ok(format!("{}.{}", ctx.alias, sql_ident(&col.column))),
            None => Ok("NULL".to_string()),
        }
    }

    fn text_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String> {
        let NodeMeta::Inline { anchor, path } = &ctx.meta else {
            return Err(CoreError::Translate(
                "inline compiler got a foreign node".into(),
            ));
        };
        let def = &self.scheme.mapping.tables[anchor.as_str()];
        if path.is_empty() && def.mixed {
            let on = vec![
                format!("__A.tbl = {}", sql_lit(&def.table)),
                format!("__A.parent_id = {}.id", ctx.alias),
                format!("__A.doc = {}.doc", ctx.alias),
            ];
            let alias = add_join(b, "inl_text", mode, on);
            return Ok(format!("{alias}.value"));
        }
        match def.find_col(path, &ColKind::Pcdata) {
            Some(col) => Ok(format!("{}.{}", ctx.alias, sql_ident(&col.column))),
            None => Ok("NULL".to_string()),
        }
    }

    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>> {
        let NodeMeta::Inline { anchor, path } = &ctx.meta else {
            return Err(CoreError::Translate(
                "inline compiler got a foreign node".into(),
            ));
        };
        Ok(vec![
            format!("{}.doc", ctx.alias),
            sql_lit(anchor),
            format!("{}.id", ctx.alias),
            sql_lit(&path.join("/")),
        ])
    }

    fn existence_expr(&self, ctx: &NodeRef) -> Result<String> {
        let NodeMeta::Inline { anchor, path } = &ctx.meta else {
            return Err(CoreError::Translate(
                "inline compiler got a foreign node".into(),
            ));
        };
        if path.is_empty() {
            return Ok(format!("{}.id", ctx.alias));
        }
        let def = &self.scheme.mapping.tables[anchor.as_str()];
        if let Some(col) = def.find_col(path, &ColKind::Present) {
            return Ok(format!("{}.{}", ctx.alias, sql_ident(&col.column)));
        }
        if let Some(col) = def.find_col(path, &ColKind::Pcdata) {
            return Ok(format!("{}.{}", ctx.alias, sql_ident(&col.column)));
        }
        // Mandatory inlined element: exists whenever the row does.
        Ok(format!("{}.id", ctx.alias))
    }

    fn key_width(&self) -> usize {
        4
    }

    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey> {
        match (
            vals.first().and_then(Value::as_int),
            vals.get(1).and_then(Value::as_text),
            vals.get(2).and_then(Value::as_int),
            vals.get(3).and_then(Value::as_text),
        ) {
            (Some(doc), Some(anchor), Some(id), Some(path)) => Ok(NodeKey::Inline {
                doc,
                anchor: anchor.to_string(),
                id,
                path: if path.is_empty() {
                    Vec::new()
                } else {
                    path.split('/').map(str::to_string).collect()
                },
            }),
            _ => Err(CoreError::Translate(format!("bad inline key {vals:?}"))),
        }
    }

    fn order_expr(&self, ctx: &NodeRef) -> Option<String> {
        // Surrogate ids are assigned in document order during shredding, so
        // they give a coarse (anchor-level) document order.
        match &ctx.meta {
            NodeMeta::Inline { .. } => Some(format!("{}.id", ctx.alias)),
            _ => None,
        }
    }

    fn positional_exprs(&self, _ctx: &NodeRef) -> Option<(String, String)> {
        None
    }
}
