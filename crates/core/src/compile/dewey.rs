//! Step compilation for the Dewey scheme: child axis via the parent key,
//! descendant axis via key-prefix `LIKE`, document order via lexicographic
//! key order.

use reldb::{Database, Value};
use shredder::DeweyScheme;
use xqir::ast::NodeTest;

use crate::compile::edge::add_join;
use crate::compile::{NodeKey, NodeMeta, NodeRef, StepCompiler};
use crate::contract::{AccessContract, DescendantAccess, IndexPat};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_lit, JoinMode, SqlBuilder};

/// Dewey-scheme compiler.
#[derive(Debug, Clone)]
pub struct DeweyCompiler {
    /// The scheme.
    pub scheme: DeweyScheme,
}

impl DeweyCompiler {
    /// Wrap a scheme.
    pub fn new(scheme: DeweyScheme) -> DeweyCompiler {
        DeweyCompiler { scheme }
    }

    fn name_cond(alias: &str, test: &NodeTest) -> Result<Option<String>> {
        Ok(match test {
            NodeTest::Name(n) => Some(format!("{alias}.name = {}", sql_lit(n))),
            NodeTest::Wildcard => None,
            NodeTest::Text => {
                return Err(CoreError::Translate("text() is not an element test".into()))
            }
        })
    }
}

impl StepCompiler for DeweyCompiler {
    fn scheme(&self) -> &'static str {
        "dewey"
    }

    fn native_recursive(&self) -> bool {
        true
    }

    fn contract(&self) -> AccessContract {
        AccessContract {
            scheme: "dewey",
            indexes: vec![
                IndexPat::Exact("dnode_key"),
                IndexPat::Exact("dnode_name"),
                IndexPat::Exact("dnode_parent"),
            ],
            value_indexes: vec![],
            descendant: DescendantAccess::DeweyPrefix,
        }
    }

    fn root_with_test(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("dnode");
        b.cond(format!("{alias}.kind = 'elem'"));
        b.cond(format!("{alias}.parent IS NULL"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn child(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("dnode");
        b.cond(format!("{alias}.parent = {}.dewey", ctx.alias));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn descendant(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("dnode");
        b.cond(format!("{alias}.dewey LIKE {}.dewey || '.%'", ctx.alias));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn any_element(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let alias = b.add_table("dnode");
        b.cond(format!("{alias}.kind = 'elem'"));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        if let Some(c) = Self::name_cond(&alias, test)? {
            b.cond(c);
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Plain,
        })
    }

    fn attr_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        mode: JoinMode,
    ) -> Result<String> {
        let on = vec![
            format!("__A.parent = {}.dewey", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.kind = 'attr'".to_string(),
            format!("__A.name = {}", sql_lit(name)),
        ];
        let alias = add_join(b, "dnode", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn text_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String> {
        let on = vec![
            format!("__A.parent = {}.dewey", ctx.alias),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.kind = 'text'".to_string(),
        ];
        let alias = add_join(b, "dnode", mode, on);
        Ok(format!("{alias}.value"))
    }

    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>> {
        Ok(vec![
            format!("{}.doc", ctx.alias),
            format!("{}.dewey", ctx.alias),
        ])
    }

    fn existence_expr(&self, ctx: &NodeRef) -> Result<String> {
        Ok(format!("{}.dewey", ctx.alias))
    }

    fn key_width(&self) -> usize {
        2
    }

    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey> {
        match (
            vals.first().and_then(Value::as_int),
            vals.get(1).and_then(Value::as_text),
        ) {
            (Some(doc), Some(key)) => Ok(NodeKey::Dewey {
                doc,
                key: key.to_string(),
            }),
            _ => Err(CoreError::Translate(format!("bad dewey key {vals:?}"))),
        }
    }

    fn order_expr(&self, ctx: &NodeRef) -> Option<String> {
        Some(format!("{}.dewey", ctx.alias))
    }

    fn positional_exprs(&self, ctx: &NodeRef) -> Option<(String, String)> {
        Some((
            format!("{}.parent", ctx.alias),
            format!("{}.dewey", ctx.alias),
        ))
    }
}
