//! Step compilation for the universal-relation scheme: one `univ` row per
//! (source, k); a node is the `t_<stem>` column of a row, so the child
//! axis joins the next row group on `src`.

use std::collections::BTreeMap;

use reldb::{Database, Value};
use shredder::UniversalScheme;
use xqir::ast::NodeTest;

use crate::compile::edge::add_join;
use crate::compile::{decode_pre_key, NodeKey, NodeMeta, NodeRef, StepCompiler};
use crate::contract::{AccessContract, DescendantAccess, IndexPat};
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_ident, JoinMode, SqlBuilder};

/// Universal-scheme compiler.
#[derive(Debug, Clone)]
pub struct UniversalCompiler {
    /// The scheme.
    pub scheme: UniversalScheme,
}

impl UniversalCompiler {
    /// Wrap a scheme.
    pub fn new(scheme: UniversalScheme) -> UniversalCompiler {
        UniversalCompiler { scheme }
    }

    fn stems(&self, db: &Database) -> Result<BTreeMap<(String, String), String>> {
        Ok(self
            .scheme
            .label_columns(db)?
            .into_iter()
            .map(|c| ((c.label, c.kind), c.stem))
            .collect())
    }

    fn elem_stem(&self, db: &Database, test: &NodeTest) -> Result<String> {
        match test {
            NodeTest::Name(n) => self
                .stems(db)?
                .get(&(n.clone(), "elem".to_string()))
                .cloned()
                .ok_or(CoreError::EmptyResult),
            NodeTest::Wildcard => Err(CoreError::Translate(
                "wildcard steps must be path-expanded in the universal scheme".into(),
            )),
            NodeTest::Text => Err(CoreError::Translate("text() is not an element test".into())),
        }
    }

    fn node_expr(ctx: &NodeRef) -> Result<String> {
        match &ctx.meta {
            NodeMeta::Universal { stem } => Ok(format!("{}.t_{}", ctx.alias, sql_ident(stem))),
            _ => Err(CoreError::Translate(
                "universal compiler got a foreign node".into(),
            )),
        }
    }
}

impl StepCompiler for UniversalCompiler {
    fn scheme(&self) -> &'static str {
        "universal"
    }

    fn native_recursive(&self) -> bool {
        false
    }

    fn contract(&self) -> AccessContract {
        AccessContract {
            scheme: "universal",
            indexes: vec![IndexPat::Exact("univ_src")],
            value_indexes: vec![],
            descendant: DescendantAccess::PathExpansion,
        }
    }

    fn concrete_paths(&self, db: &Database, doc: Option<i64>) -> Result<Vec<String>> {
        Ok(self.scheme.path_summary().paths(db, doc)?)
    }

    fn root_with_test(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        doc: Option<i64>,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        if !db.catalog.has_table("univ") {
            return Err(CoreError::EmptyResult);
        }
        let stem = self.elem_stem(db, test)?;
        let alias = b.add_table("univ");
        b.cond(format!("{alias}.src IS NULL"));
        b.cond(format!("{alias}.t_{} IS NOT NULL", sql_ident(&stem)));
        if let Some(d) = doc {
            b.cond(format!("{alias}.doc = {d}"));
        }
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Universal { stem },
        })
    }

    fn child(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        test: &NodeTest,
    ) -> Result<NodeRef> {
        let stem = self.elem_stem(db, test)?;
        let parent = Self::node_expr(ctx)?;
        let alias = b.add_table("univ");
        b.cond(format!("{alias}.src = {parent}"));
        b.cond(format!("{alias}.doc = {}.doc", ctx.alias));
        b.cond(format!("{alias}.t_{} IS NOT NULL", sql_ident(&stem)));
        Ok(NodeRef {
            alias,
            meta: NodeMeta::Universal { stem },
        })
    }

    fn attr_value(
        &self,
        db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        name: &str,
        mode: JoinMode,
    ) -> Result<String> {
        let Some(stem) = self
            .stems(db)?
            .get(&(name.to_string(), "attr".to_string()))
            .cloned()
        else {
            return Ok("NULL".to_string());
        };
        let node = Self::node_expr(ctx)?;
        let on = vec![
            format!("__A.src = {node}"),
            format!("__A.doc = {}.doc", ctx.alias),
            format!("__A.a_{} IS NOT NULL", sql_ident(&stem)),
        ];
        let alias = add_join(b, "univ", mode, on);
        Ok(format!("{alias}.a_{}", sql_ident(&stem)))
    }

    fn text_value(
        &self,
        _db: &Database,
        b: &mut SqlBuilder,
        ctx: &NodeRef,
        mode: JoinMode,
    ) -> Result<String> {
        let node = Self::node_expr(ctx)?;
        let on = vec![
            format!("__A.src = {node}"),
            format!("__A.doc = {}.doc", ctx.alias),
            "__A.t_text IS NOT NULL".to_string(),
        ];
        let alias = add_join(b, "univ", mode, on);
        Ok(format!("{alias}.v_text"))
    }

    fn key_exprs(&self, ctx: &NodeRef) -> Result<Vec<String>> {
        Ok(vec![format!("{}.doc", ctx.alias), Self::node_expr(ctx)?])
    }

    fn existence_expr(&self, ctx: &NodeRef) -> Result<String> {
        Self::node_expr(ctx)
    }

    fn key_width(&self) -> usize {
        2
    }

    fn decode_key(&self, vals: &[Value]) -> Result<NodeKey> {
        decode_pre_key(vals)
    }

    fn order_expr(&self, ctx: &NodeRef) -> Option<String> {
        Self::node_expr(ctx).ok()
    }

    fn positional_exprs(&self, _ctx: &NodeRef) -> Option<(String, String)> {
        // Positional predicates would need per-label ordinal columns in the
        // predicate position; unsupported (as in the original proposal).
        None
    }
}
