//! `xmlrel-core` — storage and retrieval of XML data using relational
//! databases.
//!
//! The primary contribution of the reproduced work: store XML documents in
//! a relational database under one of six published mapping schemes,
//! translate an XPath/XQuery subset into SQL over the shredded tables, and
//! publish relational results back as XML.
//!
//! # Quickstart
//!
//! ```
//! use xmlrel_core::{Scheme, XmlStore};
//! use shredder::IntervalScheme;
//!
//! let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new())).open().unwrap();
//! store.load_str("bib", r#"<bib><book year="1994"><title>TCP/IP</title></book></bib>"#).unwrap();
//! let titles = store.request("/bib/book[@year > 1990]/title/text()").run().unwrap();
//! assert_eq!(titles.items, vec!["TCP/IP"]);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod contract;
pub mod error;
pub mod ledger;
pub mod publish;
pub mod serve;
pub mod sqlgen;
pub mod store;
pub mod update;

pub use compile::driver::{OutKind, Translated};
pub use compile::{NodeKey, StepCompiler};
pub use contract::{check_contract, AccessContract, DescendantAccess, IndexPat, QueryTraits};
pub use error::{CoreError, Result};
pub use ledger::{FingerprintStats, Ledger, LedgerConfig, SlowCapture, SlowTrigger};
pub use serve::{DrainReport, MonitorHandle, ServerBuilder};
pub use store::{
    Explain, HealthReport, PlanReport, QueryOutput, QueryRequest, Scheme, StoreBuilder, XmlStore,
};
