//! Publishing: turn node keys from translated-query results back into
//! serialized XML fragments.

use std::collections::HashMap;

use reldb::{row_int, row_text, Database, Value};
use shredder::reconstruct::rebuild;
use shredder::walk::{NodeRec, RecKind};
use shredder::{
    BinaryScheme, DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, UniversalScheme,
};
use xmlpar::serialize;

use crate::compile::NodeKey;
use crate::error::{CoreError, Result};
use crate::sqlgen::{sql_ident, sql_lit};

/// Publish one interval-scheme node (and subtree).
pub fn publish_interval(db: &Database, _s: &IntervalScheme, doc: i64, pre: i64) -> Result<String> {
    // Fetch the node's size, then its whole interval.
    let size = db
        .query_readonly(&format!(
            "SELECT size FROM inode WHERE doc = {doc} AND pre = {pre}"
        ))?
        .scalar()
        .and_then(Value::as_int)
        .ok_or_else(|| CoreError::Translate(format!("no inode ({doc},{pre})")))?;
    let mut recs = Vec::new();
    db.query_streaming(
        &format!(
            "SELECT pre, parent, ordinal, kind, name, value FROM inode \
             WHERE doc = {doc} AND pre >= {pre} AND pre <= {hi}",
            hi = pre + size
        ),
        |row| {
            recs.push(rec_from_row(&row, pre));
            Ok(())
        },
    )?;
    Ok(serialize::to_string(&rebuild(recs)?))
}

/// Publish one Dewey-scheme node.
pub fn publish_dewey(db: &Database, _s: &DeweyScheme, doc: i64, key: &str) -> Result<String> {
    // (dewey, parent, ordinal, kind, name, value)
    type RawRow = (
        String,
        Option<String>,
        i64,
        String,
        Option<String>,
        Option<String>,
    );
    let mut raw: Vec<RawRow> = Vec::new();
    db.query_streaming(
        &format!(
            "SELECT dewey, parent, ordinal, kind, name, value FROM dnode \
             WHERE doc = {doc} AND (dewey = {k} OR dewey LIKE {pat}) ORDER BY dewey",
            k = sql_lit(key),
            pat = sql_lit(&format!("{key}.%"))
        ),
        |row| {
            raw.push((
                row_text(&row, 0).unwrap_or("").to_string(),
                row_text(&row, 1).map(str::to_string),
                row_int(&row, 2).unwrap_or(0),
                row_text(&row, 3).unwrap_or("").to_string(),
                row_text(&row, 4).map(str::to_string),
                row_text(&row, 5).map(str::to_string),
            ));
            Ok(())
        },
    )?;
    if raw.is_empty() {
        return Err(CoreError::Translate(format!("no dnode ({doc},{key})")));
    }
    let rank: HashMap<&str, i64> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| (r.0.as_str(), i as i64))
        .collect();
    let recs: Vec<NodeRec> = raw
        .iter()
        .enumerate()
        .map(|(i, (dewey, parent, ordinal, kind, name, value))| NodeRec {
            pre: i as i64,
            parent: if dewey == key {
                None
            } else {
                parent.as_deref().and_then(|p| rank.get(p)).copied()
            },
            ordinal: *ordinal,
            size: 0,
            level: 0,
            kind: RecKind::from_tag(kind).unwrap_or(RecKind::Elem),
            name: name.clone(),
            value: value.clone(),
        })
        .collect();
    Ok(serialize::to_string(&rebuild(recs)?))
}

/// Publish one edge-scheme node via level-order expansion.
pub fn publish_edge(db: &Database, _s: &EdgeScheme, doc: i64, pre: i64) -> Result<String> {
    let mut recs: Vec<NodeRec> = Vec::new();
    // The node's own edge row.
    db.query_streaming(
        &format!(
            "SELECT target, source, ordinal, kind, label, value FROM edge \
             WHERE doc = {doc} AND target = {pre}"
        ),
        |row| {
            recs.push(edge_rec(&row, pre));
            Ok(())
        },
    )?;
    if recs.is_empty() {
        return Err(CoreError::Translate(format!("no edge node ({doc},{pre})")));
    }
    let mut frontier = vec![pre];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for chunk in frontier.chunks(200) {
            let list: Vec<String> = chunk.iter().map(i64::to_string).collect();
            db.query_streaming(
                &format!(
                    "SELECT target, source, ordinal, kind, label, value FROM edge \
                     WHERE doc = {doc} AND source IN ({})",
                    list.join(", ")
                ),
                |row| {
                    let rec = edge_rec(&row, pre);
                    if rec.kind == RecKind::Elem {
                        next.push(rec.pre);
                    }
                    recs.push(rec);
                    Ok(())
                },
            )?;
        }
        frontier = next;
    }
    Ok(serialize::to_string(&rebuild(recs)?))
}

fn edge_rec(row: &[Value], root_pre: i64) -> NodeRec {
    let target = row_int(row, 0).unwrap_or(0);
    NodeRec {
        pre: target,
        parent: if target == root_pre {
            None
        } else {
            row_int(row, 1)
        },
        ordinal: row_int(row, 2).unwrap_or(0),
        size: 0,
        level: 0,
        kind: RecKind::from_tag(row_text(row, 3).unwrap_or("")).unwrap_or(RecKind::Elem),
        name: row_text(row, 4).map(str::to_string),
        value: row_text(row, 5).map(str::to_string),
    }
}

fn rec_from_row(row: &[Value], root_pre: i64) -> NodeRec {
    let pre = row_int(row, 0).unwrap_or(0);
    NodeRec {
        pre,
        parent: if pre == root_pre {
            None
        } else {
            row_int(row, 1)
        },
        ordinal: row_int(row, 2).unwrap_or(0),
        size: 0,
        level: 0,
        kind: RecKind::from_tag(row_text(row, 3).unwrap_or("")).unwrap_or(RecKind::Elem),
        name: row_text(row, 4).map(str::to_string),
        value: row_text(row, 5).map(str::to_string),
    }
}

/// Publish one binary-scheme node via level-order expansion across the
/// label tables.
pub fn publish_binary(db: &Database, s: &BinaryScheme, doc: i64, pre: i64) -> Result<String> {
    let registry = s.path_summary(); // reuse prefix only for clarity
    let _ = registry;
    let labels = s.all_element_tables(db).map_err(CoreError::from)?;
    let attr_tables: Vec<(String, String)> = {
        // label registry: attribute tables.
        let mut v = Vec::new();
        db.query_streaming(
            "SELECT label, tbl FROM bin_labels WHERE kind = 'attr'",
            |row| {
                v.push((
                    row_text(&row, 0).unwrap_or("").to_string(),
                    row_text(&row, 1).unwrap_or("").to_string(),
                ));
                Ok(())
            },
        )?;
        v
    };
    let mut recs: Vec<NodeRec> = Vec::new();
    // Find the root node's row (label unknown: try each table).
    let mut root_label = None;
    for (label, tbl) in &labels {
        let q = db.query_readonly(&format!(
            "SELECT source, ordinal FROM {} WHERE doc = {doc} AND pre = {pre}",
            sql_ident(tbl)
        ))?;
        if let Some(row) = q.rows.first() {
            recs.push(NodeRec {
                pre,
                parent: None,
                ordinal: row_int(row, 1).unwrap_or(0),
                size: 0,
                level: 0,
                kind: RecKind::Elem,
                name: Some(label.clone()),
                value: None,
            });
            root_label = Some(label.clone());
            break;
        }
    }
    if root_label.is_none() {
        return Err(CoreError::Translate(format!(
            "no binary node ({doc},{pre})"
        )));
    }
    let mut frontier = vec![pre];
    while !frontier.is_empty() {
        let list: Vec<String> = frontier.iter().map(i64::to_string).collect();
        let in_list = list.join(", ");
        let mut next = Vec::new();
        for (label, tbl) in &labels {
            db.query_streaming(
                &format!(
                    "SELECT pre, source, ordinal FROM {} \
                     WHERE doc = {doc} AND source IN ({in_list})",
                    sql_ident(tbl)
                ),
                |row| {
                    let p = row_int(&row, 0).unwrap_or(0);
                    next.push(p);
                    recs.push(NodeRec {
                        pre: p,
                        parent: row_int(&row, 1),
                        ordinal: row_int(&row, 2).unwrap_or(0),
                        size: 0,
                        level: 0,
                        kind: RecKind::Elem,
                        name: Some(label.clone()),
                        value: None,
                    });
                    Ok(())
                },
            )?;
        }
        for (label, tbl) in &attr_tables {
            db.query_streaming(
                &format!(
                    "SELECT pre, source, ordinal, value FROM {} \
                     WHERE doc = {doc} AND source IN ({in_list})",
                    sql_ident(tbl)
                ),
                |row| {
                    recs.push(NodeRec {
                        pre: row_int(&row, 0).unwrap_or(0),
                        parent: row_int(&row, 1),
                        ordinal: row_int(&row, 2).unwrap_or(0),
                        size: 0,
                        level: 0,
                        kind: RecKind::Attr,
                        name: Some(label.clone()),
                        value: row_text(&row, 3).map(str::to_string),
                    });
                    Ok(())
                },
            )?;
        }
        db.query_streaming(
            &format!(
                "SELECT pre, source, ordinal, value FROM bin_text \
                 WHERE doc = {doc} AND source IN ({in_list})"
            ),
            |row| {
                recs.push(NodeRec {
                    pre: row_int(&row, 0).unwrap_or(0),
                    parent: row_int(&row, 1),
                    ordinal: row_int(&row, 2).unwrap_or(0),
                    size: 0,
                    level: 0,
                    kind: RecKind::Text,
                    name: None,
                    value: row_text(&row, 3).map(str::to_string),
                });
                Ok(())
            },
        )?;
        frontier = next;
    }
    Ok(serialize::to_string(&rebuild(recs)?))
}

/// Publish one universal-scheme node: rebuild the document once and index
/// by pre (the scheme has no per-subtree access path — a documented cost).
pub fn publish_universal(db: &Database, s: &UniversalScheme, doc: i64, pre: i64) -> Result<String> {
    use shredder::MappingScheme;
    let full = s.reconstruct(db, doc)?;
    // The stored node ids are the original document's pre-order numbers
    // (attributes counted, see `walk::flatten`), and reconstruction is
    // exact, so renumbering the rebuilt DOM with the same traversal finds
    // the node.
    for (node_id, node_pre) in collect_pre_order(&full) {
        if node_pre == pre {
            return Ok(serialize::node_to_string(&full, node_id));
        }
    }
    Err(CoreError::Translate(format!(
        "no universal node ({doc},{pre})"
    )))
}

/// Pair a document's element/text nodes with pre-order numbers using the
/// same numbering as `walk::flatten` (attributes consume numbers too).
fn collect_pre_order(doc: &xmlpar::Document) -> Vec<(xmlpar::NodeId, i64)> {
    let mut out = Vec::new();
    let mut stack = vec![doc.root()];
    let mut counter: i64 = 0;
    while let Some(id) = stack.pop() {
        match &doc.node(id).kind {
            xmlpar::NodeKind::Element {
                attributes,
                children,
                ..
            } => {
                out.push((id, counter));
                counter += 1 + attributes.len() as i64;
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
            xmlpar::NodeKind::Text(_) => {
                out.push((id, counter));
                counter += 1;
            }
            _ => {}
        }
    }
    out
}

/// Publish one inline-scheme node.
pub fn publish_inline(
    db: &Database,
    s: &InlineScheme,
    doc: i64,
    anchor: &str,
    id: i64,
    path: &[String],
) -> Result<String> {
    let fragment = s.reconstruct_node(db, doc, anchor, id, path)?;
    Ok(serialize::to_string(&fragment))
}

/// Dispatch on a decoded key. `publish_pre` is the scheme-appropriate
/// (doc, pre) publisher.
pub fn publish_key(
    db: &Database,
    key: &NodeKey,
    pre_publisher: &dyn Fn(&Database, i64, i64) -> Result<String>,
    dewey: Option<&DeweyScheme>,
    inline: Option<&InlineScheme>,
) -> Result<String> {
    match key {
        NodeKey::Pre { doc, pre } => pre_publisher(db, *doc, *pre),
        NodeKey::Dewey { doc, key } => {
            let s = dewey
                .ok_or_else(|| CoreError::Translate("dewey key without a dewey scheme".into()))?;
            publish_dewey(db, s, *doc, key)
        }
        NodeKey::Inline {
            doc,
            anchor,
            id,
            path,
        } => {
            let s = inline.ok_or_else(|| {
                CoreError::Translate("inline key without an inline scheme".into())
            })?;
            publish_inline(db, s, *doc, anchor, *id, path)
        }
    }
}
