//! Per-mapping-scheme access-path contracts.
//!
//! Each published mapping scheme makes a performance promise the paper's
//! experiments depend on: edge-style schemes resolve child steps with
//! `(parent, tag)` index lookups (never cartesian products), the interval
//! scheme resolves `//` with a single pre/post containment window (Grust
//! 2002), and Dewey resolves descendants via prefix containment on the
//! order key (Tatarinov et al. 2002). Those promises were previously only
//! *hoped for*; this module states them as data
//! ([`AccessContract`], declared by every [`StepCompiler`]) and checks
//! them against the physical plan the optimizer actually chose
//! ([`check_contract`], surfaced as `QueryRequest::report`).
//!
//! The checker is deliberately structural: it never re-runs the optimizer,
//! it only inspects the plan — so any regression in index selection, join
//! ordering, or the structural-join rewrite shows up as a contract
//! violation without a single benchmark.
//!
//! [`StepCompiler`]: crate::compile::StepCompiler

use reldb::plan::{cost, Diagnostic, PhysicalPlan, ScalarExpr, Severity};
use reldb::Database;
use xqir::ast::{Axis, Clause, Condition, Literal, PathExpr, Predicate, Query};

/// Pattern matching an index name a scheme is allowed (and expected) to
/// use. Label-partitioned schemes create one index family per element
/// label, so suffix patterns cover them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPat {
    /// The exact index name.
    Exact(&'static str),
    /// Any index whose name ends with the suffix (per-label families).
    Suffix(&'static str),
}

impl IndexPat {
    /// Does `name` match this pattern?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            IndexPat::Exact(n) => name == *n,
            IndexPat::Suffix(s) => name.ends_with(s),
        }
    }
}

/// How a scheme promises to resolve descendant (`//`) steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescendantAccess {
    /// One pre/post containment window per step — the plan must contain an
    /// interval (structural) join (Grust 2002).
    IntervalContainment,
    /// Prefix containment on the Dewey order key, realized as a `LIKE`
    /// residual (Tatarinov et al. 2002); a lexicographic range scan is the
    /// intended upgrade path.
    DeweyPrefix,
    /// No native encoding: the driver expands `//` against the stored path
    /// summary into a UNION ALL of concrete child chains, each of which
    /// must obey the child-step contract.
    PathExpansion,
}

/// The machine-checkable promise one mapping scheme makes about the plans
/// its compiled queries produce.
#[derive(Debug, Clone)]
pub struct AccessContract {
    /// Scheme name (matches `StepCompiler::scheme`).
    pub scheme: &'static str,
    /// Every index the scheme's shredder creates. Any index access in a
    /// compiled plan must match one of these.
    pub indexes: Vec<IndexPat>,
    /// Indexes over node *values*; when non-empty, a string-equality value
    /// predicate must never force a full scan of a value-indexed table —
    /// it is answered either by a value-index probe or as a residual of
    /// some other index access (the E5 promise). Empty means this instance
    /// has no value index and the rule is waived.
    pub value_indexes: Vec<IndexPat>,
    /// How `//` steps must be realized.
    pub descendant: DescendantAccess,
}

/// Shape facts about a query, derived from its AST, that select which
/// contract rules apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryTraits {
    /// The query has a descendant step whose context is a bound node (not
    /// the document root) — the case that needs a structural access path.
    pub nonleading_descendant: bool,
    /// The query compares an attribute or text value to a string literal
    /// with `=` — the case a value index can answer.
    pub string_eq_value: bool,
}

impl QueryTraits {
    /// Derive traits from a parsed query.
    pub fn of(query: &Query) -> QueryTraits {
        let mut t = QueryTraits::default();
        match query {
            Query::Path(p) => t.absorb_path(p, false),
            Query::Flwor(f) => {
                for c in &f.clauses {
                    let relative = match c {
                        Clause::For { path, .. } | Clause::Let { path, .. } => path.start.is_some(),
                    };
                    t.absorb_path(c.path(), relative);
                }
                if let Some(w) = &f.where_ {
                    t.absorb_condition(w);
                }
                for (p, _) in &f.order_by {
                    t.absorb_path(p, true);
                }
            }
        }
        t
    }

    /// Fold in one path. `relative` paths start at an already-bound node,
    /// so even their first descendant step is non-leading.
    fn absorb_path(&mut self, p: &PathExpr, relative: bool) {
        let relative = relative || p.start.is_some();
        for (i, s) in p.steps.iter().enumerate() {
            if s.axis == Axis::Descendant && (relative || i > 0) {
                self.nonleading_descendant = true;
            }
            for pred in &s.predicates {
                self.absorb_predicate(pred);
            }
        }
    }

    fn absorb_predicate(&mut self, pred: &Predicate) {
        match pred {
            Predicate::Compare { path, op, value } => {
                self.absorb_path(path, true);
                if *op == xqir::ast::CmpOp::Eq && matches!(value, Literal::Str(_)) {
                    self.string_eq_value = true;
                }
            }
            Predicate::Exists(p) | Predicate::Contains { path: p, .. } => self.absorb_path(p, true),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                self.absorb_predicate(a);
                self.absorb_predicate(b);
            }
            Predicate::Not(p) => self.absorb_predicate(p),
            Predicate::Position(_) => {}
        }
    }

    fn absorb_condition(&mut self, cond: &Condition) {
        match cond {
            Condition::Compare { path, op, value } => {
                self.absorb_path(path, true);
                if *op == xqir::ast::CmpOp::Eq && matches!(value, Literal::Str(_)) {
                    self.string_eq_value = true;
                }
            }
            Condition::Exists(p) | Condition::Contains { path: p, .. } => self.absorb_path(p, true),
            Condition::Join { left, right, .. } => {
                self.absorb_path(left, true);
                self.absorb_path(right, true);
            }
            Condition::And(a, b) | Condition::Or(a, b) => {
                self.absorb_condition(a);
                self.absorb_condition(b);
            }
            Condition::Not(c) => self.absorb_condition(c),
        }
    }
}

/// Check a physical plan against a scheme's contract. Returns one
/// diagnostic per violation; an empty result means the optimizer delivered
/// every access path the scheme promises.
pub fn check_contract(
    contract: &AccessContract,
    traits: &QueryTraits,
    db: &Database,
    plan: &PhysicalPlan,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut shape = PlanShape::default();
    collect(db, plan, &mut Vec::new(), contract, &mut shape, &mut out);

    if traits.nonleading_descendant {
        match contract.descendant {
            DescendantAccess::IntervalContainment if !shape.has_interval_join => {
                out.push(violation(
                    "contract-descendant",
                    "plan",
                    format!(
                        "scheme {:?} promises descendant steps via a pre/post \
                         containment window, but the plan contains no interval join",
                        contract.scheme
                    ),
                ));
            }
            DescendantAccess::DeweyPrefix if !shape.has_prefix_like => {
                out.push(violation(
                    "contract-descendant",
                    "plan",
                    format!(
                        "scheme {:?} promises descendant steps via prefix \
                         containment on the order key, but the plan contains no \
                         LIKE condition",
                        contract.scheme
                    ),
                ));
            }
            _ => {}
        }
    }

    if traits.string_eq_value && !contract.value_indexes.is_empty() {
        let probed = shape
            .index_accesses
            .iter()
            .any(|ix| contract.value_indexes.iter().any(|p| p.matches(ix)));
        if !probed {
            // No value-index probe: acceptable only as long as no
            // value-indexed table is read by a full scan — the predicate
            // must ride some index access (per-label partitioning, a
            // structural descent) instead of forcing a sequential read.
            for table in &shape.seq_scans {
                let has_value_index = db
                    .catalog
                    .table(table)
                    .map(|t| {
                        t.indexes
                            .iter()
                            .any(|ix| contract.value_indexes.iter().any(|p| p.matches(&ix.name)))
                    })
                    .unwrap_or(false);
                if has_value_index {
                    out.push(violation(
                        "contract-value-index",
                        "plan",
                        format!(
                            "scheme {:?} carries a value index, but the plan \
                             answers a string-equality predicate by fully \
                             scanning {table:?} (indexes used: {:?})",
                            contract.scheme, shape.index_accesses
                        ),
                    ));
                }
            }
        }
    }

    out
}

fn violation(rule: &'static str, node: &str, message: String) -> Diagnostic {
    Diagnostic {
        severity: Severity::Error,
        rule,
        node: node.to_string(),
        message,
    }
}

/// What the structural walk saw.
#[derive(Debug, Default)]
struct PlanShape {
    has_interval_join: bool,
    has_prefix_like: bool,
    index_accesses: Vec<String>,
    seq_scans: Vec<String>,
}

fn collect(
    db: &Database,
    plan: &PhysicalPlan,
    path: &mut Vec<&'static str>,
    contract: &AccessContract,
    shape: &mut PlanShape,
    out: &mut Vec<Diagnostic>,
) {
    let name: &'static str = match plan {
        PhysicalPlan::SeqScan { .. } => "SeqScan",
        PhysicalPlan::IndexScan { .. } => "IndexScan",
        PhysicalPlan::Filter { .. } => "Filter",
        PhysicalPlan::Project { .. } => "Project",
        PhysicalPlan::HashJoin { .. } => "HashJoin",
        PhysicalPlan::IndexNestedLoopJoin { .. } => "IndexNestedLoopJoin",
        PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin",
        PhysicalPlan::IntervalJoin { .. } => "IntervalJoin",
        PhysicalPlan::Sort { .. } => "Sort",
        PhysicalPlan::HashAggregate { .. } => "HashAggregate",
        PhysicalPlan::Limit { .. } => "Limit",
        PhysicalPlan::Distinct { .. } => "Distinct",
        PhysicalPlan::UnionAll { .. } => "UnionAll",
        PhysicalPlan::Values { .. } => "Values",
    };
    path.push(name);

    match plan {
        PhysicalPlan::SeqScan { table } => shape.seq_scans.push(table.clone()),
        PhysicalPlan::IndexScan {
            index, residual, ..
        } => {
            note_index(index, path, contract, shape, out);
            note_like(residual.as_ref(), shape);
        }
        PhysicalPlan::IndexNestedLoopJoin {
            index,
            right_filter,
            residual,
            ..
        } => {
            note_index(index, path, contract, shape, out);
            note_like(right_filter.as_ref(), shape);
            note_like(residual.as_ref(), shape);
        }
        PhysicalPlan::IntervalJoin { residual, .. } => {
            shape.has_interval_join = true;
            note_like(residual.as_ref(), shape);
        }
        PhysicalPlan::HashJoin { residual, .. } => note_like(residual.as_ref(), shape),
        PhysicalPlan::Filter { predicate, .. } => note_like(Some(predicate), shape),
        PhysicalPlan::NestedLoopJoin {
            left, right, on, ..
        } => {
            note_like(on.as_ref(), shape);
            match on {
                Some(cond) => {
                    // A conditioned nested loop is only within contract for
                    // the Dewey prefix realization.
                    let dewey_ok =
                        contract.descendant == DescendantAccess::DeweyPrefix && contains_like(cond);
                    if !dewey_ok {
                        out.push(violation(
                            "contract-nl-join",
                            &path.join(" > "),
                            format!(
                                "scheme {:?} compiled a conditioned nested-loop \
                                 join; child chains must use index, hash, or \
                                 interval joins",
                                contract.scheme
                            ),
                        ));
                    }
                }
                None => {
                    // Cross joins are within contract only when one side is
                    // a single row (constant driver).
                    let l = cost::cost_physical(&db.catalog, left).rows;
                    let r = cost::cost_physical(&db.catalog, right).rows;
                    if l > 1.0 && r > 1.0 {
                        out.push(violation(
                            "contract-nl-join",
                            &path.join(" > "),
                            format!(
                                "scheme {:?} compiled a cartesian product \
                                 (~{l:.0} × ~{r:.0} rows)",
                                contract.scheme
                            ),
                        ));
                    }
                }
            }
        }
        _ => {}
    }

    match plan {
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => collect(db, input, path, contract, shape, out),
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::IntervalJoin { left, right, .. } => {
            collect(db, left, path, contract, shape, out);
            collect(db, right, path, contract, shape, out);
        }
        PhysicalPlan::IndexNestedLoopJoin { left, .. } => {
            collect(db, left, path, contract, shape, out)
        }
        PhysicalPlan::UnionAll { inputs } => {
            for i in inputs {
                collect(db, i, path, contract, shape, out);
            }
        }
        _ => {}
    }
    path.pop();
}

fn note_index(
    index: &str,
    path: &[&'static str],
    contract: &AccessContract,
    shape: &mut PlanShape,
    out: &mut Vec<Diagnostic>,
) {
    shape.index_accesses.push(index.to_string());
    if !contract.indexes.iter().any(|p| p.matches(index)) {
        out.push(violation(
            "contract-probe",
            &path.join(" > "),
            format!(
                "index {index:?} is not part of scheme {:?}'s declared access paths",
                contract.scheme
            ),
        ));
    }
}

fn note_like(expr: Option<&ScalarExpr>, shape: &mut PlanShape) {
    if let Some(e) = expr {
        if contains_like(e) {
            shape.has_prefix_like = true;
        }
    }
}

/// Does the expression tree contain a LIKE?
fn contains_like(e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::Like { .. } => true,
        ScalarExpr::Binary { left, right, .. } => contains_like(left) || contains_like(right),
        ScalarExpr::Unary { expr, .. } => contains_like(expr),
        ScalarExpr::Call { args, .. } => args.iter().any(contains_like),
        ScalarExpr::IsNull { expr, .. } => contains_like(expr),
        ScalarExpr::Between {
            expr, low, high, ..
        } => contains_like(expr) || contains_like(low) || contains_like(high),
        ScalarExpr::InList { expr, list, .. } => {
            contains_like(expr) || list.iter().any(contains_like)
        }
        ScalarExpr::Column(_) | ScalarExpr::Literal(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqir::parse_query;

    fn traits(q: &str) -> QueryTraits {
        QueryTraits::of(&parse_query(q).expect("parses"))
    }

    #[test]
    fn leading_descendant_is_not_structural() {
        assert!(!traits("//item/name").nonleading_descendant);
        assert!(!traits("//author").nonleading_descendant);
    }

    #[test]
    fn nonleading_descendants_detected() {
        assert!(traits("//open_auction//increase").nonleading_descendant);
        assert!(traits("/site/people//age").nonleading_descendant);
    }

    #[test]
    fn string_eq_detected() {
        assert!(traits("/site/people/person[@id = 'person7']/name").string_eq_value);
        assert!(traits("/dblp/article[year = '2000']/title").string_eq_value);
        // Numeric comparisons are not index-sargable in this engine.
        assert!(!traits("/site/regions/region/item[price > 90]/name").string_eq_value);
    }

    #[test]
    fn flwor_traits() {
        let t = traits(
            "for $p in /site/people/person where $p/profile/age > 60 \
             order by $p/name return $p/name",
        );
        assert!(!t.string_eq_value);
        assert!(!t.nonleading_descendant);
    }

    #[test]
    fn index_patterns_match() {
        assert!(IndexPat::Exact("edge_value").matches("edge_value"));
        assert!(!IndexPat::Exact("edge_value").matches("edge_values"));
        assert!(IndexPat::Suffix("_val").matches("b_booktitle_val"));
        assert!(!IndexPat::Suffix("_val").matches("b_booktitle_src"));
    }
}
