//! Serving a store over HTTP: the [`ServerBuilder`] fluent surface.
//!
//! [`XmlStore::serve`] configures and launches the monitoring/query
//! endpoint in one chain:
//!
//! ```no_run
//! use xmlrel_core::{Scheme, XmlStore};
//! use shredder::IntervalScheme;
//!
//! let store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
//!     .open()
//!     .unwrap();
//! let handle = store
//!     .serve()
//!     .addr("127.0.0.1:0")
//!     .max_inflight(8)
//!     .drain_ms(5000)
//!     .start()
//!     .unwrap();
//! println!("serving on http://{}", handle.addr());
//! let report = handle.stop();
//! assert!(report.clean());
//! ```
//!
//! The builder wires every endpoint straight to cloned store handles —
//! [`XmlStore`] is `Clone + Send + Sync`, so each of the server's
//! per-connection worker threads answers `POST /query` directly against
//! its own handle, with no relay thread in between:
//!
//! - `GET /healthz` computes [`XmlStore::health`] on demand;
//! - `GET /slow` renders the store ledger's forensic captures;
//! - `GET /spans` exports an attached [`TraceSink`], when one is given;
//! - `POST /query` runs the body as a query **pinned to a snapshot**
//!   ([`QueryRequest::snapshot`](crate::QueryRequest::snapshot)): every
//!   served request executes against one consistent commit epoch, so
//!   concurrent writers never expose it to a half-committed document.
//!
//! Admission control, slowloris defence, and the two-wave graceful drain
//! (finish → cancel stragglers) come from the underlying
//! [`obs::serve`](xmlrel_obs::serve) substrate; [`MonitorHandle::stop`]
//! reports how many in-flight requests drained cleanly versus needing a
//! forced cancellation.

use xmlrel_obs::serve::{serve_with, Endpoints, Health, QueryCall, QueryReply, ServeConfig};
use xmlrel_obs::trace::TraceSink;
use xmlrel_obs::PhaseTimings;

pub use xmlrel_obs::serve::{DrainReport, MonitorHandle};

use crate::error::CoreError;
use crate::store::XmlStore;

/// Fluent configuration for serving a store over HTTP; built by
/// [`XmlStore::serve`], launched by [`start`](ServerBuilder::start).
///
/// Defaults: bind `127.0.0.1:0` (ephemeral port), the substrate's
/// admission/timeout knobs ([`ServeConfig::default`]), no server-side
/// query timeout, no trace sink.
pub struct ServerBuilder {
    store: XmlStore,
    addr: String,
    config: ServeConfig,
    timeout_ms: Option<u64>,
    sink: Option<TraceSink>,
}

impl ServerBuilder {
    pub(crate) fn new(store: XmlStore) -> ServerBuilder {
        ServerBuilder {
            store,
            addr: "127.0.0.1:0".into(),
            config: ServeConfig::default(),
            timeout_ms: None,
            sink: None,
        }
    }

    /// The address to bind, e.g. `"127.0.0.1:8080"`. Port `0` picks an
    /// ephemeral port; read the real one from [`MonitorHandle::addr`].
    pub fn addr(mut self, addr: impl Into<String>) -> ServerBuilder {
        self.addr = addr.into();
        self
    }

    /// Maximum concurrently-served requests; excess connections are shed
    /// with `503` + `Retry-After` instead of queueing.
    pub fn max_inflight(mut self, n: usize) -> ServerBuilder {
        self.config.max_inflight = n;
        self
    }

    /// How long a graceful stop waits for in-flight requests before
    /// cancelling stragglers (and again for the cancelled to unwind).
    pub fn drain_ms(mut self, ms: u64) -> ServerBuilder {
        self.config.drain_deadline = std::time::Duration::from_millis(ms);
        self
    }

    /// Default per-query wall-clock budget, used when a request does not
    /// set its own `X-Timeout-Ms` header.
    pub fn timeout_ms(mut self, ms: u64) -> ServerBuilder {
        self.timeout_ms = Some(ms);
        self
    }

    /// Serve `/spans` from this trace ring.
    pub fn trace(mut self, sink: &TraceSink) -> ServerBuilder {
        self.sink = Some(sink.clone());
        self
    }

    /// Replace the substrate's admission/timeout knobs wholesale. The
    /// narrower setters above cover the common cases.
    pub fn config(mut self, config: ServeConfig) -> ServerBuilder {
        self.config = config;
        self
    }

    /// Bind and serve on a background accept thread. The handle stops
    /// the server when dropped; call [`MonitorHandle::stop`] to get the
    /// drain report.
    pub fn start(self) -> std::io::Result<MonitorHandle> {
        let ServerBuilder {
            store,
            addr,
            config,
            timeout_ms,
            sink,
        } = self;
        let health_store = store.clone();
        let slow_ledger = store.ledger();
        let mut endpoints = Endpoints::new()
            .healthz(move || {
                let report = health_store.health();
                Health {
                    ok: report.ok,
                    body: report.render(),
                }
            })
            .slow(move || slow_ledger.slow_json())
            .query({
                let query_sink = sink.clone();
                move |call| answer_query(&store, &call, timeout_ms, query_sink.as_ref())
            });
        if let Some(sink) = &sink {
            endpoints = endpoints.spans(sink);
        }
        serve_with(&addr, endpoints, config)
    }
}

/// Answer one `POST /query` call on the connection's worker thread: the
/// query runs pinned to a snapshot, tagged with the serve layer's
/// request ID (so its span, ledger row, and any slow capture all carry
/// it), and the per-request deadline (header, falling back to the server
/// default) and the server's shutdown token both flow into the execution
/// limits.
fn answer_query(
    store: &XmlStore,
    call: &QueryCall,
    default_timeout_ms: Option<u64>,
    sink: Option<&TraceSink>,
) -> QueryReply {
    let mut req = store
        .request(&call.query)
        .snapshot()
        .cancel(&call.cancel)
        .request_id(&call.request_id);
    if let Some(sink) = sink {
        req = req.trace(sink);
    }
    if let Some(ms) = call.timeout_ms.or(default_timeout_ms) {
        req = req.timeout_ms(ms);
    }
    match req.run() {
        Ok(out) => {
            let mut body = String::new();
            for item in &out.items {
                body.push_str(item);
                body.push('\n');
            }
            QueryReply {
                status: 200,
                content_type: "text/plain".into(),
                body,
                phases: out.phases,
            }
        }
        Err(e) => {
            let status = match &e {
                CoreError::Db(reldb::DbError::DeadlineExceeded(_)) => 408,
                CoreError::Db(reldb::DbError::Cancelled(_)) => 503,
                _ => 400,
            };
            QueryReply {
                status,
                content_type: "text/plain".into(),
                body: format!("error: {e}\n"),
                phases: PhaseTimings::default(),
            }
        }
    }
}
