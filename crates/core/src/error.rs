//! Error type for the storage-and-retrieval layer.

use std::fmt;

use reldb::DbError;
use shredder::ShredError;
use xmlpar::XmlError;
use xqir::QueryError;

/// Anything that can go wrong storing, translating, or retrieving.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// XML parse error.
    Xml(XmlError),
    /// Database error.
    Db(DbError),
    /// Shredding/mapping error.
    Shred(ShredError),
    /// Query parse error.
    Query(QueryError),
    /// The query uses a feature this scheme's translator does not support.
    Translate(String),
    /// A named document does not exist.
    NoSuchDocument(String),
    /// Internal marker: the query provably selects nothing (e.g. a label
    /// that never occurs). Callers translate this into an empty result.
    EmptyResult,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Xml(e) => write!(f, "{e}"),
            CoreError::Db(e) => write!(f, "{e}"),
            CoreError::Shred(e) => write!(f, "{e}"),
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Translate(m) => write!(f, "translation error: {m}"),
            CoreError::NoSuchDocument(n) => write!(f, "no such document {n:?}"),
            CoreError::EmptyResult => write!(f, "query selects nothing"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<XmlError> for CoreError {
    fn from(e: XmlError) -> CoreError {
        CoreError::Xml(e)
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> CoreError {
        CoreError::Db(e)
    }
}

impl From<ShredError> for CoreError {
    fn from(e: ShredError) -> CoreError {
        CoreError::Shred(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> CoreError {
        CoreError::Query(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
