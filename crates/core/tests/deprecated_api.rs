//! The deprecated `XmlStore` constructors and query methods stay behaviorally
//! identical to the `StoreBuilder` / `QueryRequest` pipeline for one release.
//! This is the only place in the repo still allowed to call them.

#![allow(deprecated)]

use shredder::{EdgeScheme, IntervalScheme};
use xmlrel_core::{Scheme, XmlStore};

const XML: &str = r#"<r><a x="1">one</a><a x="2">two</a><b>bee</b></r>"#;

fn seeded(scheme: Scheme) -> XmlStore {
    let mut s = XmlStore::new(scheme).unwrap();
    s.load_str("d", XML).unwrap();
    s
}

#[test]
fn shim_query_matches_request_run() {
    let mut s = seeded(Scheme::Interval(IntervalScheme::new()));
    let old = s.query("/r/a/text()").unwrap();
    let new = s.request("/r/a/text()").run().unwrap();
    assert_eq!(old.items, new.items);
    assert_eq!(old.rows, new.rows);
    assert_eq!(old.sql, new.sql);
}

#[test]
fn shim_query_doc_and_count() {
    let mut s = seeded(Scheme::Edge(EdgeScheme::new()));
    assert_eq!(
        s.query_doc("d", "/r/b/text()").unwrap().items,
        s.request("/r/b/text()").doc("d").run().unwrap().items
    );
    assert_eq!(
        s.query_count("/r/a").unwrap(),
        s.request("/r/a").count().unwrap()
    );
}

#[test]
fn shim_translate_and_run() {
    let mut s = seeded(Scheme::Interval(IntervalScheme::new()));
    let t = s.translate("/r/a[@x = '2']/text()").unwrap();
    assert_eq!(
        t.sql,
        s.request("/r/a[@x = '2']/text()").translated().unwrap().sql
    );
    let out = s.run_translated(&t).unwrap();
    assert_eq!(out.items, vec!["two"]);
    let rows = s.run_rows(&t).unwrap();
    assert_eq!(rows.len(), out.rows.len());
    let t2 = s.translate_for("/r/a/text()", "d").unwrap();
    assert!(!t2.sql.is_empty());
}

#[test]
fn shim_verify_plan_matches_report() {
    let s = seeded(Scheme::Interval(IntervalScheme::new()));
    let old = s.verify_plan("/r/a[@x = '1']").unwrap();
    let new = s.request("/r/a[@x = '1']").report().unwrap();
    assert_eq!(old.sql, new.sql);
    assert_eq!(old.explain, new.explain);
    let scoped = s.verify_plan_for("/r/a[@x = '1']", "d").unwrap();
    assert!(!scoped.explain.is_empty());
}

#[test]
fn shim_constructors_still_open() {
    let dir = std::env::temp_dir().join(format!("xmlrel-depr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut s = XmlStore::open(Scheme::Interval(IntervalScheme::new()), &dir).unwrap();
        s.load_str("d", XML).unwrap();
        s.persist().unwrap();
    }
    {
        let s = XmlStore::open_with_backend(
            Scheme::Interval(IntervalScheme::new()),
            Box::new(reldb::FileBackend::open(&dir).unwrap()),
        )
        .unwrap();
        assert_eq!(s.documents().unwrap().len(), 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
