//! Golden static-validation test: shred one sample document under all six
//! mapping schemes, translate a battery of queries with each scheme's
//! compiler, and require that every emitted SQL string re-parses and runs
//! the plan validator **without a single diagnostic**. This pins the
//! contract that the six compile backends only ever emit SQL that is
//! well-typed against the catalog their own shredder created.

use shredder::{
    BinaryScheme, DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, UniversalScheme,
};
use xmlrel_core::{Scheme, XmlStore};

const BIB_DTD: &str = r#"
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, price?)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"#;

const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title><author><lastname>Stevens</lastname></author><price>65</price></book><book year="2000"><title>Data on the Web</title><author><firstname>Serge</firstname><lastname>Abiteboul</lastname></author><author><lastname>Buneman</lastname></author><price>39</price></book><book year="1999"><title>Economics</title><author><lastname>Keynes</lastname></author></book></bib>"#;

/// Queries spanning every translator feature: child/descendant steps,
/// attribute axes, predicates (value, positional, existence), text(),
/// FLWOR with sorting, and element construction.
const QUERIES: &[&str] = &[
    "/bib/book/title/text()",
    "/bib/book/author/lastname/text()",
    "//lastname/text()",
    "/bib/book[@year > 1995]/title/text()",
    "/bib/book[price]/price/text()",
    "/bib/book[author/firstname]/title/text()",
    "/bib/book[1]/title/text()",
    "/bib/book/@year",
    "for $b in /bib/book return $b/title/text()",
    "for $b in /bib/book where $b/@year > 1995 return $b/title/text()",
    "for $b in /bib/book order by $b/title return $b/title/text()",
    "for $b in /bib/book return <entry>{$b/title/text()}</entry>",
];

fn stores() -> Vec<XmlStore> {
    let schemes = vec![
        Scheme::Edge(EdgeScheme::new()),
        Scheme::Binary(BinaryScheme::new()),
        Scheme::Universal(UniversalScheme::new()),
        Scheme::Interval(IntervalScheme::new()),
        Scheme::Dewey(DeweyScheme::new()),
        Scheme::Inline(InlineScheme::from_dtd_text(BIB_DTD).unwrap()),
    ];
    schemes
        .into_iter()
        .map(|s| {
            let mut store = XmlStore::builder(s).open().unwrap();
            store.load_str("bib", BIB).unwrap();
            store
        })
        .collect()
}

#[test]
fn every_scheme_compiles_every_query_to_validator_clean_sql() {
    for store in stores() {
        let name = store.scheme().name();
        let mut validated = 0usize;
        for q in QUERIES {
            // A scheme may declare a feature unsupported (e.g. positional
            // predicates under the universal table); that is a typed
            // refusal, not a compilation bug.
            let t = match store.request(q).translated() {
                Err(xmlrel_core::CoreError::Translate(m)) if m.contains("unsupported") => continue,
                other => other.unwrap_or_else(|e| panic!("{name}: {q}: translation failed: {e}")),
            };
            let diags = store.verify_sql(&t.sql).unwrap_or_else(|e| {
                panic!(
                    "{name}: {q}: emitted SQL failed to re-parse: {e}\nsql: {}",
                    t.sql
                )
            });
            assert!(
                diags.is_empty(),
                "{name}: {q}: validator diagnostics on compiled SQL:\n{}\nsql: {}",
                diags
                    .iter()
                    .map(|d| format!("  {d}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
                t.sql
            );
            validated += 1;
        }
        assert!(
            validated >= QUERIES.len() - 1,
            "scheme {name} skipped too many queries"
        );
    }
}

#[test]
fn doc_scoped_translations_validate_too() {
    for store in stores() {
        let name = store.scheme().name();
        for q in QUERIES {
            let t = match store.request(q).doc("bib").translated() {
                Err(xmlrel_core::CoreError::Translate(m)) if m.contains("unsupported") => continue,
                other => other
                    .unwrap_or_else(|e| panic!("{name}: {q}: doc-scoped translation failed: {e}")),
            };
            let diags = store
                .verify_sql(&t.sql)
                .unwrap_or_else(|e| panic!("{name}: {q}: emitted SQL failed to re-parse: {e}"));
            assert!(diags.is_empty(), "{name}: {q}: diagnostics: {diags:?}");
        }
    }
}
