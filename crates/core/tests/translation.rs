//! End-to-end translation tests: the same XPath/FLWOR queries against all
//! six mapping schemes must return the same answers.

use shredder::{
    BinaryScheme, DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, UniversalScheme,
};
use xmlrel_core::{Scheme, XmlStore};

const BIB_DTD: &str = r#"
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, price?)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"#;

const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title><author><lastname>Stevens</lastname></author><price>65</price></book><book year="2000"><title>Data on the Web</title><author><firstname>Serge</firstname><lastname>Abiteboul</lastname></author><author><lastname>Buneman</lastname></author><price>39</price></book><book year="1999"><title>Economics</title><author><lastname>Keynes</lastname></author></book></bib>"#;

fn stores() -> Vec<XmlStore> {
    let schemes = vec![
        Scheme::Edge(EdgeScheme::new()),
        Scheme::Binary(BinaryScheme::new()),
        Scheme::Universal(UniversalScheme::new()),
        Scheme::Interval(IntervalScheme::new()),
        Scheme::Dewey(DeweyScheme::new()),
        Scheme::Inline(InlineScheme::from_dtd_text(BIB_DTD).unwrap()),
    ];
    schemes
        .into_iter()
        .map(|s| {
            let mut store = XmlStore::builder(s).open().unwrap();
            store.load_str("bib", BIB).unwrap();
            store
        })
        .collect()
}

/// Run a query on every scheme; all answers (sorted) must agree with
/// `expected` (also sorted).
fn assert_all_schemes(query: &str, expected: &[&str]) {
    let mut want: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
    want.sort();
    for store in &mut stores() {
        let name = store.scheme().name();
        let got = store
            .request(query)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {query}: {e}"));
        let mut items = got.items;
        items.sort();
        assert_eq!(items, want, "scheme {name} disagrees on {query}");
    }
}

#[test]
fn child_chain_text() {
    assert_all_schemes(
        "/bib/book/title/text()",
        &["TCP/IP Illustrated", "Data on the Web", "Economics"],
    );
}

#[test]
fn attribute_values() {
    assert_all_schemes("/bib/book/@year", &["1994", "2000", "1999"]);
}

#[test]
fn element_results_publish_subtrees() {
    assert_all_schemes(
        "/bib/book/author",
        &[
            "<author><lastname>Stevens</lastname></author>",
            "<author><firstname>Serge</firstname><lastname>Abiteboul</lastname></author>",
            "<author><lastname>Buneman</lastname></author>",
            "<author><lastname>Keynes</lastname></author>",
        ],
    );
}

#[test]
fn attribute_predicate() {
    assert_all_schemes(
        "/bib/book[@year = '2000']/title/text()",
        &["Data on the Web"],
    );
}

#[test]
fn numeric_attribute_predicate() {
    assert_all_schemes(
        "/bib/book[@year > 1995]/title/text()",
        &["Data on the Web", "Economics"],
    );
}

#[test]
fn text_value_predicate() {
    assert_all_schemes(
        "/bib/book[price > 50]/title/text()",
        &["TCP/IP Illustrated"],
    );
}

#[test]
fn nested_path_predicate() {
    assert_all_schemes("/bib/book[author/lastname = 'Stevens']/@year", &["1994"]);
}

#[test]
fn existence_predicate() {
    assert_all_schemes("/bib/book[price]/@year", &["1994", "2000"]);
}

#[test]
fn and_predicate() {
    assert_all_schemes(
        "/bib/book[price > 30 and @year > 1995]/title/text()",
        &["Data on the Web"],
    );
}

#[test]
fn contains_predicate() {
    assert_all_schemes(
        "/bib/book[contains(title, 'Web')]/title/text()",
        &["Data on the Web"],
    );
}

#[test]
fn descendant_axis() {
    assert_all_schemes(
        "//lastname/text()",
        &["Stevens", "Abiteboul", "Buneman", "Keynes"],
    );
}

#[test]
fn descendant_then_child() {
    assert_all_schemes(
        "//author/lastname/text()",
        &["Stevens", "Abiteboul", "Buneman", "Keynes"],
    );
}

#[test]
fn double_descendant() {
    assert_all_schemes("//book//firstname/text()", &["Serge"]);
}

#[test]
fn trailing_descendant() {
    assert_all_schemes("/bib/book//firstname/text()", &["Serge"]);
}

#[test]
fn wildcard_step() {
    assert_all_schemes(
        "/bib/book/*/lastname/text()",
        &["Stevens", "Abiteboul", "Buneman", "Keynes"],
    );
}

#[test]
fn nonexistent_label_is_empty() {
    assert_all_schemes("/bib/magazine/title/text()", &[]);
    assert_all_schemes("//magazine", &[]);
}

#[test]
fn flwor_filter_and_order() {
    // Value ordering check: translated ORDER BY must sort by year.
    for store in &mut stores() {
        let name = store.scheme().name();
        let got = store
            .request(
                "for $b in /bib/book where $b/price > 30 \
                 order by $b/@year return $b/title/text()",
            )
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            got.items,
            vec!["TCP/IP Illustrated", "Data on the Web"],
            "scheme {name}"
        );
    }
}

#[test]
fn flwor_constructor() {
    for store in &mut stores() {
        let name = store.scheme().name();
        let got = store
            .request(
                "for $b in /bib/book where $b/@year = 1994 \
                 return <hit><y>{$b/@year}</y>{$b/title/text()}</hit>",
            )
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            got.items,
            vec!["<hit><y>1994</y>TCP/IP Illustrated</hit>"],
            "scheme {name}"
        );
    }
}

#[test]
fn flwor_returning_nodes() {
    for store in &mut stores() {
        let name = store.scheme().name();
        let got = store
            .request("for $b in /bib/book where $b/@year = 1994 return $b/author")
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            got.items,
            vec!["<author><lastname>Stevens</lastname></author>"],
            "scheme {name}"
        );
    }
}

#[test]
fn positional_predicate_where_supported() {
    // Positional predicates are supported by the four node-id schemes.
    for store in &mut stores() {
        let name = store.scheme().name();
        let r = store.request("/bib/book[2]/title/text()").run();
        match name {
            "inline" | "universal" => assert!(r.is_err(), "{name} should reject [n]"),
            _ => {
                let got = r.unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(got.items, vec!["Data on the Web"], "scheme {name}");
            }
        }
    }
}

#[test]
fn document_order_preserved_by_ordered_schemes() {
    // Edge/binary/interval/dewey keep document order for child chains.
    for store in &mut stores() {
        let name = store.scheme().name();
        if matches!(name, "inline" | "universal") {
            continue;
        }
        let got = store.request("/bib/book/title/text()").run().unwrap();
        assert_eq!(
            got.items,
            vec!["TCP/IP Illustrated", "Data on the Web", "Economics"],
            "scheme {name}"
        );
    }
}

#[test]
fn reconstruction_round_trip_all_schemes() {
    for store in &stores() {
        let name = store.scheme().name();
        let xml = store.reconstruct("bib").unwrap();
        assert_eq!(xml, BIB, "scheme {name}");
    }
}

#[test]
fn join_counts_differ_by_scheme() {
    // /bib/book/title: inline answers from one table; edge needs a 3-way
    // self-join chain.
    let mut inline_joins = None;
    let mut edge_joins = None;
    for store in &stores() {
        let n = store.join_count("/bib/book/title").unwrap();
        match store.scheme().name() {
            "inline" => inline_joins = Some(n),
            "edge" => edge_joins = Some(n),
            _ => {}
        }
    }
    let (i, e) = (inline_joins.unwrap(), edge_joins.unwrap());
    assert!(i < e, "inline joins {i} must be < edge joins {e}");
    assert_eq!(e, 2, "edge: one join per extra step");
}

#[test]
fn translated_sql_is_visible() {
    let store = stores().remove(3); // interval
    let t = store.request("//book//lastname").translated().unwrap();
    assert!(t.sql.contains("inode"), "{}", t.sql);
    assert!(t.sql.to_lowercase().contains("pre"), "{}", t.sql);
}

#[test]
fn query_scoped_to_one_document() {
    let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .open()
        .unwrap();
    store
        .load_str("a", "<bib><book><title>A</title></book></bib>")
        .unwrap();
    store
        .load_str("b", "<bib><book><title>B</title></book></bib>")
        .unwrap();
    let all = store.request("/bib/book/title/text()").run().unwrap();
    assert_eq!(all.len(), 2);
    let only_a = store
        .request("/bib/book/title/text()")
        .doc("a")
        .run()
        .unwrap();
    assert_eq!(only_a.items, vec!["A"]);
}

#[test]
fn duplicate_document_names_rejected() {
    let mut store = XmlStore::builder(Scheme::Edge(EdgeScheme::new()))
        .open()
        .unwrap();
    store.load_str("x", "<a/>").unwrap();
    assert!(store.load_str("x", "<b/>").is_err());
    assert_eq!(store.documents().unwrap().len(), 1);
}

#[test]
fn remove_document() {
    let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .open()
        .unwrap();
    store.load_str("x", "<a><b/></a>").unwrap();
    assert!(store.remove("x").unwrap() > 0);
    assert!(store.reconstruct("x").is_err());
    assert!(store.request("/a/b").run().unwrap().is_empty());
}
