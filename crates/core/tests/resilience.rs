//! End-to-end resilience: per-request deadlines and cancellation flow
//! from [`QueryRequest`] through the executor, trip promptly even when
//! the storage layer is slow, and leave a diagnostic in the ledger.

use std::time::{Duration, Instant};

use reldb::{CancelToken, DbError, MemBackend, SharedFiles, SlowBackend};
use shredder::IntervalScheme;
use xmlrel_core::{CoreError, Scheme, XmlStore};

/// A store with enough rows that a query has real work to do.
fn sized_store(elems: usize) -> XmlStore {
    let mut xml = String::from("<r>");
    for i in 0..elems {
        xml.push_str(&format!("<a x=\"{i}\">v{}</a>", i % 13));
    }
    xml.push_str("</r>");
    let mut s = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .open()
        .unwrap();
    s.load_str("d", &xml).unwrap();
    s
}

fn is_deadline(err: &CoreError) -> bool {
    matches!(err, CoreError::Db(DbError::DeadlineExceeded(_)))
}

#[test]
fn expired_request_deadline_fails_fast_and_is_typed() {
    let s = sized_store(200);
    let started = Instant::now();
    let err = s
        .request("//a[@x = '7']/text()")
        .timeout_ms(0)
        .run()
        .unwrap_err();
    assert!(is_deadline(&err), "expected DeadlineExceeded, got {err:?}");
    // "Within ~2x the budget": a zero budget must fail in milliseconds,
    // not after executing the whole query. Allow generous CI slack.
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "a pre-expired deadline took {:?} to trip",
        started.elapsed()
    );
}

#[test]
fn deadline_trip_is_recorded_in_the_ledger_with_a_diagnostic() {
    let s = sized_store(50);
    let _ = s.request("//a/text()").timeout_ms(0).run();
    let stats = s.ledger().stats();
    let entry = stats
        .iter()
        .find(|f| f.errors > 0)
        .expect("the tripped query must be ledgered as an error");
    let diag = entry.last_error.as_deref().unwrap_or("");
    assert!(
        diag.contains("deadline exceeded"),
        "ledger diagnostic should carry the trip: {diag:?}"
    );
}

#[test]
fn cancelled_token_aborts_the_request() {
    let s = sized_store(50);
    let token = CancelToken::new();
    token.cancel();
    let err = s.request("//a/text()").cancel(&token).run().unwrap_err();
    assert!(
        matches!(err, CoreError::Db(DbError::Cancelled(_))),
        "expected Cancelled, got {err:?}"
    );
}

#[test]
fn deadline_trips_during_shred_over_a_slow_backend() {
    // Every commit sleeps inside the latency-injecting backend, so a
    // store-wide deadline set before loading trips in the shred phase —
    // proving the write path is deadline-aware, not just the executor.
    let slow = SlowBackend::new(
        MemBackend::over(SharedFiles::new()),
        Duration::from_millis(25),
    );
    let mut s = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .backend(Box::new(slow))
        .open()
        .unwrap();
    s.with_db_mut(|db| db.limits.deadline = Some(reldb::Deadline::after_millis(30)));
    let mut xml = String::from("<r>");
    for i in 0..300 {
        xml.push_str(&format!("<a>{i}</a>"));
    }
    xml.push_str("</r>");
    let started = Instant::now();
    let err = s.load_str("d", &xml).unwrap_err();
    assert!(
        err.to_string().contains("deadline exceeded"),
        "expected a deadline trip from the shred phase, got {err:?}"
    );
    // No hang: the trip must come orders of magnitude before the load
    // would finish (300 elements x 25ms-per-storage-op would be >>1s).
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shred-phase trip took {:?}",
        started.elapsed()
    );
}

#[test]
fn tighter_of_store_and_request_deadlines_wins() {
    let s = sized_store(50);
    // Store-wide deadline far in the future; request deadline expired.
    s.with_db_mut(|db| db.limits.deadline = Some(reldb::Deadline::after_millis(60_000)));
    let err = s.request("//a/text()").timeout_ms(0).run().unwrap_err();
    assert!(is_deadline(&err), "expected DeadlineExceeded, got {err:?}");
}
