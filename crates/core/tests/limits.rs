//! The translator's documented limits: unsupported constructs must fail
//! with clear `Translate` errors (never wrong answers), and the supported
//! edge of each feature must keep working.

use shredder::{DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, UniversalScheme};
use xmlrel_core::{CoreError, Scheme, XmlStore};

const DTD: &str = r#"
<!ELEMENT r (a*, b?)>
<!ELEMENT a (#PCDATA)>
<!ATTLIST a x CDATA #IMPLIED>
<!ELEMENT b (#PCDATA)>
"#;

const XML: &str = r#"<r><a x="1">one</a><a x="2">two</a><b>bee</b></r>"#;

fn interval_store() -> XmlStore {
    let mut s = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .open()
        .unwrap();
    s.load_str("d", XML).unwrap();
    s
}

#[test]
fn not_predicate_rejected_cleanly() {
    let s = interval_store();
    let err = s.request("/r/a[not(@x = '1')]").run().unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("not(")));
}

#[test]
fn descendant_inside_predicate_rejected_on_expansion_schemes() {
    let mut s = XmlStore::builder(Scheme::Edge(EdgeScheme::new()))
        .open()
        .unwrap();
    s.load_str("d", XML).unwrap();
    let err = s.request("/r[//a = 'one']/b").run().unwrap_err();
    assert!(matches!(err, CoreError::Translate(_)));
    // The same predicate works on a native scheme.
    let s = interval_store();
    assert_eq!(
        s.request("/r[//a = 'one']/b/text()").run().unwrap().items,
        vec!["bee"]
    );
}

#[test]
fn positional_on_inline_and_universal_rejected() {
    for scheme in [
        Scheme::Inline(InlineScheme::from_dtd_text(DTD).unwrap()),
        Scheme::Universal(UniversalScheme),
    ] {
        let mut s = XmlStore::builder(scheme).open().unwrap();
        s.load_str("d", XML).unwrap();
        let err = s.request("/r/a[2]").run().unwrap_err();
        assert!(
            matches!(err, CoreError::Translate(_)),
            "{}",
            s.scheme().name()
        );
    }
}

#[test]
fn two_positionals_rejected() {
    let s = interval_store();
    let err = s.request("/r/a[1]/b[2]").run().unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("one positional")));
}

#[test]
fn or_predicates_work() {
    let s = interval_store();
    let got = s
        .request("/r/a[@x = '1' or @x = '2']/text()")
        .run()
        .unwrap();
    assert_eq!(got.items, vec!["one", "two"]);
    // An `or` branch over a missing attribute must not drop candidates.
    let got = s
        .request("/r/a[@x = '1' or @missing = 'z']/text()")
        .run()
        .unwrap();
    assert_eq!(got.items, vec!["one"]);
}

#[test]
fn mixed_or_and_parenthesization() {
    let s = interval_store();
    let got = s
        .request("/r/a[(@x = '1' or @x = '2') and contains(., 'o')]/text()")
        .run()
        .unwrap();
    assert_eq!(got.items, vec!["one", "two"]);
}

#[test]
fn self_step_in_predicate_means_own_text() {
    let s = interval_store();
    let got = s.request("/r/a[. = 'two']/@x").run().unwrap();
    assert_eq!(got.items, vec!["2"]);
}

#[test]
fn unknown_variable_in_flwor() {
    let s = interval_store();
    let err = s
        .request("for $v in /r/a where $w/@x = '1' return $v")
        .run()
        .unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("unbound")));
}

#[test]
fn parent_axis_rejected_when_not_normalized_away() {
    let s = interval_store();
    // /r/a/.. normalizes to /r (supported); //a/.. cannot be normalized.
    assert!(s.request("/r/a/../b/text()").run().is_ok());
    let err = s.request("//a/../b").run().unwrap_err();
    assert!(matches!(err, CoreError::Translate(_)));
}

#[test]
fn empty_results_are_empty_not_errors() {
    for scheme in [
        Scheme::Edge(EdgeScheme::new()),
        Scheme::Interval(IntervalScheme::new()),
        Scheme::Dewey(DeweyScheme::new()),
        Scheme::Inline(InlineScheme::from_dtd_text(DTD).unwrap()),
    ] {
        let mut s = XmlStore::builder(scheme).open().unwrap();
        s.load_str("d", XML).unwrap();
        assert!(
            s.request("/r/zzz").run().unwrap().is_empty(),
            "{}",
            s.scheme().name()
        );
        assert!(
            s.request("/zzz/a").run().unwrap().is_empty(),
            "{}",
            s.scheme().name()
        );
        assert!(
            s.request("/r/a[@x = 'nope']").run().unwrap().is_empty(),
            "{}",
            s.scheme().name()
        );
    }
}

#[test]
fn query_against_missing_document() {
    let s = interval_store();
    let err = s.request("/r/a").doc("missing").run().unwrap_err();
    assert!(matches!(err, CoreError::NoSuchDocument(_)));
}

#[test]
fn malformed_query_is_query_error() {
    let s = interval_store();
    assert!(matches!(
        s.request("/r/[2]").run(),
        Err(CoreError::Query(_))
    ));
    assert!(matches!(
        s.request("for $x").run(),
        Err(CoreError::Query(_))
    ));
}

#[test]
fn malformed_document_is_xml_error() {
    let mut s = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .open()
        .unwrap();
    assert!(matches!(
        s.load_str("bad", "<a><b></a>"),
        Err(CoreError::Xml(_))
    ));
}

#[test]
fn expansion_cap_is_enforced() {
    // A corpus with hundreds of distinct label paths under //: the driver
    // must refuse (not hang) past MAX_EXPANSION branches.
    let mut xml = String::from("<root>");
    for i in 0..200 {
        xml.push_str(&format!("<g{i}><leaf/></g{i}>"));
    }
    xml.push_str("</root>");
    let mut s = XmlStore::builder(Scheme::Edge(EdgeScheme::new()))
        .open()
        .unwrap();
    s.load_str("wide", &xml).unwrap();
    let err = s.request("//leaf").run().unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("expansion")));
    // Concrete paths still work.
    assert_eq!(s.request("/root/g7/leaf").count().unwrap(), 1);
}

#[test]
fn flwor_let_binds_single_values() {
    let s = interval_store();
    let got = s
        .request("let $b := /r/b return <out>{$b/text()}</out>")
        .run()
        .unwrap();
    assert_eq!(got.items, vec!["<out>bee</out>"]);
}

#[test]
fn translated_sql_round_trips_through_engine_explain() {
    let s = interval_store();
    let t = s.request("/r/a[@x = '1']/text()").translated().unwrap();
    // The generated SQL must be plannable and EXPLAINable.
    let (logical, physical) = s.with_db(|db| db.plan_select(&t.sql)).unwrap();
    assert!(logical.join_count() >= 1);
    let text = reldb::plan::physical::explain_physical(&physical);
    assert!(!text.is_empty());
}
