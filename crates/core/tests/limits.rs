//! The translator's documented limits: unsupported constructs must fail
//! with clear `Translate` errors (never wrong answers), and the supported
//! edge of each feature must keep working.

use shredder::{DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, UniversalScheme};
use xmlrel_core::{CoreError, Scheme, XmlStore};

const DTD: &str = r#"
<!ELEMENT r (a*, b?)>
<!ELEMENT a (#PCDATA)>
<!ATTLIST a x CDATA #IMPLIED>
<!ELEMENT b (#PCDATA)>
"#;

const XML: &str = r#"<r><a x="1">one</a><a x="2">two</a><b>bee</b></r>"#;

fn interval_store() -> XmlStore {
    let mut s = XmlStore::new(Scheme::Interval(IntervalScheme::new())).unwrap();
    s.load_str("d", XML).unwrap();
    s
}

#[test]
fn not_predicate_rejected_cleanly() {
    let mut s = interval_store();
    let err = s.query("/r/a[not(@x = '1')]").unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("not(")));
}

#[test]
fn descendant_inside_predicate_rejected_on_expansion_schemes() {
    let mut s = XmlStore::new(Scheme::Edge(EdgeScheme::new())).unwrap();
    s.load_str("d", XML).unwrap();
    let err = s.query("/r[//a = 'one']/b").unwrap_err();
    assert!(matches!(err, CoreError::Translate(_)));
    // The same predicate works on a native scheme.
    let mut s = interval_store();
    assert_eq!(
        s.query("/r[//a = 'one']/b/text()").unwrap().items,
        vec!["bee"]
    );
}

#[test]
fn positional_on_inline_and_universal_rejected() {
    for scheme in [
        Scheme::Inline(InlineScheme::from_dtd_text(DTD).unwrap()),
        Scheme::Universal(UniversalScheme),
    ] {
        let mut s = XmlStore::new(scheme).unwrap();
        s.load_str("d", XML).unwrap();
        let err = s.query("/r/a[2]").unwrap_err();
        assert!(
            matches!(err, CoreError::Translate(_)),
            "{}",
            s.scheme().name()
        );
    }
}

#[test]
fn two_positionals_rejected() {
    let mut s = interval_store();
    let err = s.query("/r/a[1]/b[2]").unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("one positional")));
}

#[test]
fn or_predicates_work() {
    let mut s = interval_store();
    let got = s.query("/r/a[@x = '1' or @x = '2']/text()").unwrap();
    assert_eq!(got.items, vec!["one", "two"]);
    // An `or` branch over a missing attribute must not drop candidates.
    let got = s.query("/r/a[@x = '1' or @missing = 'z']/text()").unwrap();
    assert_eq!(got.items, vec!["one"]);
}

#[test]
fn mixed_or_and_parenthesization() {
    let mut s = interval_store();
    let got = s
        .query("/r/a[(@x = '1' or @x = '2') and contains(., 'o')]/text()")
        .unwrap();
    assert_eq!(got.items, vec!["one", "two"]);
}

#[test]
fn self_step_in_predicate_means_own_text() {
    let mut s = interval_store();
    let got = s.query("/r/a[. = 'two']/@x").unwrap();
    assert_eq!(got.items, vec!["2"]);
}

#[test]
fn unknown_variable_in_flwor() {
    let mut s = interval_store();
    let err = s
        .query("for $v in /r/a where $w/@x = '1' return $v")
        .unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("unbound")));
}

#[test]
fn parent_axis_rejected_when_not_normalized_away() {
    let mut s = interval_store();
    // /r/a/.. normalizes to /r (supported); //a/.. cannot be normalized.
    assert!(s.query("/r/a/../b/text()").is_ok());
    let err = s.query("//a/../b").unwrap_err();
    assert!(matches!(err, CoreError::Translate(_)));
}

#[test]
fn empty_results_are_empty_not_errors() {
    for scheme in [
        Scheme::Edge(EdgeScheme::new()),
        Scheme::Interval(IntervalScheme::new()),
        Scheme::Dewey(DeweyScheme::new()),
        Scheme::Inline(InlineScheme::from_dtd_text(DTD).unwrap()),
    ] {
        let mut s = XmlStore::new(scheme).unwrap();
        s.load_str("d", XML).unwrap();
        assert!(
            s.query("/r/zzz").unwrap().is_empty(),
            "{}",
            s.scheme().name()
        );
        assert!(
            s.query("/zzz/a").unwrap().is_empty(),
            "{}",
            s.scheme().name()
        );
        assert!(
            s.query("/r/a[@x = 'nope']").unwrap().is_empty(),
            "{}",
            s.scheme().name()
        );
    }
}

#[test]
fn query_against_missing_document() {
    let mut s = interval_store();
    let err = s.query_doc("missing", "/r/a").unwrap_err();
    assert!(matches!(err, CoreError::NoSuchDocument(_)));
}

#[test]
fn malformed_query_is_query_error() {
    let mut s = interval_store();
    assert!(matches!(s.query("/r/[2]"), Err(CoreError::Query(_))));
    assert!(matches!(s.query("for $x"), Err(CoreError::Query(_))));
}

#[test]
fn malformed_document_is_xml_error() {
    let mut s = XmlStore::new(Scheme::Interval(IntervalScheme::new())).unwrap();
    assert!(matches!(
        s.load_str("bad", "<a><b></a>"),
        Err(CoreError::Xml(_))
    ));
}

#[test]
fn expansion_cap_is_enforced() {
    // A corpus with hundreds of distinct label paths under //: the driver
    // must refuse (not hang) past MAX_EXPANSION branches.
    let mut xml = String::from("<root>");
    for i in 0..200 {
        xml.push_str(&format!("<g{i}><leaf/></g{i}>"));
    }
    xml.push_str("</root>");
    let mut s = XmlStore::new(Scheme::Edge(EdgeScheme::new())).unwrap();
    s.load_str("wide", &xml).unwrap();
    let err = s.query("//leaf").unwrap_err();
    assert!(matches!(err, CoreError::Translate(m) if m.contains("expansion")));
    // Concrete paths still work.
    assert_eq!(s.query_count("/root/g7/leaf").unwrap(), 1);
}

#[test]
fn flwor_let_binds_single_values() {
    let mut s = interval_store();
    let got = s
        .query("let $b := /r/b return <out>{$b/text()}</out>")
        .unwrap();
    assert_eq!(got.items, vec!["<out>bee</out>"]);
}

#[test]
fn translated_sql_round_trips_through_engine_explain() {
    let s = interval_store();
    let t = s.translate("/r/a[@x = '1']/text()").unwrap();
    // The generated SQL must be plannable and EXPLAINable.
    let (logical, physical) = s.db.plan_select(&t.sql).unwrap();
    assert!(logical.join_count() >= 1);
    let text = reldb::plan::physical::explain_physical(&physical);
    assert!(!text.is_empty());
}
