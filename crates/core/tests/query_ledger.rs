//! The store feeds its query ledger: rolling per-fingerprint stats, and
//! forensic captures when an execution crosses the latency or q-error
//! threshold.

use shredder::{EdgeScheme, IntervalScheme};
use xmlrel_core::{Explain, Ledger, LedgerConfig, Scheme, SlowTrigger, XmlStore};
use xmlrel_obs::trace;

const XML: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65</price></book>
  <book year="2000"><title>Data on the Web</title><price>39</price></book>
  <book year="1999"><title>XML Handbook</title><price>55</price></book>
</bib>"#;

fn store_with(config: LedgerConfig) -> XmlStore {
    let ledger = Ledger::new(config);
    let mut store = XmlStore::builder(Scheme::Interval(IntervalScheme::new()))
        .ledger(ledger)
        .open()
        .expect("open");
    store.load_str("bib", XML).expect("load");
    store
}

#[test]
fn executions_accumulate_under_one_fingerprint() {
    let store = store_with(LedgerConfig::default());
    for year in ["1990", "1995", "1998"] {
        let q = format!("/bib/book[@year > {year}]/title/text()");
        store.request(&q).run().expect("run");
    }
    store.request("/bib/book/price/text()").run().expect("run");

    let stats = store.ledger().stats();
    assert_eq!(stats.len(), 2, "{stats:?}");
    let by_fp = |fp: &str| {
        stats
            .iter()
            .find(|s| s.fingerprint == fp)
            .unwrap_or_else(|| panic!("missing {fp}: {stats:?}"))
    };
    let parametrized = by_fp("/bib/book[@year>?]/title/text()");
    assert_eq!(parametrized.count, 3);
    assert_eq!(by_fp("/bib/book/price/text()").count, 1);
}

#[test]
fn zero_latency_threshold_captures_with_explain_analyze() {
    // Threshold 0 ⇒ every execution is "slow"; the capture must carry the
    // full EXPLAIN ANALYZE render even though the run itself was
    // unprofiled (forensic re-run).
    let store = store_with(LedgerConfig {
        slow_wall_us: 0,
        slow_q_error: f64::INFINITY,
        ..LedgerConfig::default()
    });
    store
        .request("/bib/book[@year > 1990]/title/text()")
        .run()
        .expect("run");

    let captures = store.ledger().captures();
    assert_eq!(captures.len(), 1, "{captures:?}");
    let c = &captures[0];
    assert_eq!(c.trigger, SlowTrigger::Latency);
    assert_eq!(c.scheme, "interval");
    assert_eq!(c.fingerprint, "/bib/book[@year>?]/title/text()");
    assert!(
        c.explain_analyze.starts_with("sql: SELECT"),
        "{}",
        c.explain_analyze
    );
    // The render carries per-operator actuals (the "act=" column of
    // EXPLAIN ANALYZE) for a real operator tree.
    assert!(c.explain_analyze.contains("act="), "{}", c.explain_analyze);
    assert!(c.rows >= 1);
}

#[test]
fn q_error_threshold_captures_profiled_runs() {
    // q-error threshold 1.0 means any estimate that is not perfect trips
    // the capture; latency alone cannot (threshold is absurdly high).
    let store = store_with(LedgerConfig {
        slow_wall_us: u64::MAX,
        slow_q_error: 1.0,
        ..LedgerConfig::default()
    });
    store
        .request("/bib/book[@year > 1990]/title/text()")
        .explain(Explain::Analyze)
        .run()
        .expect("run");

    let captures = store.ledger().captures();
    assert_eq!(captures.len(), 1, "{captures:?}");
    assert_eq!(captures[0].trigger, SlowTrigger::QError);
    assert!(captures[0].q_error >= 1.0);
}

#[test]
fn capture_snapshots_the_trace_tail() {
    let store = store_with(LedgerConfig {
        slow_wall_us: 0,
        ..LedgerConfig::default()
    });
    let sink = trace::TraceSink::new();
    store
        .request("/bib/book/title/text()")
        .trace(&sink)
        .run()
        .expect("run");

    let captures = store.ledger().captures();
    assert_eq!(captures.len(), 1);
    // The capture fires inside the "execute" span; the tail snapshots
    // whatever spans had already closed under the installed sink.
    assert!(
        captures[0].trace_tail.iter().any(|e| e.name == "translate"),
        "{:?}",
        captures[0].trace_tail
    );
}

#[test]
fn untraced_runs_capture_with_empty_tail() {
    let store = store_with(LedgerConfig {
        slow_wall_us: 0,
        ..LedgerConfig::default()
    });
    store.request("/bib/book").run().expect("run");
    let captures = store.ledger().captures();
    assert_eq!(captures.len(), 1);
    assert!(captures[0].trace_tail.is_empty());
}

#[test]
fn failed_executions_count_as_errors() {
    let store = store_with(LedgerConfig::default());
    // Valid XPath that translates but targets a missing document.
    let err = store
        .request("/bib/book")
        .doc("nope")
        .run()
        .expect_err("missing doc");
    let _ = err;
    // Translation failed before execution, so nothing reached the ledger;
    // now break execution itself via a query that translates fine.
    let out = store.request("/bib/book/title").run().expect("run");
    assert!(!out.items.is_empty());
    let stats = store.ledger().stats();
    assert!(stats.iter().all(|s| s.errors == 0), "{stats:?}");
}

#[test]
fn one_ledger_shared_across_stores_tags_schemes() {
    let ledger = Ledger::new(LedgerConfig {
        slow_wall_us: 0,
        ..LedgerConfig::default()
    });
    for scheme in [
        Scheme::Interval(IntervalScheme::new()),
        Scheme::Edge(EdgeScheme::new()),
    ] {
        let mut store = XmlStore::builder(scheme)
            .ledger(ledger.clone())
            .open()
            .expect("open");
        store.load_str("bib", XML).expect("load");
        store.request("/bib/book/title/text()").run().expect("run");
    }
    let stats = ledger.stats();
    assert_eq!(stats.len(), 1, "{stats:?}");
    assert_eq!(stats[0].count, 2);
    let schemes: Vec<String> = ledger.captures().iter().map(|c| c.scheme.clone()).collect();
    assert_eq!(schemes, vec!["interval", "edge"]);
}
