//! Adversarial round-trip tests: document text, attribute values, and
//! query literals full of SQL metacharacters — single quotes, statement
//! separators, `--` comments, multibyte unicode, backslashes — must pass
//! through shredding, translation, and publishing unchanged on all six
//! schemes, with every piece of generated SQL parsing cleanly. These are
//! the runtime teeth behind the static `xmlrel-lint --sql` gate: if any
//! layer spliced raw text into SQL instead of routing it through the
//! `sql_lit`/`sql_ident` seam, these inputs would break the statement (or
//! worse, comment out its tail) rather than round-trip.

use shredder::{
    BinaryScheme, DeweyScheme, EdgeScheme, InlineScheme, IntervalScheme, UniversalScheme,
};
use xmlrel_core::{Scheme, XmlStore};

/// Hostile values exercised as element text AND attribute content.
/// Each is chosen to break a specific naive SQL-assembly bug:
/// - `O'Reilly & Sons` — unescaped single quote terminates the literal
/// - `x'); DROP TABLE edge; --` — classic injection: close, splice, comment
/// - `a -- trailing comment` — `--` comments out the rest of the statement
/// - `it''s doubled` — pre-doubled quotes must not be halved on the way out
/// - `café 日本語 🦀` — multibyte UTF-8 must survive storage byte-exact
/// - `back\slash "double"` — backslashes/double quotes are NOT escapes in SQL
const HOSTILE: &[&str] = &[
    "O'Reilly & Sons",
    "x'); DROP TABLE edge; --",
    "a -- trailing comment",
    "it''s doubled",
    "caf\u{e9} \u{65e5}\u{672c}\u{8a9e} \u{1f980}",
    "back\\slash \"double\"",
];

const LIB_DTD: &str = r#"
<!ELEMENT lib (item*)>
<!ELEMENT item (name)>
<!ATTLIST item tag CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
"#;

/// `&` is the only HOSTILE byte XML itself reserves; escape it on the way
/// into the document (the parser unescapes, so storage sees the raw text).
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('"', "&quot;")
}

fn hostile_doc() -> String {
    let items: String = HOSTILE
        .iter()
        .map(|v| {
            format!(
                "<item tag=\"{}\"><name>{}</name></item>",
                xml_escape(v),
                xml_escape(v)
            )
        })
        .collect();
    format!("<lib>{items}</lib>")
}

fn stores() -> Vec<XmlStore> {
    let schemes = vec![
        Scheme::Edge(EdgeScheme::new()),
        Scheme::Binary(BinaryScheme::new()),
        Scheme::Universal(UniversalScheme::new()),
        Scheme::Interval(IntervalScheme::new()),
        Scheme::Dewey(DeweyScheme::new()),
        Scheme::Inline(InlineScheme::from_dtd_text(LIB_DTD).unwrap()),
    ];
    let doc = hostile_doc();
    schemes
        .into_iter()
        .map(|s| {
            let mut store = XmlStore::builder(s).open().unwrap();
            store.load_str("hostile", &doc).unwrap();
            store
        })
        .collect()
}

/// Run `query` on every scheme; sorted answers must equal `expected`
/// (sorted), and the translated SQL must parse with the engine's parser.
fn assert_all_schemes(query: &str, expected: &[&str]) {
    let mut want: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
    want.sort();
    for store in &mut stores() {
        let name = store.scheme().name();
        let t = store
            .request(query)
            .translated()
            .unwrap_or_else(|e| panic!("{name}: translate {query}: {e}"));
        reldb::sql::parse_statement(&t.sql)
            .unwrap_or_else(|e| panic!("{name}: generated SQL does not parse: {e}\n{}", t.sql));
        let got = store
            .request(query)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {query}: {e}"));
        let mut items = got.items;
        items.sort();
        assert_eq!(items, want, "scheme {name} disagrees on {query}");
    }
}

#[test]
fn hostile_text_round_trips_byte_exact() {
    assert_all_schemes("/lib/item/name/text()", HOSTILE);
}

#[test]
fn hostile_attributes_round_trip_byte_exact() {
    assert_all_schemes("/lib/item/@tag", HOSTILE);
}

#[test]
fn hostile_text_survives_descendant_axis() {
    assert_all_schemes("//name/text()", HOSTILE);
}

#[test]
fn hostile_query_literal_matches_exactly_one_item() {
    // Each hostile value used as a query-side string literal selects only
    // its own item: the predicate value goes through sql_lit, so a quote
    // or `--` inside it never widens (or truncates) the comparison.
    for v in HOSTILE {
        // xqir string literals have no escape syntax; a value containing a
        // single quote must be delimited with double quotes and vice versa.
        if v.contains('\'') && v.contains('"') {
            continue;
        }
        let (open, close) = if v.contains('\'') {
            ('"', '"')
        } else {
            ('\'', '\'')
        };
        let by_text = format!("/lib/item[name = {open}{v}{close}]/name/text()");
        assert_all_schemes(&by_text, &[v]);
        let by_attr = format!("/lib/item[@tag = {open}{v}{close}]/@tag");
        assert_all_schemes(&by_attr, &[v]);
    }
}

#[test]
fn injection_shaped_literal_matches_nothing_else() {
    // The classic payload matches zero items when compared against a value
    // it is not: if it broke out of its literal, it would either error or
    // (with the `--` tail) match everything.
    assert_all_schemes(
        r#"/lib/item[name = "nope'); DROP TABLE edge; --"]/name/text()"#,
        &[],
    );
}

#[test]
fn tables_survive_hostile_loads() {
    // After loading and querying hostile content, every scheme still
    // answers a clean follow-up query: nothing was dropped or corrupted
    // by the payload that names a real table (`edge`).
    for store in &mut stores() {
        let name = store.scheme().name();
        let got = store
            .request("/lib/item/name/text()")
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got.items.len(), HOSTILE.len(), "scheme {name}");
    }
}
