//! Deep inlining behavior: chains of single-occurrence elements collapse
//! into one table, so paths through them translate with (almost) no joins
//! — the scheme's defining property, checked structurally.

use shredder::{EdgeScheme, InlineScheme};
use xmlrel_core::{Scheme, XmlStore};

/// a → b → c → d all single-occurrence: everything inlines into `r`'s
/// table except `r` itself.
const CHAIN_DTD: &str = r#"
<!ELEMENT r (a)>
<!ELEMENT a (b, z?)>
<!ELEMENT b (c)>
<!ELEMENT c (#PCDATA)>
<!ATTLIST c kind CDATA #IMPLIED>
<!ELEMENT z (#PCDATA)>
"#;

const CHAIN_XML: &str = r#"<r><a><b><c kind="leaf">deep value</c></b><z>zed</z></a></r>"#;

fn stores() -> (XmlStore, XmlStore) {
    let mut inline = XmlStore::builder(Scheme::Inline(
        InlineScheme::from_dtd_text(CHAIN_DTD).unwrap(),
    ))
    .open()
    .unwrap();
    inline.load_str("d", CHAIN_XML).unwrap();
    let mut edge = XmlStore::builder(Scheme::Edge(EdgeScheme::new()))
        .open()
        .unwrap();
    edge.load_str("d", CHAIN_XML).unwrap();
    (inline, edge)
}

#[test]
fn whole_chain_lives_in_one_table() {
    let (inline, _) = stores();
    let Scheme::Inline(s) = inline.scheme() else {
        unreachable!()
    };
    // Only r is tabled; a, b, c, z are columns of inl_r.
    assert!(s.mapping.is_tabled("r"));
    for el in ["a", "b", "c", "z"] {
        assert!(!s.mapping.is_tabled(el), "{el} should be inlined");
    }
    assert_eq!(s.mapping.table_count(), 2); // inl_r + inl_text
}

#[test]
fn four_step_path_needs_zero_joins_on_inline() {
    let (inline, edge) = stores();
    let q = "/r/a/b/c/text()";
    assert_eq!(inline.join_count(q).unwrap(), 0);
    // Edge needs one self-join per step plus the text join.
    assert_eq!(edge.join_count(q).unwrap(), 4);
}

#[test]
fn deep_values_and_attributes_answered_correctly() {
    let (mut inline, mut edge) = stores();
    for store in [&mut inline, &mut edge] {
        let name = store.scheme().name();
        assert_eq!(
            store.request("/r/a/b/c/text()").run().unwrap().items,
            vec!["deep value"],
            "{name}"
        );
        assert_eq!(
            store.request("/r/a/b/c/@kind").run().unwrap().items,
            vec!["leaf"],
            "{name}"
        );
        assert_eq!(
            store.request("/r/a/z/text()").run().unwrap().items,
            vec!["zed"],
            "{name}"
        );
        // Predicate deep inside the inlined chain.
        assert_eq!(
            store
                .request("/r/a[b/c = 'deep value']/z/text()")
                .run()
                .unwrap()
                .items,
            vec!["zed"],
            "{name}"
        );
    }
}

#[test]
fn publishing_inlined_interior_nodes() {
    let (inline, _) = stores();
    // Selecting an INLINED element publishes its subtree from columns.
    let got = inline.request("/r/a/b").run().unwrap();
    assert_eq!(got.items, vec![r#"<b><c kind="leaf">deep value</c></b>"#]);
    let got = inline.request("/r/a").run().unwrap();
    assert_eq!(
        got.items,
        vec![r#"<a><b><c kind="leaf">deep value</c></b><z>zed</z></a>"#]
    );
}

#[test]
fn optional_tail_absent_vs_present() {
    let mut inline = XmlStore::builder(Scheme::Inline(
        InlineScheme::from_dtd_text(CHAIN_DTD).unwrap(),
    ))
    .open()
    .unwrap();
    inline
        .load_str("noz", "<r><a><b><c>v</c></b></a></r>")
        .unwrap();
    // z is absent: existence predicate must filter out.
    assert!(inline
        .request("/r/a[z]/b/c/text()")
        .run()
        .unwrap()
        .is_empty());
    assert_eq!(
        inline.request("/r/a/b/c/text()").run().unwrap().items,
        vec!["v"]
    );
    // The reconstructed doc has no <z/>.
    assert_eq!(
        inline.reconstruct("noz").unwrap(),
        "<r><a><b><c>v</c></b></a></r>"
    );
}
