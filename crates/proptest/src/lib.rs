//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the proptest API its tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_filter` / `prop_recursive`, `Just`, `any`,
//! integer-range and string-pattern strategies, `collection::vec`, the
//! `prop_oneof!` weighted union, and the `proptest!` test macro.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the generated value's
//!   `Debug` output (cases are deterministic per test name, so a failure
//!   reproduces exactly on re-run).
//! - String strategies interpret only the length suffix (`{m,n}`) of a
//!   regex pattern and generate printable characters.

use std::rc::Rc;

// ---- deterministic generator ---------------------------------------------

/// The generator handed to strategies (splitmix64; deterministic per seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---- config ---------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Explicit test-case failure (the `Err` side of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias used by real proptest for rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

// ---- strategy core --------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (regenerates; bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Build recursive values: `self` is the leaf case, `recurse` wraps an
    /// inner strategy into a branch case. `depth` bounds nesting.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level is a mix of the bare leaf (so generation
            // terminates) and one branch expansion over the level below.
            let branch = recurse(level).boxed();
            level = OneOf::new(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        level
    }

    /// Type-erase (and make cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

// ---- combinators ----------------------------------------------------------

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> OneOf<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

/// Constant strategy: always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- primitive strategies --------------------------------------------------

/// Whole-domain strategy for `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform values over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a whole-domain uniform generator.
pub trait Arbitrary {
    /// Draw a value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, sometimes a multibyte char.
        match rng.below(8) {
            0 => char::from_u32(0xA0 + rng.below(0x500) as u32).unwrap_or('ü'),
            _ => (0x20 + rng.below(0x5F) as u8) as char,
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String pattern strategy. Only the trailing `{m,n}` repetition of the
/// regex is honored; characters are printable (ASCII plus a few multibyte).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repetition(self).unwrap_or((0, 20));
        let len = if max > min {
            min + rng.below(max - min + 1)
        } else {
            min
        };
        let mut out = String::new();
        for _ in 0..len {
            out.push(char::arbitrary(rng));
        }
        out
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || open >= close {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// ---- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

// ---- collections ------------------------------------------------------------

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros -----------------------------------------------------------------

/// Define property tests: each `fn name(pat in strategy) { body }` becomes a
/// `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = __result {
                        panic!("property failed at case {}: {}", __case, e);
                    }
                }
            }
        )*
    };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Assert inside a property body (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn oneof_and_vec(parts in crate::collection::vec(
            prop_oneof![2 => Just("a"), 1 => Just("b")], 1..5)
        ) {
            prop_assert!(!parts.is_empty() && parts.len() < 5);
            prop_assert!(parts.iter().all(|p| *p == "a" || *p == "b"));
        }

        #[test]
        fn string_pattern_length(s in "\\PC{0,10}") {
            prop_assert!(s.chars().count() <= 10);
        }
    }

    #[test]
    fn map_filter_recursive_compose() {
        #[derive(Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<T>),
        }
        fn count(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(c) => 1 + c.iter().map(count).sum::<usize>(),
            }
        }
        let strat = any::<u8>()
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(T::Node)
            });
        let mut rng = crate::TestRng::from_name("compose");
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(count(&t) < 100, "depth bound holds");
        }
    }

    #[test]
    fn deterministic_per_name() {
        let strat = crate::collection::vec(any::<u8>(), 0..16);
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
