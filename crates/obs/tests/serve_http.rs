//! The monitoring endpoint speaks real HTTP over plain TCP: these tests
//! connect with `TcpStream` (no external client) and assert on framing.

use std::io::{Read, Write};
use std::net::TcpStream;

use xmlrel_obs::serve::{serve, Endpoints, Health};
use xmlrel_obs::{metrics, trace};

/// One round trip: send `request`, read the full response.
fn roundtrip(addr: std::net::SocketAddr, request: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(request.as_bytes()).expect("write");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read");
    out
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n"),
    )
}

/// Split an HTTP response into (status line, headers, body).
fn parse(resp: &str) -> (String, Vec<String>, String) {
    let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status = lines.next().expect("status line").to_string();
    (
        status,
        lines.map(|l| l.to_string()).collect(),
        body.to_string(),
    )
}

#[test]
fn serves_all_four_endpoints_with_http_framing() {
    metrics::counter_add("serve_http_test_counter", 7);
    let sink = trace::TraceSink::new();
    {
        let _g = trace::install(&sink);
        let _s = trace::span("serve-test-span", "test");
    }
    let handle = serve(
        "127.0.0.1:0",
        Endpoints::new()
            .healthz(|| Health {
                ok: true,
                body: "status ok\n".into(),
            })
            .spans(&sink)
            .slow(|| "[{\"fingerprint\":\"/q\"}]".into()),
    )
    .expect("bind");
    let addr = handle.addr();

    let (status, headers, body) = parse(&get(addr, "/metrics"));
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(body.contains("serve_http_test_counter 7"), "{body}");
    let clen = headers
        .iter()
        .find_map(|h| h.strip_prefix("Content-Length: "))
        .expect("content-length")
        .parse::<usize>()
        .expect("numeric");
    assert_eq!(clen, body.len());
    assert!(headers.iter().any(|h| h == "Connection: close"));

    let (status, _, body) = parse(&get(addr, "/healthz"));
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert_eq!(body, "status ok\n");

    let (status, headers, body) = parse(&get(addr, "/spans"));
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(headers
        .iter()
        .any(|h| h == "Content-Type: application/json"));
    assert!(body.contains("serve-test-span"), "{body}");
    assert!(body.contains("\"ph\":\"X\""), "{body}");

    let (status, _, body) = parse(&get(addr, "/slow"));
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(body.contains("\"fingerprint\""), "{body}");

    handle.stop();
}

#[test]
fn unhealthy_is_503_unknown_is_404_post_is_405() {
    let handle = serve(
        "127.0.0.1:0",
        Endpoints::new().healthz(|| Health {
            ok: false,
            body: "durability poisoned\n".into(),
        }),
    )
    .expect("bind");
    let addr = handle.addr();

    let (status, _, body) = parse(&get(addr, "/healthz"));
    assert_eq!(status, "HTTP/1.0 503 Service Unavailable");
    assert!(body.contains("poisoned"));

    let (status, _, _) = parse(&get(addr, "/nope"));
    assert_eq!(status, "HTTP/1.0 404 Not Found");

    let resp = roundtrip(addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");

    // Query strings are ignored during routing.
    let (status, _, _) = parse(&get(addr, "/metrics?debug=1"));
    assert_eq!(status, "HTTP/1.0 200 OK");

    handle.stop();
}

#[test]
fn stop_unbinds_the_port() {
    let handle = serve("127.0.0.1:0", Endpoints::new()).expect("bind");
    let addr = handle.addr();
    let (status, _, _) = parse(&get(addr, "/healthz"));
    assert_eq!(status, "HTTP/1.0 200 OK");
    handle.stop();
    // After stop() returns the listener is dropped; a fresh bind on the
    // same port succeeds.
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "{rebound:?}");
}
