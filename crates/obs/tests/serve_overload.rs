//! Overload protection: bounded admission with 503 shedding, slowloris
//! and oversized-request defence, the query endpoint's deadline plumbing,
//! and graceful drain with straggler cancellation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xmlrel_obs::serve::{serve_with, Endpoints, QueryReply, ServeConfig};
use xmlrel_obs::{metrics, CancelToken, PhaseTimings};

fn roundtrip(addr: std::net::SocketAddr, request: &[u8]) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(request).expect("write");
    let mut out = String::new();
    let _ = conn.read_to_string(&mut out);
    out
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    roundtrip(
        addr,
        format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes(),
    )
}

fn post_query(addr: std::net::SocketAddr, body: &str, timeout_ms: Option<u64>) -> String {
    let timeout = timeout_ms
        .map(|ms| format!("X-Timeout-Ms: {ms}\r\n"))
        .unwrap_or_default();
    roundtrip(
        addr,
        format!(
            "POST /query HTTP/1.0\r\nContent-Length: {}\r\n{timeout}\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        max_inflight: 2,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        drain_deadline: Duration::from_millis(500),
        retry_after_secs: 7,
    }
}

#[test]
fn sheds_excess_requests_with_503_retry_after_while_inflight_complete() {
    // A provider that blocks until released, so in-flight slots stay
    // occupied for as long as the test needs.
    let release = Arc::new(AtomicUsize::new(0));
    let entered = Arc::new(AtomicUsize::new(0));
    let (p_release, p_entered) = (release.clone(), entered.clone());
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(move |_call| {
            p_entered.fetch_add(1, Ordering::SeqCst);
            while p_release.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            QueryReply {
                status: 200,
                content_type: "text/plain".into(),
                body: "done\n".into(),
                phases: PhaseTimings::default(),
            }
        }),
        ServeConfig {
            max_inflight: 2,
            ..quick_config()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    // Occupy both slots with blocked queries on background threads.
    let busy: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(move || post_query(addr, "q", None)))
        .collect();
    while entered.load(Ordering::SeqCst) < 2 {
        std::thread::sleep(Duration::from_millis(2));
    }

    // A third request must be shed immediately, not queued.
    let shed_before = metrics::counter_value("queries_shed_total");
    let resp = get(addr, "/metrics");
    assert!(
        resp.starts_with("HTTP/1.0 503"),
        "expected shed 503, got: {}",
        resp.lines().next().unwrap_or("")
    );
    assert!(
        resp.contains("Retry-After: 7"),
        "shed response must carry Retry-After: {resp}"
    );
    assert!(metrics::counter_value("queries_shed_total") > shed_before);

    // Releasing the blocked queries lets the in-flight work complete.
    release.store(1, Ordering::SeqCst);
    for t in busy {
        let resp = t.join().expect("worker");
        assert!(
            resp.starts_with("HTTP/1.0 200"),
            "in-flight request must complete: {resp}"
        );
        assert!(resp.contains("done"));
    }
    assert!(
        handle.stop().clean(),
        "drain must be clean once slots are free"
    );
}

#[test]
fn slowloris_connection_is_dropped_not_wedged() {
    let handle = serve_with("127.0.0.1:0", Endpoints::new(), quick_config()).expect("bind");
    let addr = handle.addr();
    // Send a partial request head and go silent.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"GET /metr").expect("write");
    let started = Instant::now();
    let mut out = String::new();
    let _ = conn.read_to_string(&mut out);
    // The read timeout (300ms) must kick the connection out quickly.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "slowloris connection held for {:?}",
        started.elapsed()
    );
    drop(conn);
    // The server stays responsive for well-formed clients.
    let resp = get(addr, "/healthz");
    assert!(resp.starts_with("HTTP/1.0 200"), "server wedged: {resp}");
    assert!(handle.stop().clean());
}

#[test]
fn oversized_request_head_is_rejected_with_400() {
    let handle = serve_with("127.0.0.1:0", Endpoints::new(), quick_config()).expect("bind");
    let addr = handle.addr();
    // 16 KiB of header noise blows the 8 KiB head cap.
    let mut req = b"GET /metrics HTTP/1.0\r\n".to_vec();
    for i in 0..512 {
        req.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(24)).as_bytes());
    }
    req.extend_from_slice(b"\r\n");
    let resp = roundtrip(addr, &req);
    assert!(
        resp.starts_with("HTTP/1.0 400"),
        "oversized head must 400: {}",
        resp.lines().next().unwrap_or("")
    );
    assert!(handle.stop().clean());
}

#[test]
fn malformed_request_line_is_rejected_with_400() {
    let handle = serve_with("127.0.0.1:0", Endpoints::new(), quick_config()).expect("bind");
    let addr = handle.addr();
    let resp = roundtrip(addr, b"\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 400"), "got: {resp}");
    assert!(handle.stop().clean());
}

#[test]
fn query_endpoint_passes_body_and_timeout_header() {
    type Seen = Arc<Mutex<Vec<(String, Option<u64>)>>>;
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let p_seen = seen.clone();
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(move |call| {
            p_seen
                .lock()
                .unwrap()
                .push((call.query.clone(), call.timeout_ms));
            QueryReply {
                status: 200,
                content_type: "text/plain".into(),
                body: format!("echo: {}\n", call.query),
                phases: PhaseTimings::default(),
            }
        }),
        quick_config(),
    )
    .expect("bind");
    let addr = handle.addr();
    let resp = post_query(addr, "//a/text()", Some(250));
    assert!(resp.starts_with("HTTP/1.0 200"), "got: {resp}");
    assert!(resp.contains("echo: //a/text()"));
    let calls = seen.lock().unwrap().clone();
    assert_eq!(calls, vec![("//a/text()".to_string(), Some(250))]);
    assert!(handle.stop().clean());
}

#[test]
fn query_body_over_the_cap_is_rejected() {
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(|_| QueryReply {
            status: 200,
            content_type: "text/plain".into(),
            body: "ok\n".into(),
            phases: PhaseTimings::default(),
        }),
        quick_config(),
    )
    .expect("bind");
    let addr = handle.addr();
    // Claim a body far over the 64 KiB cap; the server must refuse
    // before reading it.
    let resp = roundtrip(
        addr,
        b"POST /query HTTP/1.0\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert!(
        resp.starts_with("HTTP/1.0 413"),
        "oversized body must 413: {}",
        resp.lines().next().unwrap_or("")
    );
    assert!(handle.stop().clean());
}

#[test]
fn graceful_stop_cancels_stragglers_via_the_shared_token() {
    // The provider ignores time and only exits when its cancel token
    // fires — exactly the straggler shape stop() must handle.
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(|call| {
            while !call.cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(2));
            }
            QueryReply {
                status: 503,
                content_type: "text/plain".into(),
                body: "cancelled\n".into(),
                phases: PhaseTimings::default(),
            }
        }),
        ServeConfig {
            drain_deadline: Duration::from_millis(150),
            ..quick_config()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let straggler = std::thread::spawn(move || post_query(addr, "q", None));
    while handle.inflight() == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let started = Instant::now();
    let report = handle.stop();
    assert_eq!(
        report.cancelled, 1,
        "the straggler outlives the first drain wave, so it must be force-cancelled"
    );
    assert_eq!(
        report.stuck, 0,
        "the straggler observes the cancel token, so the second drain wave must succeed"
    );
    assert!(
        !report.clean(),
        "a forced cancellation is not a clean drain"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() took {:?}",
        started.elapsed()
    );
    let resp = straggler.join().expect("straggler");
    assert!(resp.contains("cancelled"), "got: {resp}");
}

#[test]
fn every_response_carries_a_request_id_and_offered_ids_are_honored() {
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(|call| QueryReply {
            status: 200,
            content_type: "text/plain".into(),
            body: format!("rid: {}\n", call.request_id),
            phases: PhaseTimings::default(),
        }),
        quick_config(),
    )
    .expect("bind");
    let addr = handle.addr();

    // A minted ID appears on plain GETs…
    let resp = get(addr, "/healthz");
    assert!(
        resp.contains("X-Request-Id: "),
        "GET response must carry a request id: {resp}"
    );

    // …and a well-formed offered ID is honored end-to-end: response
    // header, provider call, and the flight recorder all agree.
    let resp = roundtrip(
        addr,
        b"POST /query HTTP/1.0\r\nContent-Length: 1\r\nX-Request-Id: client-abc.1\r\n\r\nq",
    );
    assert!(
        resp.contains("X-Request-Id: client-abc.1"),
        "offered id must echo: {resp}"
    );
    assert!(
        resp.contains("rid: client-abc.1"),
        "provider must see the offered id: {resp}"
    );

    // A garbage offer (spaces) is replaced, not echoed verbatim.
    let resp = roundtrip(
        addr,
        b"POST /query HTTP/1.0\r\nContent-Length: 1\r\nX-Request-Id: bad id here\r\n\r\nq",
    );
    assert!(resp.contains("X-Request-Id: "));
    assert!(
        !resp.contains("bad id here"),
        "malformed offer must be replaced: {resp}"
    );

    let report = handle.stop();
    assert!(report.clean());
    assert!(
        report
            .recent
            .iter()
            .any(|r| r.request_id == "client-abc.1" && r.path == "/query" && r.status == 200),
        "drain report must carry the recorded summaries: {:?}",
        report.recent
    );
}

#[test]
fn stats_and_debug_requests_expose_the_flight_recorder() {
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(|_| QueryReply {
            status: 200,
            content_type: "text/plain".into(),
            body: "ok\n".into(),
            phases: PhaseTimings::default(),
        }),
        quick_config(),
    )
    .expect("bind");
    let addr = handle.addr();
    let resp = post_query(addr, "q1", None);
    assert!(resp.starts_with("HTTP/1.0 200"), "got: {resp}");

    let stats = get(addr, "/stats");
    assert!(stats.starts_with("HTTP/1.0 200"), "got: {stats}");
    let body = stats.split("\r\n\r\n").nth(1).unwrap_or("");
    for key in [
        "\"recorded\":",
        "\"latency_us\":",
        "\"phase_totals\":",
        "\"epoch_lag\":",
        "\"by_status\":",
    ] {
        assert!(body.contains(key), "stats missing {key}: {body}");
    }

    let dump = get(addr, "/debug/requests");
    let body = dump.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(
        body.starts_with("{\"requests\":["),
        "debug dump shape: {body}"
    );
    assert!(
        body.contains("\"path\":\"/query\""),
        "query must be in the ring: {body}"
    );
    assert!(
        body.contains("\"queue_us\":"),
        "summaries carry phase timings: {body}"
    );
    assert!(handle.stop().clean());
}

#[test]
fn request_that_ignores_the_cancel_token_is_classified_stuck() {
    // The provider never checks its cancel token: both drain waves must
    // expire, and the report must call it stuck (not cancelled).
    let handle = serve_with(
        "127.0.0.1:0",
        Endpoints::new().query(|_| {
            std::thread::sleep(Duration::from_secs(4));
            QueryReply {
                status: 200,
                content_type: "text/plain".into(),
                body: "late\n".into(),
                phases: PhaseTimings::default(),
            }
        }),
        ServeConfig {
            drain_deadline: Duration::from_millis(100),
            ..quick_config()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let _parked = std::thread::spawn(move || post_query(addr, "q", None));
    while handle.inflight() == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = handle.stop();
    assert_eq!(report.stuck, 1, "token-ignoring request must be stuck");
    assert_eq!(report.cancelled, 0, "stuck and cancelled are disjoint");
    assert!(
        !report.idle(),
        "a stuck request means the server never idled"
    );
}

#[test]
fn inflight_gauge_and_shed_counter_are_exported_on_metrics() {
    let token = CancelToken::new(); // exercise the re-export path
    assert!(!token.is_cancelled());
    let handle = serve_with("127.0.0.1:0", Endpoints::new(), quick_config()).expect("bind");
    let addr = handle.addr();
    let resp = get(addr, "/metrics");
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(
        body.contains("inflight_requests"),
        "gauge missing from exposition: {body}"
    );
    assert!(handle.stop().clean());
}
