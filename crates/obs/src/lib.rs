//! Observability primitives for the xmlrel workspace.
//!
//! Two independent facilities, both written from scratch (the workspace is
//! offline — no tracing/metrics crates):
//!
//! - [`trace`]: scoped spans (`parse` → `shred` → `translate` → `plan` →
//!   `execute` → `publish`) collected into a fixed-capacity ring buffer and
//!   exportable as chrome-trace JSON (`chrome://tracing`, Perfetto).
//! - [`metrics`]: a process-wide registry of counters, gauges and
//!   histograms with a plain-text exposition dump.
//!
//! Both are cheap when idle: a span with no sink installed is a single
//! thread-local read; metrics are a short mutex-guarded map update.
//!
//! A third facility, [`serve`], makes both reachable from outside the
//! process: a from-scratch HTTP/1.0 endpoint (`std::net` only) answering
//! `/metrics`, `/healthz`, `/spans`, `/slow`, `/stats`,
//! `/debug/requests`, and `POST /query`.
//!
//! Two request-correlation facilities feed it:
//!
//! - [`timed_lock`]: `RwLock`/`Mutex` wrappers that record wait/hold
//!   histograms, contention counters, a writer-stall gauge, and poison
//!   recoveries into [`metrics`].
//! - [`reqlog`]: per-request IDs, per-phase timings, and the bounded
//!   flight-recorder ring behind `/stats` and the access log.

pub mod cancel;
pub mod metrics;
pub mod reqlog;
pub mod serve;
pub mod timed_lock;
pub mod trace;

pub use cancel::CancelToken;
pub use reqlog::{FlightRecorder, PhaseTimings, RequestSummary};
