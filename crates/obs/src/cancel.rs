//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a clone-cheap flag shared between the party that
//! wants work stopped (a server draining on shutdown, a CLI handling
//! SIGINT) and the code doing the work (the executor's operator loops,
//! the shred/translate/publish phases). Cancellation is *cooperative*:
//! setting the flag does nothing by itself — workers poll it at their
//! blocking points and unwind with a typed error.
//!
//! The token lives in this crate (the workspace's dependency root) so the
//! HTTP server in [`serve`](crate::serve) and the database executor can
//! share one flag without a dependency cycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clone-cheap cooperative cancellation flag.
///
/// Clones share the same underlying flag: cancelling any clone cancels
/// them all. The default token is live (not cancelled).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (on this token or any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Do two tokens share the same underlying flag?
    pub fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.same_as(&c));
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
        assert!(!a.same_as(&b));
    }
}
