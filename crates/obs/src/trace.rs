//! Scoped tracing spans with a ring-buffer collector.
//!
//! A [`TraceSink`] owns a bounded ring of finished span events. Installing
//! a sink (via [`install`]) makes it the current collector for the calling
//! thread; [`span`] then returns an RAII guard that records one event —
//! name, category, start offset, duration, nesting depth — when it drops.
//! When no sink is installed a span is inert and costs one thread-local
//! read.
//!
//! The ring keeps the most recent window: once full, the oldest event is
//! overwritten and a drop counter ticks, so a long-running process always
//! holds the tail of its own history (the part you want when something just
//! went wrong). Export with [`TraceSink::to_chrome_trace`] and load the
//! file in `chrome://tracing` or Perfetto.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity: plenty for a multi-document workload while
/// keeping the worst-case footprint small (events are ~100 bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name, e.g. `execute`.
    pub name: Cow<'static, str>,
    /// Coarse category, e.g. `query` or `storage`.
    pub cat: &'static str,
    /// Start offset from the sink's creation, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at the time the span opened (outermost = 1).
    pub depth: u32,
}

struct SinkInner {
    epoch: Instant,
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// A bounded collector of span events. Clone-cheap (`Arc` inside) and
/// shareable across threads; each thread that should record into it must
/// [`install`] it.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl SinkInner {
    /// Lock a sink's state, recovering from poisoning: every mutation
    /// leaves the ring structurally valid, and a panic elsewhere must not
    /// disable trace collection for the rest of the process.
    fn lock(inner: &Mutex<SinkInner>) -> std::sync::MutexGuard<'_, SinkInner> {
        inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink with the [`DEFAULT_CAPACITY`].
    pub fn new() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sink holding at most `capacity` events; the oldest event is
    /// evicted (and counted as dropped) once the ring is full.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            inner: Arc::new(Mutex::new(SinkInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let inner = SinkInner::lock(&self.inner);
        inner.events.iter().cloned().collect()
    }

    /// The most recent `n` events, oldest first. The tail is what a
    /// forensic capture wants: the spans leading up to "right now".
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let inner = SinkInner::lock(&self.inner);
        let skip = inner.events.len().saturating_sub(n);
        inner.events.iter().skip(skip).cloned().collect()
    }

    /// Number of events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        SinkInner::lock(&self.inner).dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        SinkInner::lock(&self.inner).events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget all recorded events and the drop count.
    pub fn clear(&self) {
        let mut inner = SinkInner::lock(&self.inner);
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Render the events in chrome-trace ("Trace Event Format") JSON:
    /// an object with a `traceEvents` array of complete (`"ph":"X"`)
    /// events. Loadable in `chrome://tracing` and Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let inner = SinkInner::lock(&self.inner);
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in inner.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{{\"depth\":{}}}}}",
                json_quote(&e.name),
                json_quote(e.cat),
                e.start_us,
                e.dur_us,
                e.depth
            ));
        }
        if !inner.events.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{}}}",
            inner.dropped
        ));
        out
    }

    fn record(&self, event: Event) {
        let mut inner = SinkInner::lock(&self.inner);
        if inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }
}

thread_local! {
    static CURRENT: RefCellSink = RefCellSink::default();
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Thread-local stack of installed sinks; spans record into the top.
#[derive(Default)]
struct RefCellSink {
    stack: std::cell::RefCell<Vec<TraceSink>>,
}

/// Install `sink` as the current thread's collector until the returned
/// guard drops. Installs nest: the most recent one wins.
pub fn install(sink: &TraceSink) -> InstallGuard {
    CURRENT.with(|c| c.stack.borrow_mut().push(sink.clone()));
    InstallGuard { _priv: () }
}

/// The sink currently installed on this thread, if any. Lets a component
/// that did not install the sink itself (e.g. a slow-query capture)
/// snapshot the ring's tail.
pub fn current() -> Option<TraceSink> {
    CURRENT.with(|c| c.stack.borrow().last().cloned())
}

/// RAII guard for [`install`]; uninstalls on drop.
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.stack.borrow_mut().pop();
        });
    }
}

/// Open a span. Records one [`Event`] into the installed sink when the
/// returned guard drops; inert (and nearly free) when no sink is
/// installed.
pub fn span(name: impl Into<Cow<'static, str>>, cat: &'static str) -> Span {
    let sink = CURRENT.with(|c| c.stack.borrow().last().cloned());
    match sink {
        None => Span { active: None },
        Some(sink) => {
            let depth = DEPTH.with(|d| {
                let v = d.get() + 1;
                d.set(v);
                v
            });
            Span {
                active: Some(ActiveSpan {
                    sink,
                    name: name.into(),
                    cat,
                    start: Instant::now(),
                    depth,
                }),
            }
        }
    }
}

struct ActiveSpan {
    sink: TraceSink,
    name: Cow<'static, str>,
    cat: &'static str,
    start: Instant,
    depth: u32,
}

/// RAII span guard returned by [`span`].
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur = a.start.elapsed();
            let start_us = {
                let epoch = SinkInner::lock(&a.sink.inner).epoch;
                a.start.saturating_duration_since(epoch).as_micros() as u64
            };
            a.sink.record(Event {
                name: a.name,
                cat: a.cat,
                start_us,
                dur_us: dur.as_micros() as u64,
                depth: a.depth,
            });
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
}

/// Minimal JSON string escaping: quote `s` as a JSON string literal.
/// Public because every hand-rolled JSON emitter in the workspace (the
/// chrome-trace export, the ledger's `/slow` body) needs the same rules.
pub fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_is_inert() {
        let s = span("orphan", "test");
        drop(s);
        // Nothing to assert beyond "does not panic"; there is no sink.
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let sink = TraceSink::new();
        {
            let _g = install(&sink);
            let _outer = span("outer", "test");
            {
                let _mid = span("mid", "test");
                let _inner = span("inner", "test");
            }
            let _sibling = span("sibling", "test");
        }
        let events = sink.events();
        // Events are recorded at span *close*, innermost first.
        let by_name: Vec<(&str, u32)> = events.iter().map(|e| (e.name.as_ref(), e.depth)).collect();
        assert_eq!(
            by_name,
            vec![("inner", 3), ("mid", 2), ("sibling", 2), ("outer", 1)]
        );
        // The outer span must fully contain the inner one.
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert!(outer.start_us <= inner.start_us);
        assert!(outer.start_us + outer.dur_us >= inner.start_us + inner.dur_us);
    }

    #[test]
    fn ring_buffer_drops_and_counts_overflow() {
        let sink = TraceSink::with_capacity(3);
        let _g = install(&sink);
        for i in 0..10 {
            let _s = span(format!("s{i}"), "test");
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        // The *latest* events survive; the oldest were evicted.
        let names: Vec<String> = sink.events().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, vec!["s7", "s8", "s9"]);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn install_nests_and_uninstalls() {
        let a = TraceSink::new();
        let b = TraceSink::new();
        let _ga = install(&a);
        {
            let _gb = install(&b);
            let _s = span("into-b", "test");
        }
        let _s = span("into-a", "test");
        drop(_s);
        assert_eq!(b.events().len(), 1);
        assert_eq!(b.events()[0].name, "into-b");
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].name, "into-a");
    }

    #[test]
    fn current_and_tail() {
        assert!(current().is_none());
        let sink = TraceSink::new();
        let _g = install(&sink);
        assert!(current().is_some());
        for i in 0..5 {
            let _s = span(format!("t{i}"), "test");
        }
        let tail: Vec<String> = sink.tail(2).iter().map(|e| e.name.to_string()).collect();
        assert_eq!(tail, vec!["t3", "t4"]);
        assert_eq!(sink.tail(100).len(), 5);
    }

    #[test]
    fn chrome_trace_export_shape() {
        let sink = TraceSink::new();
        {
            let _g = install(&sink);
            let _s = span("q\"uote", "test");
        }
        let json = sink.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"uote"));
        assert!(json.ends_with("\"droppedEvents\":0}"));
    }
}
