//! Request-correlated observability: per-request phase timings, request
//! IDs, and the bounded flight-recorder ring behind `/stats`,
//! `/debug/requests`, and the access log.
//!
//! Every request the monitoring endpoint serves gets an ID (honoring a
//! client-supplied `X-Request-Id` when it is well formed), a
//! [`PhaseTimings`] breakdown, and a [`RequestSummary`] pushed into the
//! server's [`FlightRecorder`] — a fixed-size ring of the most recent
//! requests, cheap enough to leave on in production and dumpable live
//! while an incident is happening. One structured access-log line per
//! request goes to stderr with all six phase timings, so a request ID in
//! a response header can be grepped straight to its breakdown, its trace
//! spans, its ledger row, and any slow capture it triggered.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::metrics::{self, Histogram, Metric};
use crate::timed_lock;
use crate::trace::json_quote;

/// Per-phase wall-clock breakdown of one served request, microseconds.
///
/// The six phases cover the whole request path: `queue` (admission to
/// dispatch), `lock_wait` (blocked on the store's database lock),
/// `snapshot_clone` (copy-on-read snapshot construction), `translate`
/// (XPath → SQL), `execute` (SQL execution), `publish` (row → item
/// rendering). Phases that did not happen — an error before execution, a
/// GET endpoint — stay zero, so every access-log line carries all six.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Admission (connection accepted, slot reserved) to dispatch.
    pub queue_us: u64,
    /// Blocked acquiring the database lock.
    pub lock_wait_us: u64,
    /// Cloning the copy-on-read snapshot.
    pub snapshot_clone_us: u64,
    /// XPath parse + SQL translation.
    pub translate_us: u64,
    /// SQL execution.
    pub execute_us: u64,
    /// Rendering result rows into response items.
    pub publish_us: u64,
}

impl PhaseTimings {
    /// `key=value` rendering for the access log, all six phases always.
    pub fn log_fields(&self) -> String {
        format!(
            "queue_us={} lock_wait_us={} snapshot_clone_us={} translate_us={} \
             execute_us={} publish_us={}",
            self.queue_us,
            self.lock_wait_us,
            self.snapshot_clone_us,
            self.translate_us,
            self.execute_us,
            self.publish_us
        )
    }

    /// JSON object rendering, all six phases always.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_us\":{},\"lock_wait_us\":{},\"snapshot_clone_us\":{},\
             \"translate_us\":{},\"execute_us\":{},\"publish_us\":{}}}",
            self.queue_us,
            self.lock_wait_us,
            self.snapshot_clone_us,
            self.translate_us,
            self.execute_us,
            self.publish_us
        )
    }

    /// Sum of all six phases (the accounted-for part of `total_us`).
    pub fn accounted_us(&self) -> u64 {
        self.queue_us
            .saturating_add(self.lock_wait_us)
            .saturating_add(self.snapshot_clone_us)
            .saturating_add(self.translate_us)
            .saturating_add(self.execute_us)
            .saturating_add(self.publish_us)
    }
}

/// One request's entry in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestSummary {
    /// Assigned (or honored) request ID, echoed as `X-Request-Id`.
    pub request_id: String,
    /// HTTP method.
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Admission to response-written wall time.
    pub total_us: u64,
    /// Per-phase breakdown.
    pub phases: PhaseTimings,
}

impl RequestSummary {
    /// The structured access-log line for this request. One line, all
    /// six phase timings, greppable by request ID.
    pub fn access_log_line(&self) -> String {
        format!(
            "access request_id={} method={} path={} status={} total_us={} {}",
            self.request_id,
            self.method,
            self.path,
            self.status,
            self.total_us,
            self.phases.log_fields()
        )
    }

    /// JSON object rendering for `/debug/requests` and `/stats`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"request_id\":{},\"method\":{},\"path\":{},\"status\":{},\
             \"total_us\":{},\"phases\":{}}}",
            json_quote(&self.request_id),
            json_quote(&self.method),
            json_quote(&self.path),
            self.status,
            self.total_us,
            self.phases.to_json()
        )
    }
}

/// Request-ID source: a per-server random-ish seed plus a counter, no
/// external dependencies. IDs look like `5f3a9c1b-2a`.
#[derive(Debug)]
pub struct RequestIds {
    seed: u64,
    counter: AtomicU64,
}

impl Default for RequestIds {
    fn default() -> RequestIds {
        RequestIds::new()
    }
}

impl RequestIds {
    /// A fresh source seeded from wall clock and pid.
    pub fn new() -> RequestIds {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        let seed = (now.as_secs() << 20)
            ^ u64::from(now.subsec_nanos())
            ^ (u64::from(std::process::id()) << 40);
        RequestIds {
            seed,
            counter: AtomicU64::new(1),
        }
    }

    /// Honor a well-formed client-offered ID, else mint a fresh one.
    pub fn assign(&self, offered: Option<&str>) -> String {
        if let Some(id) = offered.and_then(sanitize_request_id) {
            return id;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{:x}", self.seed & 0xffff_ffff, n)
    }
}

/// Accept a client-offered request ID only when it is short and made of
/// header-and-log-safe characters; anything else is replaced.
pub fn sanitize_request_id(offered: &str) -> Option<String> {
    let t = offered.trim();
    let ok = !t.is_empty()
        && t.len() <= 64
        && t.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'));
    ok.then(|| t.to_string())
}

/// How many summaries the ring keeps by default.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

struct RecorderInner {
    capacity: usize,
    entries: VecDeque<RequestSummary>,
    /// Summaries evicted to make room (ring overflow).
    dropped: u64,
    /// Total summaries ever recorded (monotonic).
    total: u64,
}

/// Bounded ring of the last N [`RequestSummary`] entries.
///
/// Clone-shares the ring (like `TraceSink`): the serve layer records
/// into it from connection workers while `/stats`, `/debug/requests`,
/// and the shutdown `DrainReport` read it.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A recorder keeping at most `capacity` summaries (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                capacity: capacity.max(1),
                entries: VecDeque::new(),
                dropped: 0,
                total: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RecorderInner> {
        // Summaries are plain data; a panic mid-push leaves the ring
        // merely short, never invalid.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one finished request.
    pub fn record(&self, summary: RequestSummary) {
        let mut inner = self.lock();
        if inner.entries.len() >= inner.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(summary);
        inner.total += 1;
    }

    /// The most recent `n` summaries, oldest first.
    pub fn recent(&self, n: usize) -> Vec<RequestSummary> {
        let inner = self.lock();
        let skip = inner.entries.len().saturating_sub(n);
        inner.entries.iter().skip(skip).cloned().collect()
    }

    /// Summaries currently retained.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// Summaries evicted due to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Total summaries ever recorded.
    pub fn total(&self) -> u64 {
        self.lock().total
    }

    /// `/debug/requests` body: the full retained ring, oldest first.
    pub fn requests_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"requests\":[");
        for (i, s) in inner.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s.to_json());
        }
        out.push_str(&format!(
            "\n],\"recorded\":{},\"dropped\":{}}}\n",
            inner.total, inner.dropped
        ));
        out
    }

    /// The access log as retained: one line per summary, oldest first.
    pub fn access_log(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for s in &inner.entries {
            out.push_str(&s.access_log_line());
            out.push('\n');
        }
        out
    }

    /// `/stats` body: aggregate view over the retained ring plus the
    /// live contention gauges — latency percentiles (from a pow2
    /// histogram over ring totals), per-phase sums, status counts,
    /// inflight, epoch lag, and the `db` lock's wait percentiles.
    pub fn stats_json(&self) -> String {
        let (entries, total, dropped) = {
            let inner = self.lock();
            (
                inner.entries.iter().cloned().collect::<Vec<_>>(),
                inner.total,
                inner.dropped,
            )
        };
        let mut latency = Histogram::default();
        let mut phases = PhaseTimings::default();
        let mut by_status: BTreeMap<u16, u64> = BTreeMap::new();
        for s in &entries {
            latency.observe(s.total_us);
            *by_status.entry(s.status).or_insert(0) += 1;
            phases.queue_us += s.phases.queue_us;
            phases.lock_wait_us += s.phases.lock_wait_us;
            phases.snapshot_clone_us += s.phases.snapshot_clone_us;
            phases.translate_us += s.phases.translate_us;
            phases.execute_us += s.phases.execute_us;
            phases.publish_us += s.phases.publish_us;
        }
        let gauge = |name: &str| match metrics::get(name) {
            Some(Metric::Gauge(v)) => v,
            _ => 0,
        };
        let lock_p99 = |mode: &str| match metrics::get(&timed_lock::wait_metric("db", mode)) {
            Some(Metric::Histogram(h)) if h.count > 0 => h.percentile_bound(99),
            _ => 0,
        };
        let mut status = String::from("{");
        for (i, (code, n)) in by_status.iter().enumerate() {
            if i > 0 {
                status.push(',');
            }
            status.push_str(&format!("\"{code}\":{n}"));
        }
        status.push('}');
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"recorded\":{total},\"dropped\":{dropped},\"ring\":{},",
            entries.len()
        ));
        out.push_str(&format!(
            "\"inflight\":{},\"epoch_lag\":{},",
            gauge("inflight_requests"),
            gauge("snapshot_epoch_lag")
        ));
        out.push_str(&format!(
            "\"latency_us\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
            latency.count,
            latency.percentile_bound(50),
            latency.percentile_bound(90),
            latency.percentile_bound(99),
            if latency.count > 0 { latency.max } else { 0 }
        ));
        out.push_str(&format!(
            "\"db_lock_wait_p99_us\":{{\"read\":{},\"write\":{}}},",
            lock_p99("read"),
            lock_p99("write")
        ));
        out.push_str(&format!(
            "\"lock_poison_recoveries\":{},",
            metrics::counter_value(timed_lock::POISON_RECOVERIES)
        ));
        out.push_str(&format!("\"phase_totals\":{},", phases.to_json()));
        out.push_str(&format!("\"by_status\":{status},"));
        let recent = entries.iter().rev().take(8).rev();
        out.push_str("\"recent\":[");
        for (i, s) in recent.enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s.to_json());
        }
        out.push_str("\n]}\n");
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &inner.capacity)
            .field("len", &inner.entries.len())
            .field("dropped", &inner.dropped)
            .field("total", &inner.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(id: &str, status: u16, total_us: u64) -> RequestSummary {
        RequestSummary {
            request_id: id.to_string(),
            method: "POST".into(),
            path: "/query".into(),
            status,
            total_us,
            phases: PhaseTimings {
                queue_us: 1,
                lock_wait_us: 2,
                snapshot_clone_us: 3,
                translate_us: 4,
                execute_us: 5,
                publish_us: 6,
            },
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(2);
        for i in 0..5 {
            rec.record(summary(&format!("r{i}"), 200, 10 * (i + 1)));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.total(), 5);
        let recent = rec.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].request_id, "r3");
        assert_eq!(recent[1].request_id, "r4");
    }

    #[test]
    fn access_log_line_has_all_six_phases() {
        let line = summary("abc", 200, 21).access_log_line();
        assert!(line.starts_with("access request_id=abc "), "{line}");
        for key in [
            "queue_us=",
            "lock_wait_us=",
            "snapshot_clone_us=",
            "translate_us=",
            "execute_us=",
            "publish_us=",
        ] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
        // Default (error-path) phases still render all six keys.
        let bare = RequestSummary::default().access_log_line();
        assert!(bare.contains("publish_us=0"), "{bare}");
    }

    #[test]
    fn stats_json_aggregates_ring() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(summary("a", 200, 100));
        rec.record(summary("b", 400, 900));
        let stats = rec.stats_json();
        assert!(stats.contains("\"recorded\":2"), "{stats}");
        assert!(
            stats.contains("\"by_status\":{\"200\":1,\"400\":1}"),
            "{stats}"
        );
        assert!(stats.contains("\"latency_us\":{\"count\":2,"), "{stats}");
        assert!(
            stats.contains("\"phase_totals\":{\"queue_us\":2,"),
            "{stats}"
        );
        assert!(stats.contains("\"recent\":["), "{stats}");
    }

    #[test]
    fn request_ids_honor_only_sane_offers() {
        let ids = RequestIds::new();
        assert_eq!(ids.assign(Some("client-1")), "client-1");
        let minted = ids.assign(Some("bad id with spaces"));
        assert!(!minted.contains(' '), "{minted}");
        let a = ids.assign(None);
        let b = ids.assign(None);
        assert_ne!(a, b, "minted IDs must be distinct");
        assert!(sanitize_request_id(&"x".repeat(65)).is_none());
        assert!(sanitize_request_id("ok-1_2.3:4").is_some());
    }

    #[test]
    fn requests_json_shape() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(summary("q1", 200, 5));
        let json = rec.requests_json();
        assert!(json.starts_with("{\"requests\":["), "{json}");
        assert!(json.contains("\"request_id\":\"q1\""), "{json}");
        assert!(
            json.trim_end().ends_with("\"recorded\":1,\"dropped\":0}"),
            "{json}"
        );
    }
}
