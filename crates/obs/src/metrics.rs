//! Process-wide metrics registry: counters, gauges, histograms.
//!
//! Metrics are addressed by name; a name may carry inline labels in
//! Prometheus style (`queries_total{scheme="edge"}`), which the registry
//! treats as part of the key. Free functions update the global registry:
//!
//! ```
//! use xmlrel_obs::metrics;
//! metrics::counter_add("wal_bytes_total", 128);
//! metrics::gauge_set("open_documents", 3);
//! metrics::observe_us("snapshot_duration_us", 1500);
//! let text = metrics::dump();
//! assert!(text.contains("wal_bytes_total"));
//! ```
//!
//! [`dump`] renders a plain-text exposition sorted by name, stable enough
//! to grep in tests and paste into a bug report. Histograms use power-of-two
//! buckets, so the dump stays deterministic for deterministic workloads.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two histogram buckets: bucket `i` counts samples in
/// `[2^(i-1), 2^i)`, with bucket 0 holding zero. 2^40 µs ≈ 12 days.
const BUCKETS: usize = 41;

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one sample. Public so components that keep their own
    /// histograms (e.g. the query ledger's per-fingerprint latency) can
    /// reuse the bucketing instead of reinventing it.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = (64 - v.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    /// Cumulative `(le, count)` pairs: `count` samples were `<= le`.
    /// Bucket `i` holds samples in `[2^(i-1), 2^i)`, so its inclusive
    /// upper bound over integer samples is exactly `2^i - 1`. Pairs stop
    /// at the highest non-empty bucket; the caller appends `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let highest = match self.buckets.iter().rposition(|&b| b > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(highest + 1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate().take(highest + 1) {
            seen += b;
            let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            out.push((le, seen));
        }
        out
    }

    /// Upper bound of the bucket holding the p-th percentile (0..=100).
    pub fn percentile_bound(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * u64::from(p)).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// One metric value, as read back by [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    Counter(u64),
    Gauge(i64),
    // Boxed: the bucket array dwarfs the scalar variants, and the
    // registry holds many more counters than histograms.
    Histogram(Box<Histogram>),
}

#[derive(Default)]
struct Registry {
    metrics: BTreeMap<String, Metric>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Lock the registry, recovering from poisoning: a panic elsewhere must
/// not take the metrics surface down with it, and every registry update
/// leaves the map structurally valid regardless of where it was
/// interrupted.
fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Increment a counter by 1.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Increment a counter by `delta`.
pub fn counter_add(name: &str, delta: u64) {
    let mut reg = lock();
    // A name already registered with another kind is left untouched.
    if let Metric::Counter(v) = reg
        .metrics
        .entry(name.to_string())
        .or_insert(Metric::Counter(0))
    {
        *v += delta;
    }
}

/// Set a gauge to an absolute value.
pub fn gauge_set(name: &str, value: i64) {
    let mut reg = lock();
    *reg.metrics
        .entry(name.to_string())
        .or_insert(Metric::Gauge(0)) = Metric::Gauge(value);
}

/// Record one sample into a histogram (unit encoded in the name, e.g.
/// `_us` for microseconds or `_bytes`).
pub fn observe_us(name: &str, sample: u64) {
    let mut reg = lock();
    if let Metric::Histogram(h) = reg
        .metrics
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::default()))
    {
        h.observe(sample);
    }
}

/// Read one metric back, if present.
pub fn get(name: &str) -> Option<Metric> {
    lock().metrics.get(name).cloned()
}

/// Convenience: current value of a counter, 0 when absent.
pub fn counter_value(name: &str) -> u64 {
    match get(name) {
        Some(Metric::Counter(v)) => v,
        _ => 0,
    }
}

/// Snapshot of every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, Metric)> {
    let reg = lock();
    reg.metrics
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Remove every registered metric. Intended for tests and for the CLI's
/// per-run dumps; the registry is process-global.
pub fn reset() {
    lock().metrics.clear();
}

/// Plain-text exposition: sorted by name. Counters and gauges are one
/// line each; histograms get a human summary line followed by a
/// scrape-shaped cumulative exposition (`_bucket{le=...}`, `_sum`,
/// `_count` — Prometheus histogram convention, so `/metrics` output can
/// be ingested as-is).
///
/// ```text
/// queries_total{scheme="edge"} 12
/// snapshot_duration_us count=3 sum=4500 min=1200 max=1800 p50<=2048 p99<=2048
/// snapshot_duration_us_bucket{le="2047"} 3
/// snapshot_duration_us_bucket{le="+Inf"} 3
/// snapshot_duration_us_sum 4500
/// snapshot_duration_us_count 3
/// ```
pub fn dump() -> String {
    let mut out = String::new();
    for (name, metric) in snapshot() {
        match metric {
            Metric::Counter(v) => out.push_str(&format!("{name} {v}\n")),
            Metric::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
            Metric::Histogram(h) => {
                if h.count == 0 {
                    out.push_str(&format!("{name} count=0\n"));
                    continue;
                }
                out.push_str(&format!(
                    "{name} count={} sum={} min={} max={} p50<={} p99<={}\n",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.percentile_bound(50),
                    h.percentile_bound(99)
                ));
                for (le, cum) in h.cumulative_buckets() {
                    out.push_str(&format!(
                        "{} {cum}\n",
                        suffixed(&name, "_bucket", Some(&le.to_string()))
                    ));
                }
                out.push_str(&format!(
                    "{} {}\n",
                    suffixed(&name, "_bucket", Some("+Inf")),
                    h.count
                ));
                out.push_str(&format!("{} {}\n", suffixed(&name, "_sum", None), h.sum));
                out.push_str(&format!(
                    "{} {}\n",
                    suffixed(&name, "_count", None),
                    h.count
                ));
            }
        }
    }
    out
}

/// Append a suffix to a possibly-labelled metric name, folding an
/// optional `le` label into the existing label set:
/// `suffixed("lat{scheme=\"edge\"}", "_bucket", Some("15"))` →
/// `lat_bucket{scheme="edge",le="15"}`.
fn suffixed(name: &str, suffix: &str, le: Option<&str>) -> String {
    let (base, labels) = match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (name, ""),
    };
    match (labels.is_empty(), le) {
        (true, None) => format!("{base}{suffix}"),
        (true, Some(le)) => format!("{base}{suffix}{{le=\"{le}\"}}"),
        (false, None) => format!("{base}{suffix}{{{labels}}}"),
        (false, Some(le)) => format!("{base}{suffix}{{{labels},le=\"{le}\"}}"),
    }
}

/// Build a labelled metric name, escaping quotes in the label value:
/// `labelled("queries_total", "scheme", "edge")` →
/// `queries_total{scheme="edge"}`.
pub fn labelled(name: &str, key: &str, value: &str) -> String {
    let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
    format!("{name}{{{key}=\"{escaped}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and tests run concurrently, so every
    /// test uses its own metric names rather than `reset()`.
    #[test]
    fn counters_accumulate() {
        counter_inc("test_counters_accumulate");
        counter_add("test_counters_accumulate", 4);
        assert_eq!(counter_value("test_counters_accumulate"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        gauge_set("test_gauge", 7);
        gauge_set("test_gauge", -2);
        assert_eq!(get("test_gauge"), Some(Metric::Gauge(-2)));
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        for v in [1u64, 2, 3, 100, 1000] {
            observe_us("test_histogram", v);
        }
        let h = match get("test_histogram") {
            Some(Metric::Histogram(h)) => h,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!(h.percentile_bound(50) <= 4);
        assert!(h.percentile_bound(99) >= 1000);
    }

    #[test]
    fn dump_is_sorted_text() {
        counter_inc("test_dump_b");
        counter_inc("test_dump_a");
        let text = dump();
        let a = text.find("test_dump_a").unwrap();
        let b = text.find("test_dump_b").unwrap();
        assert!(a < b);
    }

    /// Pins the scrape-shaped histogram exposition: cumulative
    /// `_bucket{le=...}` lines (exact integer upper bounds, `+Inf`
    /// terminator), then `_sum` and `_count`.
    #[test]
    fn dump_emits_cumulative_buckets() {
        for v in [1u64, 2, 3, 100] {
            observe_us("test_bucket_expo", v);
        }
        let text = dump();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("test_bucket_expo"))
            .collect();
        assert_eq!(
            lines,
            vec![
                "test_bucket_expo count=4 sum=106 min=1 max=100 p50<=4 p99<=128",
                "test_bucket_expo_bucket{le=\"0\"} 0",
                "test_bucket_expo_bucket{le=\"1\"} 1",
                "test_bucket_expo_bucket{le=\"3\"} 3",
                "test_bucket_expo_bucket{le=\"7\"} 3",
                "test_bucket_expo_bucket{le=\"15\"} 3",
                "test_bucket_expo_bucket{le=\"31\"} 3",
                "test_bucket_expo_bucket{le=\"63\"} 3",
                "test_bucket_expo_bucket{le=\"127\"} 4",
                "test_bucket_expo_bucket{le=\"+Inf\"} 4",
                "test_bucket_expo_sum 106",
                "test_bucket_expo_count 4",
            ]
        );
    }

    /// A labelled histogram folds `le` into the existing label set.
    #[test]
    fn dump_buckets_fold_labels() {
        observe_us(&labelled("test_bucket_lbl", "scheme", "edge"), 4);
        let text = dump();
        assert!(
            text.contains("test_bucket_lbl_bucket{scheme=\"edge\",le=\"7\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("test_bucket_lbl_bucket{scheme=\"edge\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("test_bucket_lbl_sum{scheme=\"edge\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("test_bucket_lbl_count{scheme=\"edge\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn labelled_names_escape() {
        assert_eq!(
            labelled("queries_total", "scheme", "edge"),
            "queries_total{scheme=\"edge\"}"
        );
        assert_eq!(labelled("x", "k", "a\"b"), "x{k=\"a\\\"b\"}");
    }
}
