//! Instrumented locks: `std::sync` primitives wrapped so every
//! acquisition leaves evidence in the metrics registry.
//!
//! ROADMAP item 1 says the next scaling walls are the store's single
//! `RwLock<Database>` and writer stalls. Before any event loop, writer
//! batching, or sharding lands, the locks themselves must be measurable —
//! otherwise those PRs cannot prove they helped. [`TimedRwLock`] and
//! [`TimedMutex`] record, per lock name:
//!
//! - `lock_wait_us{lock=..,mode=..}` — pow2 histogram of time spent
//!   blocked acquiring (0 for an uncontended fast-path acquisition),
//!   split by `read`/`write` for the rwlock and `lock` for the mutex.
//! - `lock_hold_us{lock=..,mode=..}` — pow2 histogram of how long each
//!   guard was held, recorded when the guard drops.
//! - `lock_contended_total{lock=..,mode=..}` — acquisitions that found
//!   the lock busy and had to block.
//! - `lock_writer_stalled{lock=..}` — gauge of writers currently blocked
//!   waiting for the rwlock (the writer-starvation early-warning signal).
//! - `lock_poison_recoveries_total` — process-wide counter bumped every
//!   time a poisoned lock was recovered. Poison recovery used to be
//!   silent (`unwrap_or_else(PoisonError::into_inner)` scattered at call
//!   sites); now every recovery is visible in `/metrics` and `/healthz`.
//!
//! The guards expose [`TimedReadGuard::wait_us`] /
//! [`TimedWriteGuard::wait_us`] so callers can attribute lock-wait time
//! to the request that paid it (the `lock_wait_us` phase in the serve
//! layer's access log).
//!
//! Metric names are precomputed at construction; the steady-state cost
//! per acquisition is one `try_*` attempt, one `Instant` read, and two
//! registry updates (wait on acquire, hold on drop).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Instant;

use crate::metrics;

/// Process-wide counter of poisoned-lock recoveries.
pub const POISON_RECOVERIES: &str = "lock_poison_recoveries_total";

/// Registry name of a lock's wait-time histogram, e.g.
/// `lock_wait_us{lock="db",mode="read"}`. Public so readers (the bench
/// driver, `/stats`) address the same keys the locks write.
pub fn wait_metric(lock: &str, mode: &str) -> String {
    format!("lock_wait_us{{lock=\"{lock}\",mode=\"{mode}\"}}")
}

/// Registry name of a lock's hold-time histogram.
pub fn hold_metric(lock: &str, mode: &str) -> String {
    format!("lock_hold_us{{lock=\"{lock}\",mode=\"{mode}\"}}")
}

/// Registry name of a lock's contended-acquisition counter.
pub fn contended_metric(lock: &str, mode: &str) -> String {
    format!("lock_contended_total{{lock=\"{lock}\",mode=\"{mode}\"}}")
}

/// Registry name of an rwlock's stalled-writers gauge.
pub fn stall_metric(lock: &str) -> String {
    format!("lock_writer_stalled{{lock=\"{lock}\"}}")
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Count a poison recovery and pass the recovered guard through.
fn recovered<G>(guard: G) -> G {
    metrics::counter_inc(POISON_RECOVERIES);
    guard
}

/// Precomputed registry keys for one named rwlock.
struct RwNames {
    wait_read: String,
    wait_write: String,
    hold_read: String,
    hold_write: String,
    contended_read: String,
    contended_write: String,
    stall: String,
}

/// An `RwLock` whose acquisitions are timed into the metrics registry.
///
/// Poisoning is recovered internally (and counted): the guarded data in
/// this workspace is plain state a panicking writer leaves stale, never
/// structurally invalid, so continuing is safe — but no longer silent.
pub struct TimedRwLock<T> {
    inner: RwLock<T>,
    name: &'static str,
    names: RwNames,
    writers_waiting: AtomicI64,
}

impl<T> TimedRwLock<T> {
    /// Wrap `value` under the lock name used in every metric label.
    pub fn new(name: &'static str, value: T) -> TimedRwLock<T> {
        let names = RwNames {
            wait_read: wait_metric(name, "read"),
            wait_write: wait_metric(name, "write"),
            hold_read: hold_metric(name, "read"),
            hold_write: hold_metric(name, "write"),
            contended_read: contended_metric(name, "read"),
            contended_write: contended_metric(name, "write"),
            stall: stall_metric(name),
        };
        // Register the stall gauge eagerly so the scrape surface shows it
        // (at zero) before the first contended write.
        metrics::gauge_set(&names.stall, 0);
        TimedRwLock {
            inner: RwLock::new(value),
            name,
            names,
            writers_waiting: AtomicI64::new(0),
        }
    }

    /// The lock name metrics are labelled with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire a read guard, recording wait time (and contention, when
    /// the fast path misses).
    pub fn read(&self) -> TimedReadGuard<'_, T> {
        let (guard, wait_us) = match self.inner.try_read() {
            Ok(g) => (g, 0),
            Err(TryLockError::Poisoned(p)) => (recovered(p.into_inner()), 0),
            Err(TryLockError::WouldBlock) => {
                metrics::counter_inc(&self.names.contended_read);
                let started = Instant::now();
                let g = self
                    .inner
                    .read()
                    .unwrap_or_else(|p| recovered(p.into_inner()));
                (g, elapsed_us(started))
            }
        };
        metrics::observe_us(&self.names.wait_read, wait_us);
        TimedReadGuard {
            guard,
            held_since: Instant::now(),
            wait_us,
            hold_metric: &self.names.hold_read,
        }
    }

    /// Acquire a write guard, recording wait time, contention, and the
    /// stalled-writers gauge while blocked.
    pub fn write(&self) -> TimedWriteGuard<'_, T> {
        let (guard, wait_us) = match self.inner.try_write() {
            Ok(g) => (g, 0),
            Err(TryLockError::Poisoned(p)) => (recovered(p.into_inner()), 0),
            Err(TryLockError::WouldBlock) => {
                metrics::counter_inc(&self.names.contended_write);
                let stalled = self.writers_waiting.fetch_add(1, Ordering::AcqRel) + 1;
                metrics::gauge_set(&self.names.stall, stalled);
                let started = Instant::now();
                let g = self
                    .inner
                    .write()
                    .unwrap_or_else(|p| recovered(p.into_inner()));
                let wait = elapsed_us(started);
                let stalled = self.writers_waiting.fetch_sub(1, Ordering::AcqRel) - 1;
                metrics::gauge_set(&self.names.stall, stalled);
                (g, wait)
            }
        };
        metrics::observe_us(&self.names.wait_write, wait_us);
        TimedWriteGuard {
            guard,
            held_since: Instant::now(),
            wait_us,
            hold_metric: &self.names.hold_write,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for TimedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimedRwLock")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Read guard from a [`TimedRwLock`]; records hold time on drop.
pub struct TimedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    held_since: Instant,
    wait_us: u64,
    hold_metric: &'a str,
}

impl<T> TimedReadGuard<'_, T> {
    /// Microseconds this acquisition spent blocked before succeeding.
    pub fn wait_us(&self) -> u64 {
        self.wait_us
    }
}

impl<T> Deref for TimedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for TimedReadGuard<'_, T> {
    fn drop(&mut self) {
        // The inner guard is still held here (fields drop after this
        // body), so the recorded hold time covers the full guard life.
        metrics::observe_us(self.hold_metric, elapsed_us(self.held_since));
    }
}

/// Write guard from a [`TimedRwLock`]; records hold time on drop.
pub struct TimedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    held_since: Instant,
    wait_us: u64,
    hold_metric: &'a str,
}

impl<T> TimedWriteGuard<'_, T> {
    /// Microseconds this acquisition spent blocked before succeeding.
    pub fn wait_us(&self) -> u64 {
        self.wait_us
    }
}

impl<T> Deref for TimedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TimedWriteGuard<'_, T> {
    fn drop(&mut self) {
        metrics::observe_us(self.hold_metric, elapsed_us(self.held_since));
    }
}

/// Precomputed registry keys for one named mutex.
struct MutexNames {
    wait: String,
    hold: String,
    contended: String,
}

/// A `Mutex` whose acquisitions are timed into the metrics registry
/// (mode label `lock`). Poisoning is recovered and counted, like
/// [`TimedRwLock`].
pub struct TimedMutex<T> {
    inner: Mutex<T>,
    name: &'static str,
    names: MutexNames,
}

impl<T> TimedMutex<T> {
    /// Wrap `value` under the lock name used in every metric label.
    pub fn new(name: &'static str, value: T) -> TimedMutex<T> {
        TimedMutex {
            inner: Mutex::new(value),
            name,
            names: MutexNames {
                wait: wait_metric(name, "lock"),
                hold: hold_metric(name, "lock"),
                contended: contended_metric(name, "lock"),
            },
        }
    }

    /// The lock name metrics are labelled with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire the mutex, recording wait time and contention.
    pub fn lock(&self) -> TimedMutexGuard<'_, T> {
        let (guard, wait_us) = match self.inner.try_lock() {
            Ok(g) => (g, 0),
            Err(TryLockError::Poisoned(p)) => (recovered(p.into_inner()), 0),
            Err(TryLockError::WouldBlock) => {
                metrics::counter_inc(&self.names.contended);
                let started = Instant::now();
                let g = self
                    .inner
                    .lock()
                    .unwrap_or_else(|p| recovered(p.into_inner()));
                (g, elapsed_us(started))
            }
        };
        metrics::observe_us(&self.names.wait, wait_us);
        TimedMutexGuard {
            guard,
            held_since: Instant::now(),
            wait_us,
            hold_metric: &self.names.hold,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for TimedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimedMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard from a [`TimedMutex`]; records hold time on drop.
pub struct TimedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    held_since: Instant,
    wait_us: u64,
    hold_metric: &'a str,
}

impl<T> TimedMutexGuard<'_, T> {
    /// Microseconds this acquisition spent blocked before succeeding.
    pub fn wait_us(&self) -> u64 {
        self.wait_us
    }
}

impl<T> Deref for TimedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TimedMutexGuard<'_, T> {
    fn drop(&mut self) {
        metrics::observe_us(self.hold_metric, elapsed_us(self.held_since));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;

    fn hist_count(name: &str) -> u64 {
        match metrics::get(name) {
            Some(Metric::Histogram(h)) => h.count,
            _ => 0,
        }
    }

    #[test]
    fn uncontended_read_records_wait_and_hold() {
        let lock = TimedRwLock::new("tl_test_a", 7u32);
        let before = hist_count(&wait_metric("tl_test_a", "read"));
        {
            let g = lock.read();
            assert_eq!(*g, 7);
            assert_eq!(g.wait_us(), 0, "fast path must not report wait");
        }
        assert_eq!(hist_count(&wait_metric("tl_test_a", "read")), before + 1);
        assert_eq!(hist_count(&hold_metric("tl_test_a", "read")), before + 1);
    }

    #[test]
    fn contended_write_bumps_counter_and_measures_wait() {
        let lock = std::sync::Arc::new(TimedRwLock::new("tl_test_b", 0u32));
        let held = lock.read();
        let contender = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                let mut g = lock.write();
                *g += 1;
                g.wait_us()
            })
        };
        // Give the writer time to hit the blocking path, then release.
        while metrics::counter_value(&contended_metric("tl_test_b", "write")) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(held);
        let waited = contender.join().expect("writer thread");
        assert!(waited > 0, "blocked writer must report wait time");
        assert_eq!(*lock.read(), 1);
        assert!(metrics::counter_value(&contended_metric("tl_test_b", "write")) >= 1);
        // The stall gauge exists and is back to zero.
        assert_eq!(
            metrics::get(&stall_metric("tl_test_b")),
            Some(Metric::Gauge(0))
        );
    }

    #[test]
    fn poisoned_lock_is_recovered_and_counted() {
        let lock = std::sync::Arc::new(TimedRwLock::new("tl_test_c", 1u32));
        let before = metrics::counter_value(POISON_RECOVERIES);
        let poisoner = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                let _g = lock.write();
                panic!("poison on purpose");
            })
        };
        assert!(poisoner.join().is_err());
        assert_eq!(*lock.read(), 1, "recovered read must still see the data");
        assert!(
            metrics::counter_value(POISON_RECOVERIES) > before,
            "recovery must be counted"
        );
    }

    #[test]
    fn mutex_records_wait_and_hold() {
        let m = TimedMutex::new("tl_test_d", vec![1, 2]);
        {
            let mut g = m.lock();
            g.push(3);
            assert_eq!(g.wait_us(), 0);
        }
        assert_eq!(m.lock().len(), 3);
        assert!(hist_count(&wait_metric("tl_test_d", "lock")) >= 2);
        assert!(hist_count(&hold_metric("tl_test_d", "lock")) >= 1);
    }
}
