//! A from-scratch, overload-protected HTTP/1.0 server over `std::net`.
//!
//! [`serve`] binds a [`TcpListener`] on a background thread and answers
//! the monitoring paths plus an optional query endpoint:
//!
//! - `GET /metrics` — the registry's plain-text exposition
//!   ([`metrics::dump`], scrape-shaped histogram buckets included);
//! - `GET /healthz` — liveness/durability status from the embedder's
//!   health provider (`200` when healthy, `503` otherwise);
//! - `GET /spans`  — chrome-trace JSON of the attached trace ring;
//! - `GET /slow`   — the embedder's slow-query forensic captures (JSON);
//! - `GET /stats`  — live aggregate over the request flight recorder:
//!   latency percentiles, per-phase totals, inflight, epoch lag, lock
//!   wait percentiles ([`FlightRecorder::stats_json`]);
//! - `GET /debug/requests` — the flight recorder's full retained ring,
//!   one JSON summary per recent request;
//! - `POST /query` — the embedder's query provider, when one is wired
//!   via [`Endpoints::query`]. The body is the query text; an optional
//!   `X-Timeout-Ms` header sets a per-request deadline.
//!
//! # Request correlation
//!
//! Every routed request gets a request ID — honored from a well-formed
//! `X-Request-Id` header, minted otherwise — echoed on the response as
//! `X-Request-Id`, stamped into the [`RequestSummary`] ring, and printed
//! as one structured access-log line on stderr with all six phase
//! timings (queue, lock-wait, snapshot-clone, translate, execute,
//! publish). Query providers receive the ID in [`QueryCall::request_id`]
//! and thread it into trace spans, ledger rows, and slow captures, so
//! one grep correlates a response header with every piece of evidence
//! the request left behind.
//!
//! # Overload protection
//!
//! The server is resilient by construction rather than by luck:
//!
//! - **Bounded admission**: at most [`ServeConfig::max_inflight`]
//!   requests run at once. Excess connections are shed immediately with
//!   `503` + `Retry-After` (never queued behind slow work) and counted
//!   in `queries_shed_total`. The OS listen backlog bounds what can pile
//!   up between accepts.
//! - **Slowloris defence**: the request head is capped at 8 KiB and must
//!   arrive within the read timeout; responses must drain within the
//!   write timeout. Violations cost the client its connection, not the
//!   server a thread forever.
//! - **Graceful shutdown**: [`MonitorHandle::stop`] stops accepting,
//!   drains in-flight requests up to [`ServeConfig::drain_deadline`],
//!   then cancels stragglers through a shared [`CancelToken`] that the
//!   query provider threads into the executor's cooperative polls. The
//!   [`DrainReport`] carries the recorder's most recent summaries so a
//!   post-mortem sees what the server was doing when it died.
//!
//! The `inflight_requests` gauge and the `queries_shed_total` /
//! `queries_timed_out_total` counters make the overload behaviour
//! visible on `/metrics` while it is happening.
//!
//! Providers are plain closures so the crate stays dependency-free; the
//! store layer wires its ledger, health report, and query pipeline in
//! without `obs` knowing their types.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::metrics;
use crate::reqlog::{FlightRecorder, PhaseTimings, RequestIds, RequestSummary};

/// Largest request head (request line + headers) the server will read.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Largest `POST /query` body the server will accept.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// How many flight-recorder summaries a [`DrainReport`] carries.
const RECENT_IN_REPORT: usize = 32;

/// Admission, timeout, and shutdown knobs for [`serve_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum concurrently-handled requests; excess connections are
    /// shed with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// How long a connection may dribble its request head/body before
    /// being dropped.
    pub read_timeout: Duration,
    /// How long a response write may block before the connection is
    /// abandoned.
    pub write_timeout: Duration,
    /// How long [`MonitorHandle::stop`] waits for in-flight requests to
    /// finish before cancelling them (and then again for the cancelled
    /// stragglers to unwind).
    pub drain_deadline: Duration,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_inflight: 8,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
        }
    }
}

/// What the health provider reports: a flag driving the status code
/// (`200` vs `503`) plus a plain-text body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// True when the process is healthy (`200 OK`).
    pub ok: bool,
    /// Plain-text detail rendered as the response body.
    pub body: String,
}

/// One `POST /query` call, handed to the embedder's query provider.
#[derive(Debug, Clone)]
pub struct QueryCall {
    /// The request body: the query text.
    pub query: String,
    /// Per-request deadline from the `X-Timeout-Ms` header, if given.
    pub timeout_ms: Option<u64>,
    /// The server's shutdown token: cancelled when a graceful stop runs
    /// out of drain budget. Providers should thread it into their
    /// execution limits so stragglers unwind promptly.
    pub cancel: CancelToken,
    /// The request's correlation ID (assigned or honored by the
    /// server). Providers should thread it into spans, ledger rows, and
    /// captures so response headers grep to the request's evidence.
    pub request_id: String,
}

/// What the query provider returns: a status code plus a typed body.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// HTTP status code (e.g. 200, 400, 408, 500).
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: String,
    /// The response body.
    pub body: String,
    /// Per-phase timings the provider measured (queue time is filled in
    /// by the server). Zeros for phases that did not run.
    pub phases: PhaseTimings,
}

type TextProvider = Box<dyn Fn() -> String + Send + Sync>;
type HealthProvider = Box<dyn Fn() -> Health + Send + Sync>;
type QueryProvider = Box<dyn Fn(QueryCall) -> QueryReply + Send + Sync>;

/// The endpoint bodies, each produced on demand. Defaults: live
/// [`metrics::dump`], an always-ok health check, an empty trace, no
/// captures, and no query endpoint — override what the embedder
/// actually has.
pub struct Endpoints {
    metrics: TextProvider,
    healthz: HealthProvider,
    spans: TextProvider,
    slow: TextProvider,
    query: Option<QueryProvider>,
}

impl Default for Endpoints {
    fn default() -> Endpoints {
        Endpoints::new()
    }
}

impl Endpoints {
    /// Endpoints with every provider at its default.
    pub fn new() -> Endpoints {
        Endpoints {
            metrics: Box::new(metrics::dump),
            healthz: Box::new(|| Health {
                ok: true,
                body: "ok\n".into(),
            }),
            spans: Box::new(|| "{\"traceEvents\":[],\"droppedEvents\":0}".into()),
            slow: Box::new(|| "[]".into()),
            query: None,
        }
    }

    /// Override the `/metrics` body (the default is the live registry).
    pub fn metrics(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Endpoints {
        self.metrics = Box::new(f);
        self
    }

    /// Provide the `/healthz` report.
    pub fn healthz(mut self, f: impl Fn() -> Health + Send + Sync + 'static) -> Endpoints {
        self.healthz = Box::new(f);
        self
    }

    /// Serve `/spans` from a trace ring: each request exports the sink's
    /// current contents as chrome-trace JSON.
    pub fn spans(mut self, sink: &crate::trace::TraceSink) -> Endpoints {
        let sink = sink.clone();
        self.spans = Box::new(move || sink.to_chrome_trace());
        self
    }

    /// Provide the `/slow` body (JSON array of forensic captures).
    pub fn slow(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Endpoints {
        self.slow = Box::new(f);
        self
    }

    /// Enable `POST /query`: `f` receives the body text plus the
    /// per-request timeout, the request ID, and the server's shutdown
    /// token, and returns the response. Without this, `/query` answers
    /// 404.
    pub fn query(
        mut self,
        f: impl Fn(QueryCall) -> QueryReply + Send + Sync + 'static,
    ) -> Endpoints {
        self.query = Some(Box::new(f));
        self
    }
}

/// What a graceful stop did to the requests that were in flight when it
/// began: how many finished on their own within the drain deadline, and
/// how many had to be force-cancelled through the shared [`CancelToken`].
///
/// A forced cancellation is not an error from the server's point of view
/// — the straggler unwinds cooperatively — but embedders that promise
/// clean drains (e.g. a CLI's signal path) should check [`clean`]
/// (DrainReport::clean) and surface the difference to their caller.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Requests in flight at stop time that finished within the drain
    /// deadline, without being cancelled.
    pub drained: usize,
    /// Stragglers that outlived the deadline, were cancelled through the
    /// shared token, and then unwound.
    pub cancelled: usize,
    /// Stragglers that *still* had not unwound when the second drain
    /// wave gave up. Non-zero means a request ignored the token. The
    /// three counts are disjoint: every request in flight at stop time
    /// lands in exactly one bucket.
    pub stuck: usize,
    /// The flight recorder's most recent request summaries at stop time
    /// (up to 32, oldest first) — the server's last words, for
    /// post-mortems that outlive the process.
    pub recent: Vec<RequestSummary>,
}

impl DrainReport {
    /// True when every in-flight request finished without being
    /// force-cancelled.
    pub fn clean(&self) -> bool {
        self.cancelled == 0 && self.stuck == 0
    }

    /// True when every in-flight request eventually unwound — possibly
    /// only after cancellation. This matches the old boolean `stop()`
    /// contract ("did the server reach idle").
    pub fn idle(&self) -> bool {
        self.stuck == 0
    }
}

/// Handle onto a running monitor server. Dropping it (or calling
/// [`stop`](MonitorHandle::stop)) shuts the server down gracefully:
/// stop accepting, drain in-flight requests up to the drain deadline,
/// cancel stragglers, and join the accept thread.
pub struct MonitorHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    inflight: Arc<AtomicUsize>,
    cancel: CancelToken,
    drain_deadline: Duration,
    recorder: FlightRecorder,
}

impl MonitorHandle {
    /// The address the server actually bound (port 0 resolves here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently being handled.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The server's shutdown token (cancelled when a graceful stop runs
    /// out of drain budget). Exposed so embedders can share it with
    /// work started outside the query provider.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// A clone-shared handle onto the server's request flight recorder
    /// (the ring behind `/stats` and `/debug/requests`).
    pub fn recorder(&self) -> FlightRecorder {
        self.recorder.clone()
    }

    /// The current `/stats` body, for embedders exporting snapshots.
    pub fn stats_json(&self) -> String {
        self.recorder.stats_json()
    }

    /// The retained access log, one line per recorded request.
    pub fn access_log(&self) -> String {
        self.recorder.access_log()
    }

    /// Gracefully stop: stop accepting, drain in-flight requests up to
    /// the drain deadline, cancel stragglers, and join the server
    /// thread. The report says how many in-flight requests finished on
    /// their own versus needing a forced cancellation, and carries the
    /// recorder's most recent request summaries.
    pub fn stop(mut self) -> DrainReport {
        self.shutdown()
    }

    fn shutdown(&mut self) -> DrainReport {
        self.stopping.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let at_stop = self.inflight.load(Ordering::Acquire);
        // Drain: give in-flight requests the deadline to finish...
        if self.await_idle(self.drain_deadline) {
            return DrainReport {
                drained: at_stop,
                cancelled: 0,
                stuck: 0,
                recent: self.recorder.recent(RECENT_IN_REPORT),
            };
        }
        // ...then cancel stragglers and give them the same budget to
        // observe it and unwind. A straggler counts as `cancelled` only
        // if it actually unwound; one that ignores the token is `stuck`,
        // not both.
        let stragglers = self.inflight.load(Ordering::Acquire);
        self.cancel.cancel();
        self.await_idle(self.drain_deadline);
        let stuck = self.inflight.load(Ordering::Acquire);
        DrainReport {
            drained: at_stop.saturating_sub(stragglers),
            cancelled: stragglers.saturating_sub(stuck),
            stuck,
            recent: self.recorder.recent(RECENT_IN_REPORT),
        }
    }

    fn await_idle(&self, budget: Duration) -> bool {
        let start = Instant::now();
        while self.inflight.load(Ordering::Acquire) > 0 {
            if start.elapsed() >= budget {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

/// Decrements the in-flight count (and refreshes the gauge) when a
/// request handler exits — normally or by panic.
struct InflightGuard(Arc<AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let now = self.0.fetch_sub(1, Ordering::AcqRel) - 1;
        metrics::gauge_set("inflight_requests", now as i64);
    }
}

/// Per-server state every connection worker shares.
struct ConnShared {
    endpoints: Endpoints,
    cancel: CancelToken,
    recorder: FlightRecorder,
    ids: RequestIds,
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the endpoints on a
/// background thread with the default [`ServeConfig`].
pub fn serve(addr: &str, endpoints: Endpoints) -> std::io::Result<MonitorHandle> {
    serve_with(addr, endpoints, ServeConfig::default())
}

/// Bind `addr` and serve the endpoints until the returned handle stops
/// or drops, with explicit admission/timeout/shutdown knobs.
pub fn serve_with(
    addr: &str,
    endpoints: Endpoints,
    config: ServeConfig,
) -> std::io::Result<MonitorHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicUsize::new(0));
    let cancel = CancelToken::new();
    let recorder = FlightRecorder::new();
    let shared = Arc::new(ConnShared {
        endpoints,
        cancel: cancel.clone(),
        recorder: recorder.clone(),
        ids: RequestIds::new(),
    });
    let stop = stopping.clone();
    let accept_inflight = inflight.clone();
    let drain_deadline = config.drain_deadline;
    let thread = std::thread::Builder::new()
        .name("xmlrel-monitor".into())
        .spawn(move || {
            accept_loop(&listener, &stop, &accept_inflight, &shared, &config);
        })?;
    Ok(MonitorHandle {
        addr,
        stopping,
        thread: Some(thread),
        inflight,
        cancel,
        drain_deadline,
        recorder,
    })
}

/// Accept connections, shed when at capacity, and hand admitted ones to
/// per-connection worker threads.
fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    inflight: &Arc<AtomicUsize>,
    shared: &Arc<ConnShared>,
    config: &ServeConfig,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // One slow or broken client must not wedge the endpoint — in
        // either direction.
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        // Admission gate: shed instead of queueing behind slow work.
        // The increment is done here (not in the worker) so the gate
        // never over-admits between accept and thread start.
        let admitted = inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < config.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            metrics::counter_inc("queries_shed_total");
            let retry = format!("Retry-After: {}\r\n", config.retry_after_secs);
            let _ = respond_extra(
                &mut stream,
                503,
                "Service Unavailable",
                "text/plain",
                "overloaded; retry later\n",
                &retry,
            );
            continue;
        }
        // Queue time starts at admission: everything between here and
        // dispatch (thread spawn, head read, parsing) is `queue_us`.
        let admitted_at = Instant::now();
        metrics::gauge_set("inflight_requests", inflight.load(Ordering::Acquire) as i64);
        let guard = InflightGuard(inflight.clone());
        let shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("xmlrel-serve-conn".into())
            .spawn(move || {
                let _guard = guard;
                let _ = handle(stream, &shared, admitted_at);
            });
        // Thread spawn failure: the guard inside the closure was never
        // run; `spawned` holding the closure drops it (and the guard).
        drop(spawned);
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Queue-only phase breakdown for requests that never reach a provider.
fn queue_phases(admitted: Instant) -> PhaseTimings {
    PhaseTimings {
        queue_us: elapsed_us(admitted),
        ..PhaseTimings::default()
    }
}

/// One routed request's identity: everything needed to respond with the
/// correlation header, log the access line, and record the summary.
struct RequestCtx<'a> {
    shared: &'a ConnShared,
    rid: String,
    method: String,
    path: String,
    admitted: Instant,
}

impl RequestCtx<'_> {
    /// Write the response (with `X-Request-Id`), emit the access-log
    /// line, and record the summary into the flight recorder.
    fn finish(
        &self,
        stream: &mut TcpStream,
        code: u16,
        reason: &str,
        content_type: &str,
        body: &str,
        phases: PhaseTimings,
    ) -> std::io::Result<()> {
        let extra = format!("X-Request-Id: {}\r\n", self.rid);
        let result = respond_extra(stream, code, reason, content_type, body, &extra);
        let summary = RequestSummary {
            request_id: self.rid.clone(),
            method: self.method.clone(),
            path: self.path.clone(),
            status: code,
            total_us: elapsed_us(self.admitted),
            phases,
        };
        eprintln!("{}", summary.access_log_line());
        self.shared.recorder.record(summary);
        result
    }
}

/// Read one request, route it, and write the response.
fn handle(mut stream: TcpStream, shared: &ConnShared, admitted: Instant) -> std::io::Result<()> {
    let (head, mut body) = match read_head(&mut stream) {
        Some(h) => h,
        None => {
            return respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            )
        }
    };
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            return respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            )
        }
    };
    let headers = parse_headers(lines);
    // Ignore any query string: `/metrics?x=1` is still `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    let ctx = RequestCtx {
        shared,
        rid: shared
            .ids
            .assign(headers.get("x-request-id").map(String::as_str)),
        method: method.to_string(),
        path: path.to_string(),
        admitted,
    };
    if ctx.path == "/query" {
        if let Some(provider) = shared.endpoints.query.as_ref() {
            if ctx.method != "POST" {
                return ctx.finish(
                    &mut stream,
                    405,
                    "Method Not Allowed",
                    "text/plain",
                    "POST only\n",
                    queue_phases(admitted),
                );
            }
            return handle_query(&mut stream, provider.as_ref(), &ctx, &headers, &mut body);
        }
    }
    if ctx.method != "GET" {
        return ctx.finish(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "GET only\n",
            queue_phases(admitted),
        );
    }
    let phases = queue_phases(admitted);
    let (code, reason, content_type, body) = match ctx.path.as_str() {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4",
            (shared.endpoints.metrics)(),
        ),
        "/healthz" => {
            let h = (shared.endpoints.healthz)();
            if h.ok {
                (200, "OK", "text/plain", h.body)
            } else {
                (503, "Service Unavailable", "text/plain", h.body)
            }
        }
        "/spans" => (200, "OK", "application/json", (shared.endpoints.spans)()),
        "/slow" => (200, "OK", "application/json", (shared.endpoints.slow)()),
        "/stats" => (200, "OK", "application/json", shared.recorder.stats_json()),
        "/debug/requests" => (
            200,
            "OK",
            "application/json",
            shared.recorder.requests_json(),
        ),
        _ => (
            404,
            "Not Found",
            "text/plain",
            "unknown path; try /metrics /healthz /spans /slow /stats /debug/requests\n".to_string(),
        ),
    };
    ctx.finish(&mut stream, code, reason, content_type, &body, phases)
}

/// `POST /query`: bounded body read, optional `X-Timeout-Ms`, provider
/// call, reply.
fn handle_query(
    stream: &mut TcpStream,
    provider: &(dyn Fn(QueryCall) -> QueryReply + Send + Sync),
    ctx: &RequestCtx<'_>,
    headers: &HashMap<String, String>,
    body: &mut Vec<u8>,
) -> std::io::Result<()> {
    let Some(len) = headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
    else {
        return ctx.finish(
            stream,
            400,
            "Bad Request",
            "text/plain",
            "Content-Length required\n",
            queue_phases(ctx.admitted),
        );
    };
    if len > MAX_BODY_BYTES {
        return ctx.finish(
            stream,
            413,
            "Payload Too Large",
            "text/plain",
            "query body too large\n",
            queue_phases(ctx.admitted),
        );
    }
    // Read the rest of the body (read timeout still applies).
    while body.len() < len {
        let mut chunk = [0u8; 1024];
        let want = (len - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).unwrap_or(0);
        if n == 0 {
            return ctx.finish(
                stream,
                400,
                "Bad Request",
                "text/plain",
                "truncated body\n",
                queue_phases(ctx.admitted),
            );
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    let Ok(query) = String::from_utf8(std::mem::take(body)) else {
        return ctx.finish(
            stream,
            400,
            "Bad Request",
            "text/plain",
            "body is not UTF-8\n",
            queue_phases(ctx.admitted),
        );
    };
    let timeout_ms = headers
        .get("x-timeout-ms")
        .and_then(|v| v.parse::<u64>().ok());
    // Queue time ends here: the provider call is the dispatch.
    let queue_us = elapsed_us(ctx.admitted);
    let mut reply = provider(QueryCall {
        query,
        timeout_ms,
        cancel: ctx.shared.cancel.clone(),
        request_id: ctx.rid.clone(),
    });
    reply.phases.queue_us = queue_us;
    let reason = match reply.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Error",
    };
    ctx.finish(
        stream,
        reply.status,
        reason,
        &reply.content_type,
        &reply.body,
        reply.phases,
    )
}

/// Lower-cased header map from the lines after the request line.
fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            map.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    map
}

/// Read up to the end of the request head (blank line), returning the
/// head text plus any body bytes already read past it. `None` on
/// malformed, oversized, or timed-out input.
fn read_head(stream: &mut TcpStream) -> Option<(String, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let split = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(chunk.get(..n)?);
        if buf.len() > MAX_REQUEST_BYTES {
            return None;
        }
    };
    let body = buf.split_off(split);
    let text = String::from_utf8_lossy(&buf).into_owned();
    if text.lines().next().is_none_or(|l| l.is_empty()) {
        return None;
    }
    Some((text, body))
}

/// Offset just past the head terminator (`\r\n\r\n` or `\n\n`), if seen.
fn head_end(buf: &[u8]) -> Option<usize> {
    if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(p + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2)
}

/// Write one HTTP/1.0 response with correct framing and close.
fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_extra(stream, code, reason, content_type, body, "")
}

/// Like [`respond`], with extra pre-formatted `Name: value\r\n` headers.
fn respond_extra(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    extra_headers: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
