//! A from-scratch HTTP/1.0 monitoring endpoint over `std::net` only.
//!
//! [`serve`] binds a [`TcpListener`] on a background thread and answers
//! four fixed paths:
//!
//! - `GET /metrics` — the registry's plain-text exposition
//!   ([`metrics::dump`], scrape-shaped histogram buckets included);
//! - `GET /healthz` — liveness/durability status from the embedder's
//!   health provider (`200` when healthy, `503` otherwise);
//! - `GET /spans`  — chrome-trace JSON of the attached trace ring;
//! - `GET /slow`   — the embedder's slow-query forensic captures (JSON).
//!
//! The server is deliberately minimal: GET only, `Connection: close`,
//! one request per connection, handled sequentially on one thread — the
//! right shape for an operator poking at a process, not a public API.
//! Providers are plain closures so the crate stays dependency-free; the
//! store layer wires its ledger and health report in without `obs`
//! knowing their types.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics;

/// Largest request head (request line + headers) the server will read.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a connection may dribble its request before being dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// What the health provider reports: a flag driving the status code
/// (`200` vs `503`) plus a plain-text body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// True when the process is healthy (`200 OK`).
    pub ok: bool,
    /// Plain-text detail rendered as the response body.
    pub body: String,
}

type TextProvider = Box<dyn Fn() -> String + Send>;
type HealthProvider = Box<dyn Fn() -> Health + Send>;

/// The four endpoint bodies, each produced on demand. Defaults: live
/// [`metrics::dump`], an always-ok health check, an empty trace, and no
/// captures — override what the embedder actually has.
pub struct Endpoints {
    metrics: TextProvider,
    healthz: HealthProvider,
    spans: TextProvider,
    slow: TextProvider,
}

impl Default for Endpoints {
    fn default() -> Endpoints {
        Endpoints::new()
    }
}

impl Endpoints {
    /// Endpoints with every provider at its default.
    pub fn new() -> Endpoints {
        Endpoints {
            metrics: Box::new(metrics::dump),
            healthz: Box::new(|| Health {
                ok: true,
                body: "ok\n".into(),
            }),
            spans: Box::new(|| "{\"traceEvents\":[],\"droppedEvents\":0}".into()),
            slow: Box::new(|| "[]".into()),
        }
    }

    /// Override the `/metrics` body (the default is the live registry).
    pub fn metrics(mut self, f: impl Fn() -> String + Send + 'static) -> Endpoints {
        self.metrics = Box::new(f);
        self
    }

    /// Provide the `/healthz` report.
    pub fn healthz(mut self, f: impl Fn() -> Health + Send + 'static) -> Endpoints {
        self.healthz = Box::new(f);
        self
    }

    /// Serve `/spans` from a trace ring: each request exports the sink's
    /// current contents as chrome-trace JSON.
    pub fn spans(mut self, sink: &crate::trace::TraceSink) -> Endpoints {
        let sink = sink.clone();
        self.spans = Box::new(move || sink.to_chrome_trace());
        self
    }

    /// Provide the `/slow` body (JSON array of forensic captures).
    pub fn slow(mut self, f: impl Fn() -> String + Send + 'static) -> Endpoints {
        self.slow = Box::new(f);
        self
    }
}

/// Handle onto a running monitor server. Dropping it (or calling
/// [`stop`](MonitorHandle::stop)) shuts the server down and joins the
/// thread.
pub struct MonitorHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MonitorHandle {
    /// The address the server actually bound (port 0 resolves here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the monitoring endpoints
/// on a background thread until the returned handle stops or drops.
pub fn serve(addr: &str, endpoints: Endpoints) -> std::io::Result<MonitorHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let stop = stopping.clone();
    let thread = std::thread::Builder::new()
        .name("xmlrel-monitor".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // One slow or broken client must not wedge the endpoint.
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = handle(stream, &endpoints);
            }
        })?;
    Ok(MonitorHandle {
        addr,
        stopping,
        thread: Some(thread),
    })
}

/// Read one request head, route it, and write the response.
fn handle(mut stream: TcpStream, endpoints: &Endpoints) -> std::io::Result<()> {
    let head = match read_head(&mut stream) {
        Some(h) => h,
        None => {
            return respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            )
        }
    };
    let mut parts = head.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            return respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            )
        }
    };
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    // Ignore any query string: `/metrics?x=1` is still `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = (endpoints.metrics)();
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/healthz" => {
            let h = (endpoints.healthz)();
            if h.ok {
                respond(&mut stream, 200, "OK", "text/plain", &h.body)
            } else {
                respond(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    &h.body,
                )
            }
        }
        "/spans" => {
            let body = (endpoints.spans)();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/slow" => {
            let body = (endpoints.slow)();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain",
            "unknown path; try /metrics /healthz /spans /slow\n",
        ),
    }
}

/// Read up to the end of the request head (blank line), returning the
/// request line. `None` on malformed, oversized, or timed-out input.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(chunk.get(..n)?);
        if buf.len() > MAX_REQUEST_BYTES {
            return None;
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    if line.is_empty() {
        return None;
    }
    Some(line.to_string())
}

/// Write one HTTP/1.0 response with correct framing and close.
fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
