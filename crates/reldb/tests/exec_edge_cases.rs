//! Executor edge cases: empty inputs, NULL handling in every operator,
//! LIMIT/OFFSET boundaries, and operator-choice agreement.

use reldb::{Database, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t (k INT, v TEXT);
         INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'b'), (4, 'a'), (NULL, 'c');",
    )
    .unwrap();
    db
}

#[test]
fn limit_offset_boundaries() {
    let mut db = db();
    let all = db.query("SELECT k FROM t ORDER BY k LIMIT 100").unwrap();
    assert_eq!(all.rows.len(), 5);
    let two = db
        .query("SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(two.rows.len(), 2);
    let none = db.query("SELECT k FROM t ORDER BY k LIMIT 0").unwrap();
    assert!(none.rows.is_empty());
    let past = db
        .query("SELECT k FROM t ORDER BY k LIMIT 3 OFFSET 10")
        .unwrap();
    assert!(past.rows.is_empty());
}

#[test]
fn nulls_sort_first_and_distinct_keeps_one_null() {
    let mut db = db();
    let q = db.query("SELECT k FROM t ORDER BY k").unwrap();
    assert!(q.rows[0][0].is_null());
    let q = db.query("SELECT DISTINCT v FROM t ORDER BY v").unwrap();
    // NULL, 'a', 'b', 'c'
    assert_eq!(q.rows.len(), 4);
    assert!(q.rows[0][0].is_null());
}

#[test]
fn aggregates_skip_nulls() {
    let mut db = db();
    let q = db
        .query("SELECT COUNT(*), COUNT(k), COUNT(v) FROM t")
        .unwrap();
    assert_eq!(q.rows[0], vec![Value::Int(5), Value::Int(4), Value::Int(4)]);
    let q = db.query("SELECT AVG(k), MIN(v), MAX(v) FROM t").unwrap();
    assert_eq!(q.rows[0][0], Value::Float(2.5));
    assert_eq!(q.rows[0][1], Value::text("a"));
    assert_eq!(q.rows[0][2], Value::text("c"));
}

#[test]
fn group_by_treats_null_as_its_own_group() {
    let mut db = db();
    let q = db
        .query("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v")
        .unwrap();
    assert_eq!(q.rows.len(), 4); // NULL, a, b, c
    assert_eq!(q.rows[1], vec![Value::text("a"), Value::Int(2)]);
}

#[test]
fn joins_over_empty_tables() {
    let mut db = db();
    db.execute("CREATE TABLE empty (k INT, w TEXT)").unwrap();
    let q = db
        .query("SELECT t.k FROM t JOIN empty ON t.k = empty.k")
        .unwrap();
    assert!(q.rows.is_empty());
    let q = db
        .query("SELECT t.k, empty.w FROM t LEFT JOIN empty ON t.k = empty.k")
        .unwrap();
    assert_eq!(q.rows.len(), 5);
    assert!(q.rows.iter().all(|r| r[1].is_null()));
}

#[test]
fn null_join_keys_never_match() {
    let mut db = db();
    db.execute_script("CREATE TABLE u (k INT); INSERT INTO u VALUES (NULL), (1);")
        .unwrap();
    let q = db
        .query("SELECT COUNT(*) FROM t JOIN u ON t.k = u.k")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(1)));
}

#[test]
fn self_cross_join_counts() {
    let mut db = db();
    let q = db.query("SELECT COUNT(*) FROM t a, t b").unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(25)));
}

#[test]
fn between_and_in_with_nulls() {
    let mut db = db();
    let q = db
        .query("SELECT COUNT(*) FROM t WHERE k BETWEEN 2 AND 3")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(2)));
    let q = db
        .query("SELECT COUNT(*) FROM t WHERE k IN (1, 4, NULL)")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(2)));
    let q = db
        .query("SELECT COUNT(*) FROM t WHERE k NOT BETWEEN 2 AND 3")
        .unwrap();
    // NULL k is UNKNOWN, excluded.
    assert_eq!(q.scalar(), Some(&Value::Int(2)));
}

#[test]
fn order_by_multiple_keys_mixed_directions() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE p (a INT, b INT);
         INSERT INTO p VALUES (1, 1), (1, 2), (2, 1), (2, 2);",
    )
    .unwrap();
    let q = db
        .query("SELECT a, b FROM p ORDER BY a ASC, b DESC")
        .unwrap();
    let pairs: Vec<(i64, i64)> = q
        .rows
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(pairs, vec![(1, 2), (1, 1), (2, 2), (2, 1)]);
}

#[test]
fn operator_choices_agree_on_results() {
    // The same query under all four join configurations returns the same
    // multiset (hash vs index-NL vs nested loops).
    let mut base = db();
    base.execute("CREATE INDEX t_k ON t (k)").unwrap();
    base.execute_script(
        "CREATE TABLE s (k INT, z TEXT);
         INSERT INTO s VALUES (1, 'x'), (3, 'y'), (3, 'yy'), (9, 'z');",
    )
    .unwrap();
    let sql = "SELECT t.k, s.z FROM t JOIN s ON t.k = s.k ORDER BY t.k, s.z";
    let reference = base.query(sql).unwrap();
    for (hash, inl) in [(true, false), (false, true), (false, false)] {
        let mut db2 = db();
        db2.execute("CREATE INDEX t_k ON t (k)").unwrap();
        db2.execute_script(
            "CREATE TABLE s (k INT, z TEXT);
             INSERT INTO s VALUES (1, 'x'), (3, 'y'), (3, 'yy'), (9, 'z');",
        )
        .unwrap();
        db2.physical.use_hash_join = hash;
        db2.physical.use_index_nl_join = inl;
        let got = db2.query(sql).unwrap();
        assert_eq!(got.rows, reference.rows, "hash={hash} inl={inl}");
    }
}

#[test]
fn update_expression_uses_old_row_values() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE w (a INT, b INT);
         INSERT INTO w VALUES (1, 10), (2, 20);",
    )
    .unwrap();
    // Swap-style update: both assignments read the pre-update row.
    db.execute("UPDATE w SET a = b, b = a").unwrap();
    let q = db.query("SELECT a, b FROM w ORDER BY a").unwrap();
    assert_eq!(q.rows[0], vec![Value::Int(10), Value::Int(1)]);
    assert_eq!(q.rows[1], vec![Value::Int(20), Value::Int(2)]);
}

#[test]
fn scalar_functions_on_nulls() {
    let mut db = db();
    let q = db
        .query("SELECT UPPER(v), LENGTH(v), COALESCE(v, '?') FROM t WHERE k = 2")
        .unwrap();
    assert!(q.rows[0][0].is_null());
    assert!(q.rows[0][1].is_null());
    assert_eq!(q.rows[0][2], Value::text("?"));
}
