//! Property test for the join reorderer: over randomized join trees, the
//! greedy rewrite (a) never raises the estimated cost — the cost guard in
//! `reorder_joins` makes this a hard invariant — and (b) always yields a
//! plan the validator still accepts, and (c) never changes query results.

use proptest::prelude::*;
use reldb::plan::{
    bind_select, cost, optimize, reorder::reorder_joins, validate_logical, OptimizerOptions,
    Severity,
};
use reldb::sql::{parse_statement, Statement};
use reldb::value::Value;
use reldb::Database;

/// Tables the generated queries draw from: skewed sizes, one indexed
/// column each, ids that overlap so joins produce rows.
fn test_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t0 (id INT, tag TEXT);
         CREATE INDEX t0_tag ON t0 (tag);
         CREATE TABLE t1 (id INT, tag TEXT);
         CREATE INDEX t1_tag ON t1 (tag);
         CREATE TABLE t2 (id INT, tag TEXT);
         CREATE TABLE t3 (id INT, tag TEXT);
         CREATE INDEX t3_id ON t3 (id);",
    )
    .expect("schema");
    for (name, n, mod_) in [
        ("t0", 400, 40),
        ("t1", 60, 6),
        ("t2", 15, 3),
        ("t3", 150, 15),
    ] {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i), Value::text(format!("g{}", i % mod_))])
            .collect();
        db.bulk_insert(name, rows).expect("load");
    }
    db
}

/// A randomized multi-table SELECT: 2–4 tables, equi-join conditions
/// chaining adjacent tables (sometimes dropped, yielding cross products),
/// plus optional literal predicates.
#[derive(Debug, Clone)]
struct GenQuery {
    tables: Vec<&'static str>,
    join_all: bool,
    filters: Vec<(usize, String)>,
}

impl GenQuery {
    fn sql(&self) -> String {
        let from: Vec<String> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{t} a{i}"))
            .collect();
        let mut conds = Vec::new();
        for i in 1..self.tables.len() {
            // Chain joins; when join_all is false, leave the last table
            // disconnected to exercise the cross-product path.
            if self.join_all || i + 1 < self.tables.len() {
                conds.push(format!("a{}.id = a{}.id", i - 1, i));
            }
        }
        for (i, lit) in &self.filters {
            if *i < self.tables.len() {
                conds.push(format!("a{i}.tag = '{lit}'"));
            }
        }
        let mut sql = format!("SELECT COUNT(*) FROM {}", from.join(", "));
        if !conds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conds.join(" AND "));
        }
        sql
    }
}

fn query_strategy() -> impl Strategy<Value = GenQuery> {
    let table = prop_oneof![Just("t0"), Just("t1"), Just("t2"), Just("t3"),];
    let filter = (0usize..4, 0i64..12).prop_map(|(i, g)| (i, format!("g{g}")));
    (
        proptest::collection::vec(table, 2..5),
        any::<bool>(),
        proptest::collection::vec(filter, 0..3),
    )
        .prop_map(|(tables, join_all, filters)| GenQuery {
            tables,
            join_all,
            filters,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reorder_is_cost_monotone_and_valid(q in query_strategy()) {
        let db = test_db();
        let sql = q.sql();
        let stmt = parse_statement(&sql).expect("generated SQL parses");
        let Statement::Select(sel) = stmt else {
            panic!("not a select: {sql}");
        };
        let bound = bind_select(&db.catalog, &sel).expect("binds");
        let opts = OptimizerOptions {
            join_reorder: false,
            ..Default::default()
        };
        let unordered = optimize(bound, &opts, &db.catalog);
        let reordered = reorder_joins(unordered.clone(), &db.catalog);

        // (a) Estimated cost never increases.
        let before = cost::cost_logical(&unordered, &db.catalog).total();
        let after = cost::cost_logical(&reordered, &db.catalog).total();
        prop_assert!(
            after <= before,
            "{sql}: reorder raised cost {before} -> {after}"
        );

        // (b) The reordered plan still validates without errors.
        let errors: Vec<String> = validate_logical(&db.catalog, &reordered)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .collect();
        prop_assert!(errors.is_empty(), "{sql}: {errors:?}");
    }

    #[test]
    fn reorder_preserves_results(q in query_strategy()) {
        let sql = q.sql();
        let mut with = test_db();
        let mut without = test_db();
        without.optimizer.join_reorder = false;
        let a = with.query(&sql).expect("with reorder");
        let b = without.query(&sql).expect("without reorder");
        prop_assert_eq!(a.rows, b.rows, "{}", sql);
    }
}
