//! Fault-injection tests for the durability subsystem: torn WAL tails,
//! checksum corruption, damaged snapshots, and a randomized crash/recover
//! round-trip. All faults are deterministic — no wall clock, no OS
//! randomness.

use proptest::prelude::*;
use reldb::snapshot::snapshot_file;
use reldb::wal::{read_frames, WAL_FILE};
use reldb::{Database, DbError, FaultBackend, FaultPlan, MemBackend, SharedFiles, Value};

fn open_mem(files: &SharedFiles) -> reldb::Result<Database> {
    Database::open_with_backend(Box::new(MemBackend::over(files.clone())))
}

/// Execute the canonical three statements (one WAL frame each) against a
/// fresh database over `files`.
fn build_three_frames(files: &SharedFiles) {
    let mut db = open_mem(files).unwrap();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
    db.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
}

/// Assert the recovered database reflects exactly the first `committed`
/// of the three statements above.
fn check_state(db: &mut Database, committed: usize) {
    if committed == 0 {
        assert!(
            db.query("SELECT id FROM t").is_err(),
            "table must not exist"
        );
        return;
    }
    let q = db.query("SELECT id FROM t ORDER BY id").unwrap();
    let want: Vec<Vec<Value>> = (1..committed as i64).map(|i| vec![Value::Int(i)]).collect();
    assert_eq!(q.rows, want);
}

#[test]
fn torn_wal_tail_recovers_to_statement_boundary() {
    let pristine = SharedFiles::new();
    build_three_frames(&pristine);
    let wal = pristine.get(WAL_FILE).unwrap();
    let (frames, consumed) = read_frames(&wal);
    assert_eq!(frames.len(), 3);
    assert_eq!(consumed, wal.len());
    let boundaries: Vec<usize> = frames.iter().map(|f| f.end).collect();

    // Crash with the log cut at every possible byte offset.
    for cut in 0..=wal.len() {
        let crashed = SharedFiles::new();
        crashed.put(WAL_FILE, wal[..cut].to_vec());
        let mut db = open_mem(&crashed).unwrap();
        let committed = boundaries.iter().filter(|&&b| b <= cut).count();
        check_state(&mut db, committed);
        // Recovery must have truncated the torn tail off the log.
        let keep = boundaries
            .iter()
            .copied()
            .filter(|&b| b <= cut)
            .max()
            .unwrap_or(0);
        assert_eq!(crashed.get(WAL_FILE).unwrap().len(), keep, "cut at {cut}");
    }
}

#[test]
fn crc_corruption_stops_replay_at_damaged_frame() {
    for victim in 0..3usize {
        let files = SharedFiles::new();
        build_three_frames(&files);
        let wal = files.get(WAL_FILE).unwrap();
        let (frames, _) = read_frames(&wal);
        let start = if victim == 0 {
            0
        } else {
            frames[victim - 1].end
        };
        // Flip one payload bit inside the victim frame (past its header).
        assert!(files.mutate(WAL_FILE, |b| b[start + 8] ^= 0x40));
        let mut db = open_mem(&files).unwrap();
        check_state(&mut db, victim);
        // Everything from the damaged frame on is discarded.
        assert_eq!(files.get(WAL_FILE).unwrap().len(), start, "victim {victim}");
    }
}

#[test]
fn truncated_snapshot_refuses_to_open_as_empty() {
    let pristine = SharedFiles::new();
    {
        let mut db = open_mem(&pristine).unwrap();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        db.checkpoint().unwrap();
    }
    let snap = pristine.get(&snapshot_file(1)).unwrap();

    // Cut the only snapshot at every byte offset, including mid-catalog:
    // opening must fail with Corrupt rather than present an empty database.
    for cut in 0..snap.len() {
        let crashed = SharedFiles::new();
        crashed.put(&snapshot_file(1), snap[..cut].to_vec());
        match open_mem(&crashed) {
            Err(DbError::Corrupt(_)) => {}
            other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
        }
    }

    // The intact snapshot still loads.
    let mut db = open_mem(&pristine).unwrap();
    check_state(&mut db, 2);
}

#[test]
fn falls_back_to_older_valid_snapshot() {
    let files = SharedFiles::new();
    let mut db = open_mem(&files).unwrap();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
    db.checkpoint().unwrap(); // snapshot.1
    let snap1 = files.get(&snapshot_file(1)).unwrap();
    db.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
    db.checkpoint().unwrap(); // snapshot.2, snapshot.1 deleted
    db.execute("INSERT INTO t VALUES (3, 'c')").unwrap(); // gen-2 WAL frame
    drop(db);

    // Bit rot destroys the newest snapshot; the older one was kept around.
    files.put(&snapshot_file(1), snap1);
    assert!(files.mutate(&snapshot_file(2), |b| {
        let mid = b.len() / 2;
        b[mid] ^= 0x01;
    }));

    // Recovery lands on snapshot.1 and skips the gen-2 WAL frame (its
    // effects assume a base state we no longer have).
    let mut db = open_mem(&files).unwrap();
    let q = db.query("SELECT id FROM t ORDER BY id").unwrap();
    assert_eq!(q.rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn torn_commit_poisons_until_reopen() {
    let files = SharedFiles::new();
    {
        let mut db = open_mem(&files).unwrap();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
    }
    // The write budget is counted per backend instance; five bytes is not
    // enough for the next commit's frame, so it tears mid-write.
    let mut db = Database::open_with_backend(Box::new(FaultBackend::over(
        files.clone(),
        FaultPlan::tear_after(5),
    )))
    .unwrap();
    assert!(db.execute("INSERT INTO t VALUES (1, 'a')").is_err());
    // Memory is ahead of disk: all further mutations must be refused.
    match db.execute("INSERT INTO t VALUES (2, 'b')") {
        Err(DbError::Io(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
        other => panic!("expected poisoned Io error, got {other:?}"),
    }
    assert!(db.checkpoint().is_err());

    // Reopen recovers the consistent prefix: table exists, no rows.
    let mut db = open_mem(&files).unwrap();
    check_state(&mut db, 1);
}

#[test]
fn failed_sync_poisons_commit() {
    let files = SharedFiles::new();
    {
        let mut db = open_mem(&files).unwrap();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
    }
    // The schema commit used sync #0 on a fresh backend; fail the next one.
    let mut db = Database::open_with_backend(Box::new(FaultBackend::over(
        files.clone(),
        FaultPlan::fail_sync(0),
    )))
    .unwrap();
    assert!(db.execute("INSERT INTO t VALUES (1, 'a')").is_err());
    let mut db = open_mem(&files).unwrap();
    // The frame bytes may be in the file map, but the fsync never
    // succeeded, so recovery to the pre-statement state is acceptable and
    // recovery to the full statement is too; either way the table must be
    // consistent (zero or one full row, never a partial effect).
    let q = db.query("SELECT id FROM t ORDER BY id").unwrap();
    assert!(q.rows.is_empty() || q.rows == vec![vec![Value::Int(1)]]);
}

#[test]
fn file_backend_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("reldb_reopen_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
        // No clean shutdown: the second insert lives only in the WAL.
    }
    let mut db = Database::open(&dir).unwrap();
    let q = db.query("SELECT id FROM t ORDER BY id").unwrap();
    assert_eq!(q.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized crash/recover round-trip: run random statements through
    /// a fault backend with a random write budget, crash, recover with a
    /// clean backend, and require the recovered contents to equal exactly
    /// the statements that reported success.
    #[test]
    fn randomized_crash_recover_round_trip(seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };

        let files = SharedFiles::new();
        {
            let mut db = open_mem(&files).unwrap();
            db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        }
        let mut model: Vec<i64> = Vec::new();
        let mut next_id: i64 = 1;

        for _round in 0..6 {
            let budget = rng() % 300;
            let opened = Database::open_with_backend(Box::new(FaultBackend::over(
                files.clone(),
                FaultPlan::tear_after(budget),
            )));
            let Ok(mut db) = opened else { continue };
            for _stmt in 0..10 {
                let roll = rng() % 4;
                let res = if roll < 3 || model.is_empty() {
                    let id = next_id;
                    next_id += 1;
                    let r = db.execute(&format!("INSERT INTO t VALUES ({id}, 'x')"));
                    if r.is_ok() {
                        model.push(id);
                    }
                    r
                } else {
                    let victim = model[rng() as usize % model.len()];
                    let r = db.execute(&format!("DELETE FROM t WHERE id = {victim}"));
                    if r.is_ok() {
                        model.retain(|&x| x != victim);
                    }
                    r
                };
                if res.is_err() {
                    break; // crashed: abandon this incarnation
                }
                if rng() % 5 == 0 && db.checkpoint().is_err() {
                    break; // checkpoint crash is content-neutral; reopen
                }
            }
        }

        // Recover with a clean backend and compare against the model.
        let mut db = open_mem(&files).unwrap();
        let q = db.query("SELECT id FROM t ORDER BY id").unwrap();
        let got: Vec<i64> = q
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                ref v => panic!("unexpected value {v:?}"),
            })
            .collect();
        let mut want = model.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
