//! Property test: the B+-tree behaves exactly like a sorted multimap
//! (`BTreeMap<K, Vec<RowId>>`) under arbitrary interleaved operations.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;
use reldb::btree::{BPlusTree, RowId};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, RowId),
    Remove(i64, RowId),
    Get(i64),
    Range(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..200, 0usize..8).prop_map(|(k, r)| Op::Insert(k, r)),
        2 => (0i64..200, 0usize..8).prop_map(|(k, r)| Op::Remove(k, r)),
        1 => (0i64..200).prop_map(Op::Get),
        1 => (0i64..200, 0i64..200).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        let mut tree: BPlusTree<i64> = BPlusTree::new();
        let mut model: BTreeMap<i64, Vec<RowId>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, r) => {
                    tree.insert(*k, *r);
                    model.entry(*k).or_default().push(*r);
                }
                Op::Remove(k, r) => {
                    let expected = model
                        .get_mut(k)
                        .and_then(|v| {
                            v.iter().position(|x| x == r).map(|i| {
                                v.swap_remove(i);
                            })
                        })
                        .is_some();
                    if model.get(k).map(Vec::is_empty).unwrap_or(false) {
                        model.remove(k);
                    }
                    prop_assert_eq!(tree.remove(k, *r), expected);
                }
                Op::Get(k) => {
                    let mut got = tree.get(k).to_vec();
                    got.sort_unstable();
                    let mut want = model.get(k).cloned().unwrap_or_default();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Range(lo, hi) => {
                    let got: Vec<i64> = tree
                        .range(Bound::Included(lo), Bound::Included(hi))
                        .map(|(k, _)| *k)
                        .collect();
                    let want: Vec<i64> = model.range(*lo..=*hi).map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.distinct_keys(), model.len());
        prop_assert_eq!(tree.len(), model.values().map(Vec::len).sum::<usize>());
        // Full iteration in key order.
        let keys: Vec<i64> = tree.iter().map(|(k, _)| *k).collect();
        let want: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(keys, want);
    }
}
