//! Execution resource guards: `max_rows` bounds result size and
//! `max_intermediate_rows` bounds what blocking operators may buffer.

use reldb::{Database, DbError, ExecLimits};

fn filled_db(n: i64) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        .unwrap();
    for i in 0..n {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 3))
            .unwrap();
    }
    db
}

fn assert_exhausted(r: reldb::Result<reldb::QueryResult>) {
    match r {
        Err(DbError::ResourceExhausted(_)) => {}
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn max_rows_bounds_result_size() {
    let mut db = filled_db(20);
    db.limits = ExecLimits {
        max_rows: Some(10),
        ..ExecLimits::default()
    };
    assert_exhausted(db.query("SELECT id FROM t"));
    // At the limit is fine; the guard fires only past it.
    db.limits.max_rows = Some(20);
    assert_eq!(db.query("SELECT id FROM t").unwrap().rows.len(), 20);
}

#[test]
fn max_intermediate_rows_bounds_blocking_operators() {
    let mut db = filled_db(20);
    db.limits = ExecLimits {
        max_intermediate_rows: Some(5),
        ..ExecLimits::default()
    };
    // Sort buffers all input.
    assert_exhausted(db.query("SELECT id FROM t ORDER BY grp, id"));
    // Distinct tracks every seen row.
    assert_exhausted(db.query("SELECT DISTINCT id FROM t"));
    // Hash join materializes its build side.
    assert_exhausted(db.query("SELECT a.id FROM t a JOIN t b ON a.grp = b.grp WHERE a.id < 100"));
    // Three groups fit under the cap even though the input does not.
    let q = db
        .query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        .unwrap();
    assert_eq!(q.rows.len(), 3);
    // Lifting the cap restores all queries.
    db.limits = ExecLimits::default();
    assert_eq!(
        db.query("SELECT id FROM t ORDER BY id").unwrap().rows.len(),
        20
    );
}
