//! Cooperative cancellation and wall-clock deadlines: queries past their
//! budget fail promptly with a typed error naming the tripping operator,
//! and transient storage faults are absorbed by the WAL retry policy.

use std::time::{Duration, Instant};

use reldb::{
    CancelToken, Database, DbError, Deadline, ExecLimits, FaultBackend, FaultPlan, RetryPolicy,
    SharedFiles,
};

fn faulty_db(plan: FaultPlan) -> Database {
    Database::open_with_backend(Box::new(FaultBackend::over(SharedFiles::new(), plan))).unwrap()
}

fn filled_db(n: i64) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        .unwrap();
    for i in 0..n {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 7))
            .unwrap();
    }
    db
}

#[test]
fn expired_deadline_trips_before_any_row() {
    let db = filled_db(50);
    let limits = ExecLimits {
        deadline: Some(Deadline::after_millis(0)),
        ..ExecLimits::default()
    };
    std::thread::sleep(Duration::from_millis(2));
    let err = db
        .query_readonly_limited("SELECT id FROM t", &limits)
        .unwrap_err();
    match &err {
        DbError::DeadlineExceeded(m) => {
            assert!(
                !m.is_empty(),
                "the deadline error must name the tripping operator"
            )
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn deadline_trip_stays_within_twice_the_budget() {
    // A cross-product over a few hundred rows takes long enough that a
    // 20ms budget trips mid-execution; the strided poll must surface the
    // trip well before the query would naturally finish.
    let mut db = Database::new();
    db.execute("CREATE TABLE big (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..400 {
        db.execute(&format!("INSERT INTO big VALUES ({i}, {})", i % 5))
            .unwrap();
    }
    let budget = Duration::from_millis(20);
    let limits = ExecLimits {
        deadline: Some(Deadline::after(budget)),
        ..ExecLimits::default()
    };
    let started = Instant::now();
    let r = db.query_readonly_limited(
        "SELECT a.id FROM big a JOIN big b ON a.v = b.v JOIN big c ON b.v = c.v",
        &limits,
    );
    let elapsed = started.elapsed();
    match r {
        Err(DbError::DeadlineExceeded(_)) => {
            assert!(
                elapsed < budget * 4,
                "trip took {elapsed:?}, far beyond the {budget:?} budget"
            );
        }
        Ok(_) => {
            // The machine raced through the whole join under 20ms; that
            // is a pass for promptness, vacuously.
        }
        Err(other) => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_token_fails_immediately() {
    let db = filled_db(10);
    let token = CancelToken::new();
    token.cancel();
    let limits = ExecLimits {
        cancel: Some(token),
        ..ExecLimits::default()
    };
    let err = db
        .query_readonly_limited("SELECT id FROM t ORDER BY grp, id", &limits)
        .unwrap_err();
    match err {
        DbError::Cancelled(m) => assert!(!m.is_empty()),
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn cancel_from_another_thread_stops_a_running_query() {
    let mut db = Database::new();
    db.execute("CREATE TABLE big (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..400 {
        db.execute(&format!("INSERT INTO big VALUES ({i}, {})", i % 5))
            .unwrap();
    }
    let token = CancelToken::new();
    let limits = ExecLimits {
        cancel: Some(token.clone()),
        ..ExecLimits::default()
    };
    let killer = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
        })
    };
    let r = db.query_readonly_limited(
        "SELECT a.id FROM big a JOIN big b ON a.v = b.v JOIN big c ON b.v = c.v",
        &limits,
    );
    killer.join().unwrap();
    match r {
        Err(DbError::Cancelled(_)) => {}
        Ok(_) => {} // finished before the killer fired; nothing to assert
        Err(other) => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn deadline_error_names_the_operator_in_the_message() {
    let db = filled_db(50);
    let limits = ExecLimits {
        deadline: Some(Deadline::at(Instant::now() - Duration::from_millis(1))),
        ..ExecLimits::default()
    };
    let err = db
        .query_readonly_limited("SELECT id FROM t", &limits)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("deadline"),
        "error message should mention the deadline: {msg}"
    );
}

// ---- WAL retry policy over transient storage faults ----

#[test]
fn transient_fsync_faults_are_retried_and_commit_succeeds() {
    let mut db = faulty_db(FaultPlan::transient_sync(2));
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    // Two injected fsync failures, three attempts by default: recovered.
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(!db.status().poisoned);
    assert_eq!(db.query("SELECT id FROM t").unwrap().rows.len(), 1);
}

#[test]
fn retries_exhausted_still_poisons() {
    let mut db = faulty_db(FaultPlan::transient_sync(10));
    db.retry = RetryPolicy {
        attempts: 2,
        backoff_ms: 0,
    };
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap_err();
    assert!(db.status().poisoned);
}

#[test]
fn single_attempt_policy_disables_retry() {
    let mut db = faulty_db(FaultPlan::transient_sync(1));
    db.retry = RetryPolicy {
        attempts: 1,
        backoff_ms: 0,
    };
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap_err();
    assert!(db.status().poisoned);
}

#[test]
fn transient_write_fault_during_checkpoint_is_retried() {
    // `write` is used only by the snapshot path (the WAL appends), so
    // these faults strike the checkpoint — which retries and recovers.
    let mut db = faulty_db(FaultPlan::transient_write(2));
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.checkpoint().unwrap();
    assert!(!db.status().poisoned);
    assert_eq!(db.query("SELECT id FROM t").unwrap().rows.len(), 1);
}
