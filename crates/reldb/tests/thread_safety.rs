//! Cross-thread tests backing the CONC_ALLOWLIST shrink: `StorageBackend`
//! now requires `Send + Sync`, so a `Database` (whose only hostile chain
//! was `durability.backend`) must be movable across threads — the
//! prerequisite for MVCC reads and threaded serving (ROADMAP item 1).

use reldb::{Database, MemBackend, StorageBackend, Value};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn database_and_backend_are_send_sync() {
    assert_send_sync::<Database>();
    assert_send_sync::<Box<dyn StorageBackend>>();
    assert_send_sync::<MemBackend>();
}

#[test]
fn database_moves_across_threads_with_its_data() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
    db.bulk_insert(
        "t",
        vec![
            vec![Value::Int(1), Value::text("alpha")],
            vec![Value::Int(2), Value::text("beta")],
        ],
    )
    .unwrap();

    let handle = std::thread::spawn(move || {
        // The whole handle (catalog, durability, backend) crossed threads;
        // both reads and writes must keep working on the other side.
        db.execute("INSERT INTO t VALUES (3, 'gamma')").unwrap();
        let q = db.query("SELECT COUNT(*) FROM t").unwrap();
        q.scalar().and_then(Value::as_int)
    });
    assert_eq!(handle.join().unwrap(), Some(3));
}
