//! Engine-level integration and property tests: SQL behaviors end-to-end,
//! plus fuzzing of the SQL front end.

use proptest::prelude::*;
use reldb::{Database, DbError, Value};

fn northwind_lite() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT NOT NULL, city TEXT);
         CREATE TABLE orders (id INT PRIMARY KEY, customer INT, total FLOAT, note TEXT);
         CREATE INDEX orders_customer ON orders (customer);
         INSERT INTO customers VALUES
           (1, 'acme', 'berlin'), (2, 'bolt', 'paris'), (3, 'coil', 'berlin'),
           (4, 'dyne', NULL);
         INSERT INTO orders VALUES
           (10, 1, 99.5, 'rush'), (11, 1, 10.0, NULL), (12, 2, 55.0, 'gift'),
           (13, 3, 20.0, NULL), (14, NULL, 5.0, 'walk-in');",
    )
    .unwrap();
    db
}

#[test]
fn join_aggregate_order() {
    let mut db = northwind_lite();
    let q = db
        .query(
            "SELECT c.city, COUNT(*) AS n, SUM(o.total) AS revenue \
             FROM customers c JOIN orders o ON o.customer = c.id \
             GROUP BY c.city ORDER BY revenue DESC",
        )
        .unwrap();
    assert_eq!(q.rows.len(), 2);
    assert_eq!(q.rows[0][0], Value::text("berlin"));
    assert_eq!(q.rows[0][2], Value::Float(129.5));
}

#[test]
fn left_join_keeps_unmatched() {
    let mut db = northwind_lite();
    let q = db
        .query(
            "SELECT c.name, o.id FROM customers c LEFT JOIN orders o \
             ON o.customer = c.id ORDER BY c.name, o.id",
        )
        .unwrap();
    // dyne has no orders but must appear once.
    let dyne: Vec<_> = q
        .rows
        .iter()
        .filter(|r| r[0] == Value::text("dyne"))
        .collect();
    assert_eq!(dyne.len(), 1);
    assert!(dyne[0][1].is_null());
    // Null customer order never matches anyone.
    assert_eq!(q.rows.len(), 5);
}

#[test]
fn index_nested_loop_join_selected_and_correct() {
    let mut db = northwind_lite();
    let (_, phys) = db
        .plan_select(
            "SELECT o.id FROM customers c, orders o \
             WHERE o.customer = c.id AND c.city = 'berlin'",
        )
        .unwrap();
    let text = reldb::plan::physical::explain_physical(&phys);
    assert!(text.contains("IndexNestedLoopJoin"), "{text}");
    let q = db
        .query(
            "SELECT o.id FROM customers c, orders o \
             WHERE o.customer = c.id AND c.city = 'berlin' ORDER BY o.id",
        )
        .unwrap();
    let ids: Vec<i64> = q.rows.iter().filter_map(|r| r[0].as_int()).collect();
    assert_eq!(ids, vec![10, 11, 13]);
}

#[test]
fn inl_join_agrees_with_hash_join() {
    let sql = "SELECT c.name, o.total FROM customers c JOIN orders o \
               ON o.customer = c.id ORDER BY c.name, o.total";
    let mut with_inl = northwind_lite();
    let a = with_inl.query(sql).unwrap();
    let mut without = northwind_lite();
    without.physical.use_index_nl_join = false;
    let b = without.query(sql).unwrap();
    assert_eq!(a, b);
}

#[test]
fn left_join_via_inl_keeps_unmatched() {
    let sql = "SELECT c.name, o.id FROM customers c LEFT JOIN orders o \
               ON o.customer = c.id ORDER BY c.name, o.id";
    let mut with_inl = northwind_lite();
    let a = with_inl.query(sql).unwrap();
    let mut without = northwind_lite();
    without.physical.use_index_nl_join = false;
    let b = without.query(sql).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.rows.len(), 5);
}

#[test]
fn three_valued_logic_in_where() {
    let mut db = northwind_lite();
    // city = 'berlin' is UNKNOWN for dyne (NULL city): excluded.
    let q = db
        .query("SELECT COUNT(*) FROM customers WHERE city = 'berlin'")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(2)));
    // NOT (city = 'berlin') is also UNKNOWN for dyne: still excluded.
    let q = db
        .query("SELECT COUNT(*) FROM customers WHERE NOT (city = 'berlin')")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(1)));
    // IS NULL finds it.
    let q = db
        .query("SELECT name FROM customers WHERE city IS NULL")
        .unwrap();
    assert_eq!(q.rows[0][0], Value::text("dyne"));
}

#[test]
fn distinct_and_union_all() {
    let mut db = northwind_lite();
    let q = db
        .query(
            "SELECT DISTINCT city FROM customers WHERE city IS NOT NULL \
             UNION ALL SELECT 'total' ORDER BY 1",
        )
        .unwrap();
    let vals: Vec<String> = q.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(vals, vec!["berlin", "paris", "total"]);
}

#[test]
fn predicate_pushdown_reduces_plan() {
    let mut db = northwind_lite();
    db.optimizer.predicate_pushdown = true;
    let with_q = db
        .query("EXPLAIN SELECT o.id FROM customers c, orders o WHERE o.customer = c.id AND c.city = 'paris'")
        .unwrap();
    let with_text: String = with_q
        .rows
        .iter()
        .map(|r| r[0].to_string() + "\n")
        .collect();
    // The city predicate must reach the customers access path (index scan
    // or filtered scan below the join).
    assert!(
        with_text.contains("IndexScan customers") || with_text.contains("Filter"),
        "{with_text}"
    );
}

#[test]
fn update_delete_with_index_maintenance() {
    let mut db = northwind_lite();
    db.execute("UPDATE orders SET customer = 2 WHERE id = 13")
        .unwrap();
    let q = db
        .query("SELECT COUNT(*) FROM orders WHERE customer = 2")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(2)));
    db.execute("DELETE FROM orders WHERE customer = 2").unwrap();
    let q = db
        .query("SELECT COUNT(*) FROM orders WHERE customer = 2")
        .unwrap();
    assert_eq!(q.scalar(), Some(&Value::Int(0)));
}

#[test]
fn like_concat_and_num() {
    let mut db = northwind_lite();
    let q = db
        .query("SELECT name || '@' || city FROM customers WHERE name LIKE '%o%' ORDER BY 1")
        .unwrap();
    let vals: Vec<String> = q.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(vals, vec!["bolt@paris", "coil@berlin"]);
    let q = db.query("SELECT num('42') + num('0.5')").unwrap();
    assert_eq!(q.scalar(), Some(&Value::Float(42.5)));
    let q = db.query("SELECT num('nope')").unwrap();
    assert!(q.scalar().unwrap().is_null());
}

#[test]
fn division_by_zero_is_runtime_error() {
    let mut db = northwind_lite();
    let err = db.query("SELECT 1 / 0").unwrap_err();
    assert!(matches!(err, DbError::Runtime(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The SQL front end never panics on arbitrary input.
    #[test]
    fn sql_parser_never_panics(s in "\\PC{0,120}") {
        let _ = reldb::sql::parser::parse_statement(&s);
    }

    /// Keyword soup never panics and either parses or errors cleanly.
    #[test]
    fn sql_keyword_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("JOIN"),
                Just("ON"), Just("GROUP"), Just("BY"), Just("ORDER"), Just("t"),
                Just("x"), Just("1"), Just("'s'"), Just("("), Just(")"),
                Just(","), Just("="), Just("*"), Just("AND"), Just("NULL"),
            ],
            0..24,
        )
    ) {
        let s = parts.join(" ");
        let _ = reldb::sql::parser::parse_statement(&s);
    }

    /// Filtering a table by an indexed equality agrees with a full scan.
    #[test]
    fn index_scan_agrees_with_seq_scan(keys in proptest::collection::vec(0i64..40, 1..120), probe in 0i64..40) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| vec![Value::Int(*k), Value::Int(i as i64)])
            .collect();
        db.bulk_insert("t", rows).unwrap();
        let no_index = db
            .query(&format!("SELECT v FROM t WHERE k = {probe} ORDER BY v"))
            .unwrap();
        db.execute("CREATE INDEX t_k ON t (k)").unwrap();
        let with_index = db
            .query(&format!("SELECT v FROM t WHERE k = {probe} ORDER BY v"))
            .unwrap();
        prop_assert_eq!(no_index.rows, with_index.rows);
    }

    /// ORDER BY sorts correctly for any data.
    #[test]
    fn order_by_sorts(vals in proptest::collection::vec(-1000i64..1000, 0..80)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.bulk_insert("t", vals.iter().map(|v| vec![Value::Int(*v)]).collect())
            .unwrap();
        let q = db.query("SELECT v FROM t ORDER BY v").unwrap();
        let got: Vec<i64> = q.rows.iter().filter_map(|r| r[0].as_int()).collect();
        let mut want = vals.clone();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// COUNT/SUM/MIN/MAX agree with a direct computation.
    #[test]
    fn aggregates_agree_with_model(vals in proptest::collection::vec(-500i64..500, 1..60)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.bulk_insert("t", vals.iter().map(|v| vec![Value::Int(*v)]).collect())
            .unwrap();
        let q = db.query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t").unwrap();
        prop_assert_eq!(&q.rows[0][0], &Value::Int(vals.len() as i64));
        prop_assert_eq!(&q.rows[0][1], &Value::Int(vals.iter().sum::<i64>()));
        prop_assert_eq!(&q.rows[0][2], &Value::Int(*vals.iter().min().unwrap()));
        prop_assert_eq!(&q.rows[0][3], &Value::Int(*vals.iter().max().unwrap()));
    }
}
