//! Table schemas.

use crate::error::{DbError, Result};
use crate::value::{DataType, Value};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lowercase; SQL identifiers are case-insensitive).
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
            nullable: false,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::Catalog(format!("duplicate column {:?}", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Validate and coerce a row against this schema.
    pub fn check_row(&self, mut row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.arity() {
            return Err(DbError::Constraint(format!(
                "expected {} values, got {}",
                self.arity(),
                row.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = std::mem::replace(&mut row[i], Value::Null);
            if v.is_null() {
                if !col.nullable {
                    return Err(DbError::Constraint(format!(
                        "column {:?} is NOT NULL",
                        col.name
                    )));
                }
                continue;
            }
            row[i] = v.coerce(col.ty).ok_or_else(|| {
                DbError::Type(format!("column {:?} expects {}", col.name, col.ty))
            })?;
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Text),
        ])
        .is_err());
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn check_row_coerces_and_validates() {
        let s = schema();
        let row = s
            .check_row(vec![Value::text("7"), Value::Null, Value::Int(3)])
            .unwrap();
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[2], Value::Float(3.0));
    }

    #[test]
    fn check_row_rejects_null_in_not_null() {
        let s = schema();
        assert!(matches!(
            s.check_row(vec![Value::Null, Value::Null, Value::Null]),
            Err(DbError::Constraint(_))
        ));
    }

    #[test]
    fn check_row_rejects_arity_mismatch() {
        let s = schema();
        assert!(s.check_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn check_row_rejects_uncoercible() {
        let s = schema();
        assert!(s
            .check_row(vec![Value::text("x"), Value::Null, Value::Null])
            .is_err());
    }
}
