//! The `Database` façade: parse → bind → optimize → plan → execute.

use xmlrel_obs::{metrics, trace};

use crate::catalog::Catalog;
use crate::error::{DbError, Result};
use crate::exec::{
    build_executor_limited, run_profiled, run_to_vec_limited, ExecLimits, ExecProfile,
};
use crate::plan::expr::value_to_bool;
use crate::plan::logical::{bind_expr, bind_select, LogicalPlan, OutputCol, Scope};
use crate::plan::optimizer::{optimize_checked, OptimizerOptions};
use crate::plan::physical::{explain_physical, plan_physical, PhysicalOptions, PhysicalPlan};
use crate::plan::validate::ensure_valid_logical;
use crate::schema::{Column, Schema};
use crate::snapshot::{encode_snapshot, parse_snapshot_gen, snapshot_file, SNAPSHOT_TMP};
use crate::sql::ast::{ColumnDef, Expr, SelectStmt, Statement};
use crate::sql::parser::{parse_script, parse_statement};
use crate::storage::{FileBackend, StorageBackend};
use crate::table::Table;
use crate::value::{Row, Value};
use crate::wal::{encode_frame, read_frames, WalRecord, WAL_FILE};

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// Rows from a SELECT (or EXPLAIN).
    Rows(QueryResult),
    /// Row count from DDL/DML.
    Affected(usize),
}

impl ExecResult {
    /// Unwrap the rows of a SELECT result.
    pub fn rows(self) -> QueryResult {
        match self {
            ExecResult::Rows(q) => q,
            ExecResult::Affected(n) => QueryResult {
                columns: vec!["affected".into()],
                rows: vec![vec![Value::Int(n as i64)]],
            },
        }
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 result.
    pub fn scalar(&self) -> Option<&Value> {
        match self.rows.as_slice() {
            [row] => match row.as_slice() {
                [v] => Some(v),
                _ => None,
            },
            _ => None,
        }
    }

    /// A column's values by name.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let i = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| &r[i]).collect())
    }
}

/// Durability state of a persistent database: the backend, plus the
/// generation stamped into WAL frames (matching the current snapshot).
#[derive(Debug)]
struct Durability {
    backend: Box<dyn StorageBackend>,
    gen: u64,
    /// Set after a failed commit: memory and disk have diverged, so
    /// further writes are refused until the database is reopened.
    poisoned: bool,
}

/// Bounded retry-with-backoff for transient storage faults.
///
/// Applied only to idempotent steps of the durability protocol — the WAL
/// fsync after a successful append, and the whole-file snapshot-tmp
/// write+sync (re-running either repeats the same bytes). A WAL *append*
/// is never retried: after a torn append the retry could duplicate frame
/// bytes, so append failures poison immediately as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            backoff_ms: 1,
        }
    }
}

/// Run `op` under `policy`, retrying transient [`DbError::Io`] failures
/// with doubling backoff. Non-IO errors (e.g. [`DbError::Corrupt`]) are
/// never retried. Each retry bumps the `storage_retries_total` counter.
fn retry_io(policy: RetryPolicy, mut op: impl FnMut() -> Result<()>) -> Result<()> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) => {
                attempt += 1;
                if attempt >= policy.attempts.max(1) || !matches!(e, DbError::Io(_)) {
                    return Err(e);
                }
                metrics::counter_inc("storage_retries_total");
                std::thread::sleep(std::time::Duration::from_millis(
                    policy.backoff_ms << (attempt - 1).min(16),
                ));
            }
        }
    }
}

/// A point-in-time durability/health summary of a [`Database`], cheap to
/// compute and safe to render on a monitoring endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStatus {
    /// Whether writes persist (a storage backend is attached).
    pub durable: bool,
    /// Generation of the current snapshot (0 before the first
    /// checkpoint; meaningless for in-memory databases).
    pub snapshot_generation: u64,
    /// True after a failed commit left memory ahead of disk; the
    /// database refuses further writes until reopened.
    pub poisoned: bool,
    /// Number of tables in the catalog.
    pub tables: usize,
}

/// An embedded relational database.
#[derive(Debug, Default)]
pub struct Database {
    /// The catalog (exposed for storage accounting and direct bulk loads).
    pub catalog: Catalog,
    /// Logical optimizer knobs.
    pub optimizer: OptimizerOptions,
    /// Physical planner knobs.
    pub physical: PhysicalOptions,
    /// Execution resource limits (unlimited by default).
    pub limits: ExecLimits,
    /// Retry policy for transient storage faults in the WAL/snapshot
    /// write path.
    pub retry: RetryPolicy,
    /// Durable storage; `None` for a purely in-memory database.
    durability: Option<Durability>,
    /// Commit counter: bumped once per committed mutation, so two
    /// databases (or a database and its snapshot) with equal epochs hold
    /// the same logical state.
    epoch: u64,
    /// Set on handles produced by [`Database::snapshot`]: the catalog is a
    /// point-in-time copy and all mutations are refused.
    pinned: bool,
}

impl Database {
    /// An empty database with default options.
    pub fn new() -> Database {
        Database::default()
    }

    /// Open (or create) a durable database in a directory on disk,
    /// recovering from the latest snapshot plus the write-ahead log.
    pub fn open(path: impl Into<std::path::PathBuf>) -> Result<Database> {
        Database::open_with_backend(Box::new(FileBackend::open(path)?))
    }

    /// Open (or create) a durable database over any storage backend.
    ///
    /// Recovery: load the highest-generation snapshot that validates,
    /// then replay WAL frames of that generation in order. Replay stops at
    /// the first torn, checksum-failing, or stale-generation frame and
    /// truncates the log there, so the database always comes back at a
    /// committed statement boundary — never mid-statement, never with a
    /// panic on damaged bytes.
    pub fn open_with_backend(mut backend: Box<dyn StorageBackend>) -> Result<Database> {
        // 1. Latest valid snapshot (ignore `snapshot.tmp` and damaged files).
        let mut gens: Vec<u64> = backend
            .list()?
            .iter()
            .filter_map(|n| parse_snapshot_gen(n))
            .collect();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        let any_snapshot = !gens.is_empty();
        let mut gen = 0;
        let mut catalog = Catalog::new();
        let mut loaded = false;
        for g in gens {
            if let Some(buf) = backend.read(&snapshot_file(g))? {
                if let Ok((file_gen, c)) = crate::snapshot::decode_snapshot(&buf) {
                    if file_gen == g {
                        gen = g;
                        catalog = c;
                        loaded = true;
                        break;
                    }
                }
            }
        }
        // A snapshot was published but none decodes: the data existed and
        // is now unreadable. Refuse to present an empty database.
        if any_snapshot && !loaded {
            return Err(DbError::Corrupt(
                "no snapshot file decodes cleanly; refusing to open as empty".into(),
            ));
        }
        // 2. Replay the WAL prefix belonging to that snapshot.
        let wal_buf = backend.read(WAL_FILE)?.unwrap_or_default();
        let (frames, _) = read_frames(&wal_buf);
        let mut keep = 0usize;
        for frame in frames {
            if frame.gen != gen {
                // Written against an older snapshot whose effects the
                // current snapshot already contains; replaying would
                // double-apply.
                break;
            }
            apply_records(&mut catalog, &frame.records)?;
            keep = frame.end;
        }
        // 3. Drop everything past the last replayable frame.
        if keep < wal_buf.len() {
            backend.truncate(WAL_FILE, keep as u64)?;
        }
        Ok(Database {
            catalog,
            durability: Some(Durability {
                backend,
                gen,
                poisoned: false,
            }),
            ..Database::default()
        })
    }

    /// Whether this database persists its writes.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The commit epoch: bumped once per committed mutation. Reads through
    /// a [`snapshot`](Database::snapshot) report the epoch the snapshot
    /// was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this handle is a read-only point-in-time snapshot.
    pub fn is_snapshot(&self) -> bool {
        self.pinned
    }

    /// A read-only point-in-time snapshot of this database.
    ///
    /// Cheap: the catalog clone shares every table behind an `Arc`
    /// (copy-on-write — see [`Catalog`] docs), and the durability layer is
    /// not carried over, so a snapshot can be taken per query and dropped
    /// when the query finishes. The snapshot keeps answering reads at its
    /// epoch no matter what later commits do to the parent; any mutation
    /// through it fails with [`DbError::ReadOnlySnapshot`].
    pub fn snapshot(&self) -> Database {
        Database {
            catalog: self.catalog.clone(),
            optimizer: self.optimizer,
            physical: self.physical,
            limits: self.limits.clone(),
            retry: self.retry,
            durability: None,
            epoch: self.epoch,
            pinned: true,
        }
    }

    /// Durability/health summary for monitoring (`/healthz`).
    pub fn status(&self) -> DbStatus {
        DbStatus {
            durable: self.durability.is_some(),
            snapshot_generation: self.durability.as_ref().map_or(0, |d| d.gen),
            poisoned: self.durability.as_ref().is_some_and(|d| d.poisoned),
            tables: self.catalog.table_names().len(),
        }
    }

    /// Serialize the catalog to a new snapshot and truncate the WAL.
    ///
    /// Protocol: write `snapshot.tmp`, fsync, rename to
    /// `snapshot.<gen+1>`, truncate the log, delete the old snapshot. A
    /// crash anywhere in between leaves a recoverable state (see the
    /// `snapshot` module docs). No-op for in-memory databases.
    pub fn checkpoint(&mut self) -> Result<()> {
        let _span = trace::span("checkpoint", "storage");
        let started = std::time::Instant::now();
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if d.poisoned {
            return Err(DbError::Io(
                "durability poisoned by an earlier failed commit; reopen the database".into(),
            ));
        }
        let next_gen = d.gen + 1;
        let bytes = encode_snapshot(next_gen, &self.catalog)?;
        // Writing + syncing the tmp file is idempotent (same bytes, not
        // yet published), so transient IO faults are retried here.
        retry_io(self.retry, || {
            d.backend.write(SNAPSHOT_TMP, &bytes)?;
            d.backend.sync(SNAPSHOT_TMP)
        })?;
        let published = snapshot_file(next_gen);
        d.backend.rename(SNAPSHOT_TMP, &published)?;
        // The snapshot is now published: recovery will prefer it over both
        // the old snapshot and the old-generation WAL frames. Any failure
        // past this point leaves the in-memory bookkeeping out of step with
        // disk, so treat it like a failed commit and poison until reopen.
        let old = snapshot_file(d.gen);
        let res = d
            .backend
            .sync(&published)
            .and_then(|()| d.backend.truncate(WAL_FILE, 0))
            .and_then(|()| d.backend.remove(&old));
        match res {
            Ok(()) => {
                d.gen = next_gen;
                metrics::counter_inc("snapshots_total");
                metrics::observe_us("snapshot_duration_us", started.elapsed().as_micros() as u64);
                Ok(())
            }
            Err(e) => {
                d.poisoned = true;
                Err(e)
            }
        }
    }

    /// Append one statement's records to the WAL and flush. Called after
    /// the in-memory mutation succeeded; a failure here poisons the
    /// durability state (memory is ahead of disk) until reopen.
    fn commit(&mut self, records: Vec<WalRecord>) -> Result<()> {
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        if records.is_empty() {
            return Ok(());
        }
        // The in-memory mutation already happened; any failure from here
        // on (including an unencodable frame) leaves memory ahead of disk.
        // The append is never retried (a torn append followed by a second
        // append would duplicate frame bytes); the fsync is idempotent and
        // retried for transient faults.
        let retry = self.retry;
        let res = encode_frame(d.gen, &records).and_then(|frame| {
            metrics::counter_add("wal_bytes_total", frame.len() as u64);
            metrics::counter_inc("wal_frames_total");
            d.backend
                .append(WAL_FILE, &frame)
                .and_then(|()| retry_io(retry, || d.backend.sync(WAL_FILE)))
        });
        if res.is_err() {
            d.poisoned = true;
        }
        res
    }

    /// Refuse mutations once a commit has failed (the in-memory state is
    /// ahead of the log, and writing more would corrupt the sequence) or
    /// when this handle is a pinned read-only snapshot.
    fn check_writable(&self) -> Result<()> {
        if self.pinned {
            return Err(DbError::ReadOnlySnapshot(
                "this handle is a point-in-time snapshot; run mutations on the live database"
                    .into(),
            ));
        }
        match &self.durability {
            Some(d) if d.poisoned => Err(DbError::Io(
                "durability poisoned by an earlier failed commit; reopen the database".into(),
            )),
            _ => Ok(()),
        }
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let _span = trace::span("db.execute", "sql");
        let stmt = {
            let _parse = trace::span("sql.parse", "sql");
            parse_statement(sql)?
        };
        self.execute_stmt(&stmt)
    }

    /// Execute a semicolon-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecResult> {
        let _span = trace::span("db.execute_script", "sql");
        let stmts = {
            let _parse = trace::span("sql.parse", "sql");
            parse_script(sql)?
        };
        let mut last = ExecResult::Affected(0);
        for s in &stmts {
            last = self.execute_stmt(s)?;
        }
        Ok(last)
    }

    /// Execute a SELECT and return its rows (errors on non-SELECT).
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let _span = trace::span("db.query", "sql");
        match self.execute(sql)? {
            ExecResult::Rows(q) => Ok(q),
            ExecResult::Affected(_) => {
                Err(DbError::Unsupported("query() requires a SELECT".into()))
            }
        }
    }

    /// Execute a SELECT without mutable access (reads only).
    // lint:allow(no-untraced-entrypoint): delegates to the span-opening _limited variant
    pub fn query_readonly(&self, sql: &str) -> Result<QueryResult> {
        self.query_readonly_limited(sql, &self.limits)
    }

    /// [`query_readonly`](Database::query_readonly) with per-request
    /// limits (e.g. a caller-supplied deadline or cancel token) instead of
    /// the database-wide defaults.
    pub fn query_readonly_limited(&self, sql: &str, limits: &ExecLimits) -> Result<QueryResult> {
        let _span = trace::span("db.query_readonly", "sql");
        let (logical, physical) = self.plan_select(sql)?;
        let names: Vec<String> = logical.schema().into_iter().map(|c| c.name).collect();
        let rows = {
            let _exec = trace::span("execute", "sql");
            run_to_vec_limited(&physical, &self.catalog, limits)?
        };
        Ok(QueryResult {
            columns: names,
            rows,
        })
    }

    /// Execute a SELECT with per-operator profiling. Returns the rows and
    /// the [`ExecProfile`] tree (estimated vs. actual cardinality, probes,
    /// comparisons, buffer bytes, wall time per operator). When execution
    /// fails — e.g. an [`ExecLimits`] trip — the error carries on, but the
    /// profile of the partial run is what `EXPLAIN ANALYZE` renders.
    // lint:allow(no-untraced-entrypoint): delegates to the span-opening _limited variant
    pub fn query_profiled(&self, sql: &str) -> Result<(QueryResult, ExecProfile)> {
        self.query_profiled_limited(sql, &self.limits)
    }

    /// [`query_profiled`](Database::query_profiled) with per-request
    /// limits instead of the database-wide defaults.
    pub fn query_profiled_limited(
        &self,
        sql: &str,
        limits: &ExecLimits,
    ) -> Result<(QueryResult, ExecProfile)> {
        let _span = trace::span("db.query_profiled", "sql");
        let (logical, physical) = self.plan_select(sql)?;
        let names: Vec<String> = logical.schema().into_iter().map(|c| c.name).collect();
        let run = {
            let _exec = trace::span("execute", "sql");
            run_profiled(&physical, &self.catalog, limits)?
        };
        let rows = run.rows?;
        Ok((
            QueryResult {
                columns: names,
                rows,
            },
            run.profile,
        ))
    }

    /// Plan a SELECT without executing it (benchmarking translation cost,
    /// join counting).
    pub fn plan_select(&self, sql: &str) -> Result<(LogicalPlan, PhysicalPlan)> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(DbError::Unsupported(
                "plan_select() requires a SELECT".into(),
            ));
        };
        self.plan_bound_select(&sel)
    }

    /// Bind, validate, optimize, and lower a SELECT. The bound plan is
    /// validated against the catalog before any rewrite runs; debug builds
    /// additionally re-validate after each optimizer stage (inside
    /// [`optimize_checked`]) and validate the physical plan, so planner
    /// rewrites are proven invariant-preserving under the test suite.
    fn plan_bound_select(&self, sel: &SelectStmt) -> Result<(LogicalPlan, PhysicalPlan)> {
        let _span = trace::span("plan", "sql");
        let bound = bind_select(&self.catalog, sel)?;
        ensure_valid_logical(&self.catalog, &bound)?;
        let logical = optimize_checked(bound, &self.optimizer, &self.catalog)?;
        let physical = plan_physical(&self.catalog, &logical, &self.physical)?;
        #[cfg(debug_assertions)]
        crate::plan::validate::ensure_valid_physical(&self.catalog, &physical)?;
        Ok((logical, physical))
    }

    fn execute_stmt(&mut self, stmt: &Statement) -> Result<ExecResult> {
        let durable = self.durability.is_some();
        let mut wal: Vec<WalRecord> = Vec::new();
        let result = match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                if *if_not_exists && self.catalog.has_table(name) {
                    ExecResult::Affected(0)
                } else {
                    self.check_writable()?;
                    let schema = Schema::new(
                        columns
                            .iter()
                            .map(|c: &ColumnDef| Column {
                                name: c.name.clone(),
                                ty: c.ty,
                                nullable: !c.not_null,
                            })
                            .collect(),
                    )?;
                    self.catalog.create_table(name, schema.clone())?;
                    if durable {
                        wal.push(WalRecord::CreateTable {
                            name: name.to_ascii_lowercase(),
                            schema,
                        });
                    }
                    // PRIMARY KEY columns get a unique index.
                    let pk: Vec<String> = columns
                        .iter()
                        .filter(|c| c.primary_key)
                        .map(|c| c.name.clone())
                        .collect();
                    if !pk.is_empty() {
                        let resolved: std::result::Result<Vec<usize>, String> = {
                            let schema = &self.catalog.table(name)?.schema;
                            pk.iter()
                                .map(|c| schema.index_of(c).ok_or_else(|| c.clone()))
                                .collect()
                        };
                        let offsets = match resolved {
                            Ok(offsets) => offsets,
                            Err(col) => {
                                // Keep the statement atomic: no table without
                                // its primary-key index.
                                self.catalog.drop_table(name, true)?;
                                return Err(DbError::Runtime(format!(
                                    "PRIMARY KEY column '{col}' is not defined by the table"
                                )));
                            }
                        };
                        let table = self.catalog.table_mut(name)?;
                        let idx_name = format!("{name}_pk").to_ascii_lowercase();
                        if let Err(e) = table.create_index(idx_name.clone(), offsets.clone(), true)
                        {
                            // Keep the statement atomic: no table without
                            // its primary-key index.
                            self.catalog.drop_table(name, true)?;
                            return Err(e);
                        }
                        if durable {
                            wal.push(WalRecord::CreateIndex {
                                table: name.to_ascii_lowercase(),
                                name: idx_name,
                                columns: offsets,
                                unique: true,
                            });
                        }
                    }
                    ExecResult::Affected(0)
                }
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => {
                self.check_writable()?;
                let t = self.catalog.table_mut(table)?;
                let offsets: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        t.schema
                            .index_of(c)
                            .ok_or_else(|| DbError::Binding(format!("no column {c:?}")))
                    })
                    .collect::<Result<_>>()?;
                t.create_index(name.clone(), offsets.clone(), *unique)?;
                if durable {
                    wal.push(WalRecord::CreateIndex {
                        table: t.name.clone(),
                        name: name.to_ascii_lowercase(),
                        columns: offsets,
                        unique: *unique,
                    });
                }
                ExecResult::Affected(0)
            }
            Statement::DropTable { name, if_exists } => {
                self.check_writable()?;
                let existed = self.catalog.has_table(name);
                self.catalog.drop_table(name, *if_exists)?;
                if durable && existed {
                    wal.push(WalRecord::DropTable {
                        name: name.to_ascii_lowercase(),
                    });
                }
                ExecResult::Affected(0)
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                self.check_writable()?;
                let t = self.catalog.table(table)?;
                let arity = t.schema.arity();
                // Map the provided column list to schema positions.
                let positions: Vec<usize> = match columns {
                    None => (0..arity).collect(),
                    Some(cols) => cols
                        .iter()
                        .map(|c| {
                            t.schema
                                .index_of(c)
                                .ok_or_else(|| DbError::Binding(format!("no column {c:?}")))
                        })
                        .collect::<Result<_>>()?,
                };
                let empty: Row = Vec::new();
                let mut materialized: Vec<Row> = Vec::with_capacity(rows.len());
                for exprs in rows {
                    if exprs.len() != positions.len() {
                        return Err(DbError::Constraint(format!(
                            "INSERT expects {} values, got {}",
                            positions.len(),
                            exprs.len()
                        )));
                    }
                    let mut row: Row = vec![Value::Null; arity];
                    for (pos, e) in positions.iter().zip(exprs) {
                        let scope = Scope::default();
                        let bound = bind_literal_expr(e, &scope)?;
                        row[*pos] = bound.eval(&empty)?;
                    }
                    materialized.push(row);
                }
                let t = self.catalog.table_mut(table)?;
                let n = if durable {
                    let n = t.insert_atomic(materialized.clone())?;
                    if !materialized.is_empty() {
                        wal.push(WalRecord::Insert {
                            table: t.name.clone(),
                            rows: materialized,
                        });
                    }
                    n
                } else {
                    t.insert_atomic(materialized)?
                };
                ExecResult::Affected(n)
            }
            Statement::Select(sel) => {
                let (logical, physical) = self.plan_bound_select(sel)?;
                let names: Vec<String> = logical
                    .schema()
                    .into_iter()
                    .map(|c: OutputCol| c.name)
                    .collect();
                let rows = {
                    let _exec = trace::span("execute", "sql");
                    run_to_vec_limited(&physical, &self.catalog, &self.limits)?
                };
                ExecResult::Rows(QueryResult {
                    columns: names,
                    rows,
                })
            }
            Statement::Delete { table, predicate } => {
                self.check_writable()?;
                let t = self.catalog.table(table)?;
                let scope = scope_of_table(t);
                let pred = match predicate {
                    Some(p) => Some(bind_expr(p, &scope)?),
                    None => None,
                };
                let victims: Vec<usize> = t
                    .scan()
                    .filter_map(|(rid, row)| match &pred {
                        None => Some(Ok(rid)),
                        Some(p) => match p.eval(row) {
                            Ok(v) if value_to_bool(&v) == Some(true) => Some(Ok(rid)),
                            Ok(_) => None,
                            Err(e) => Some(Err(e)),
                        },
                    })
                    .collect::<Result<_>>()?;
                let t = self.catalog.table_mut(table)?;
                let mut deleted: Vec<usize> = Vec::new();
                for rid in victims {
                    if t.delete(rid) {
                        deleted.push(rid);
                    }
                }
                let n = deleted.len();
                if durable && !deleted.is_empty() {
                    wal.push(WalRecord::Delete {
                        table: t.name.clone(),
                        rids: deleted,
                    });
                }
                ExecResult::Affected(n)
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                self.check_writable()?;
                let t = self.catalog.table(table)?;
                let scope = scope_of_table(t);
                let pred = match predicate {
                    Some(p) => Some(bind_expr(p, &scope)?),
                    None => None,
                };
                let mut bound_assignments = Vec::new();
                for (col, e) in assignments {
                    let off = t
                        .schema
                        .index_of(col)
                        .ok_or_else(|| DbError::Binding(format!("no column {col:?}")))?;
                    bound_assignments.push((off, bind_expr(e, &scope)?));
                }
                let mut updates: Vec<(usize, Row)> = Vec::new();
                for (rid, row) in t.scan() {
                    let keep = match &pred {
                        None => true,
                        Some(p) => value_to_bool(&p.eval(row)?) == Some(true),
                    };
                    if !keep {
                        continue;
                    }
                    let mut new_row = row.clone();
                    for (off, e) in &bound_assignments {
                        new_row[*off] = e.eval(row)?;
                    }
                    updates.push((rid, new_row));
                }
                let t = self.catalog.table_mut(table)?;
                apply_updates_atomic(t, &updates)?;
                if durable {
                    for (rid, row) in &updates {
                        wal.push(WalRecord::Update {
                            table: t.name.clone(),
                            rid: *rid,
                            row: row.clone(),
                        });
                    }
                }
                ExecResult::Affected(updates.len())
            }
            Statement::Explain { analyze, stmt } => {
                let Statement::Select(sel) = &**stmt else {
                    return Err(DbError::Unsupported("EXPLAIN supports SELECT only".into()));
                };
                let (_, physical) = self.plan_bound_select(sel)?;
                let text = if *analyze {
                    let run = {
                        let _exec = trace::span("execute", "sql");
                        run_profiled(&physical, &self.catalog, &self.limits)?
                    };
                    // A failed execution (say, a limit trip) still renders
                    // the partial profile — that is when it matters most.
                    let mut t = run.profile.render(true);
                    if let Err(e) = &run.rows {
                        t.push_str(&format!("error: {e}\n"));
                    }
                    t
                } else {
                    explain_physical(&physical)
                };
                let rows = text.lines().map(|l| vec![Value::text(l)]).collect();
                ExecResult::Rows(QueryResult {
                    columns: vec!["plan".into()],
                    rows,
                })
            }
        };
        self.commit(wal)?;
        if !matches!(stmt, Statement::Select(_) | Statement::Explain { .. }) {
            self.epoch += 1;
        }
        Ok(result)
    }

    /// Bulk-load rows into a table without SQL overhead (the shredders'
    /// fast path). All-or-nothing, and logged to the WAL when durable.
    pub fn bulk_insert(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        // The shred phase is a long sequence of bulk inserts; polling the
        // database-wide limits here makes loading cancellable and
        // deadline-bounded at batch granularity.
        self.limits.poll("bulk insert")?;
        self.check_writable()?;
        if self.durability.is_some() {
            let (n, record) = {
                let t = self.catalog.table_mut(table)?;
                let n = t.insert_atomic(rows.clone())?;
                (
                    n,
                    WalRecord::Insert {
                        table: t.name.clone(),
                        rows,
                    },
                )
            };
            if n > 0 {
                self.commit(vec![record])?;
                self.epoch += 1;
            }
            Ok(n)
        } else {
            let n = self.catalog.table_mut(table)?.insert_atomic(rows)?;
            if n > 0 {
                self.epoch += 1;
            }
            Ok(n)
        }
    }

    /// Stream a query through a callback without materializing all rows.
    // lint:allow(no-untraced-entrypoint): delegates to the span-opening _limited variant
    pub fn query_streaming(
        &self,
        sql: &str,
        on_row: impl FnMut(Row) -> Result<()>,
    ) -> Result<usize> {
        self.query_streaming_limited(sql, &self.limits, on_row)
    }

    /// [`query_streaming`](Database::query_streaming) with per-request
    /// limits instead of the database-wide defaults.
    pub fn query_streaming_limited(
        &self,
        sql: &str,
        limits: &ExecLimits,
        mut on_row: impl FnMut(Row) -> Result<()>,
    ) -> Result<usize> {
        let _span = trace::span("db.query_streaming", "sql");
        let (_, physical) = self.plan_select(sql)?;
        let mut exec = build_executor_limited(&physical, &self.catalog, limits)?;
        let root = crate::exec::Meter::new(limits, false);
        let mut n = 0;
        while let Some(row) = exec.next()? {
            root.poll("streaming result")?;
            on_row(row)?;
            n += 1;
        }
        Ok(n)
    }
}

/// Apply a batch of updates all-or-nothing: on failure, already-applied
/// updates are rolled back (in reverse, bypassing constraint checks —
/// the restored state is the previously-validated one).
fn apply_updates_atomic(t: &mut Table, updates: &[(usize, Row)]) -> Result<()> {
    let mut done: Vec<(usize, Row)> = Vec::with_capacity(updates.len());
    for (rid, row) in updates {
        let old = match t.get(*rid) {
            Some(r) => r.clone(),
            None => {
                rollback_updates(t, done);
                return Err(DbError::Runtime(format!("row {rid} is not live")));
            }
        };
        if let Err(e) = t.update(*rid, row.clone()) {
            rollback_updates(t, done);
            return Err(e);
        }
        done.push((*rid, old));
    }
    Ok(())
}

fn rollback_updates(t: &mut Table, done: Vec<(usize, Row)>) {
    for (rid, old) in done.into_iter().rev() {
        t.force_update(rid, old);
    }
}

/// Replay one WAL frame's records onto a catalog. A frame that passed its
/// checksum but no longer applies indicates tampering or a format bug, so
/// the failure surfaces as [`DbError::Corrupt`].
fn apply_records(catalog: &mut Catalog, records: &[WalRecord]) -> Result<()> {
    for rec in records {
        let res = match rec {
            WalRecord::CreateTable { name, schema } => catalog.create_table(name, schema.clone()),
            WalRecord::CreateIndex {
                table,
                name,
                columns,
                unique,
            } => catalog
                .table_mut(table)
                .and_then(|t| t.create_index(name.clone(), columns.clone(), *unique)),
            WalRecord::DropTable { name } => catalog.drop_table(name, true),
            WalRecord::Insert { table, rows } => catalog
                .table_mut(table)
                .and_then(|t| t.insert_atomic(rows.clone()).map(|_| ())),
            WalRecord::Delete { table, rids } => catalog.table_mut(table).map(|t| {
                for &rid in rids {
                    t.delete(rid);
                }
            }),
            WalRecord::Update { table, rid, row } => catalog
                .table_mut(table)
                .and_then(|t| t.update(*rid, row.clone())),
        };
        res.map_err(|e| DbError::Corrupt(format!("WAL replay failed: {e}")))?;
    }
    Ok(())
}

fn scope_of_table(t: &crate::table::Table) -> Scope {
    let plan = LogicalPlan::Scan {
        table: t.name.clone(),
        cols: t
            .schema
            .columns
            .iter()
            .map(|c| OutputCol {
                qualifier: Some(t.name.clone()),
                name: c.name.clone(),
            })
            .collect(),
    };
    Scope::of(&plan)
}

/// Bind an expression that may not reference any columns (INSERT values).
fn bind_literal_expr(e: &Expr, scope: &Scope) -> Result<crate::plan::expr::ScalarExpr> {
    bind_expr(e, scope)
        .map_err(|_| DbError::Binding("INSERT values must be literal expressions".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, dept TEXT, salary INT);
             INSERT INTO emp VALUES
               (1, 'ada', 'eng', 120),
               (2, 'bob', 'eng', 100),
               (3, 'cho', 'ops', 90),
               (4, 'dee', 'ops', 95),
               (5, 'eve', NULL, 80);",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let mut db = db_with_data();
        let q = db
            .query("SELECT name FROM emp WHERE salary > 95 ORDER BY name")
            .unwrap();
        assert_eq!(q.columns, vec!["name"]);
        let names: Vec<String> = q.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["ada", "bob"]);
    }

    #[test]
    fn aggregation_group_by_having() {
        let mut db = db_with_data();
        let q = db
            .query(
                "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp \
                 WHERE dept IS NOT NULL GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept",
            )
            .unwrap();
        assert_eq!(q.rows.len(), 2);
        assert_eq!(
            q.rows[0],
            vec![Value::text("eng"), Value::Int(2), Value::Int(220)]
        );
        assert_eq!(
            q.rows[1],
            vec![Value::text("ops"), Value::Int(2), Value::Int(185)]
        );
    }

    #[test]
    fn joins_inner_and_left() {
        let mut db = db_with_data();
        db.execute_script(
            "CREATE TABLE dept (code TEXT, boss TEXT);
             INSERT INTO dept VALUES ('eng', 'ada'), ('hr', 'zoe');",
        )
        .unwrap();
        let inner = db
            .query("SELECT e.name FROM emp e JOIN dept d ON e.dept = d.code ORDER BY e.name")
            .unwrap();
        assert_eq!(inner.rows.len(), 2);
        let left = db
            .query(
                "SELECT e.name, d.boss FROM emp e LEFT JOIN dept d ON e.dept = d.code \
                 ORDER BY e.name",
            )
            .unwrap();
        assert_eq!(left.rows.len(), 5);
        // ops and NULL-dept employees have NULL boss.
        let cho = left
            .rows
            .iter()
            .find(|r| r[0] == Value::text("cho"))
            .unwrap();
        assert!(cho[1].is_null());
    }

    #[test]
    fn self_join_with_aliases() {
        let mut db = db_with_data();
        let q = db
            .query(
                "SELECT a.name, b.name FROM emp a JOIN emp b ON a.dept = b.dept \
                 WHERE a.id < b.id ORDER BY a.name",
            )
            .unwrap();
        assert_eq!(q.rows.len(), 2); // (ada,bob), (cho,dee)
    }

    #[test]
    fn index_scan_used_for_pk_lookup() {
        let mut db = db_with_data();
        let q = db
            .query("EXPLAIN SELECT name FROM emp WHERE id = 3")
            .unwrap();
        let plan: String = q.rows.iter().map(|r| r[0].to_string() + "\n").collect();
        assert!(plan.contains("IndexScan"), "{plan}");
        let r = db.query("SELECT name FROM emp WHERE id = 3").unwrap();
        assert_eq!(r.rows[0][0], Value::text("cho"));
    }

    #[test]
    fn secondary_index_and_range() {
        let mut db = db_with_data();
        db.execute("CREATE INDEX by_salary ON emp (salary)")
            .unwrap();
        let q = db
            .query("EXPLAIN SELECT name FROM emp WHERE salary BETWEEN 90 AND 100")
            .unwrap();
        let plan: String = q.rows.iter().map(|r| r[0].to_string() + "\n").collect();
        assert!(plan.contains("IndexScan"), "{plan}");
        let r = db
            .query("SELECT name FROM emp WHERE salary BETWEEN 90 AND 100 ORDER BY salary")
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|x| x[0].to_string()).collect();
        assert_eq!(names, vec!["cho", "dee", "bob"]);
    }

    #[test]
    fn delete_and_update() {
        let mut db = db_with_data();
        let n = db
            .execute("UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'")
            .unwrap();
        assert_eq!(n, ExecResult::Affected(2));
        let q = db
            .query("SELECT salary FROM emp WHERE name = 'ada'")
            .unwrap();
        assert_eq!(q.rows[0][0], Value::Int(130));
        let n = db.execute("DELETE FROM emp WHERE dept IS NULL").unwrap();
        assert_eq!(n, ExecResult::Affected(1));
        let q = db.query("SELECT COUNT(*) FROM emp").unwrap();
        assert_eq!(q.scalar(), Some(&Value::Int(4)));
    }

    #[test]
    fn unique_violation_via_sql() {
        let mut db = db_with_data();
        let err = db
            .execute("INSERT INTO emp VALUES (1, 'dup', 'x', 0)")
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
    }

    #[test]
    fn union_all_distinct_limit() {
        let mut db = db_with_data();
        let q = db
            .query(
                "SELECT dept FROM emp WHERE dept IS NOT NULL \
                 UNION ALL SELECT dept FROM emp WHERE dept = 'eng' ORDER BY 1",
            )
            .unwrap();
        assert_eq!(q.rows.len(), 6);
        let q = db
            .query("SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept LIMIT 1")
            .unwrap();
        assert_eq!(q.rows, vec![vec![Value::text("eng")]]);
    }

    #[test]
    fn subquery_pipeline() {
        let mut db = db_with_data();
        let q = db
            .query(
                "SELECT d, n FROM (SELECT dept AS d, COUNT(*) AS n FROM emp \
                 WHERE dept IS NOT NULL GROUP BY dept) s WHERE n > 1 ORDER BY d",
            )
            .unwrap();
        assert_eq!(q.rows.len(), 2);
    }

    #[test]
    fn scalar_no_from() {
        let mut db = Database::new();
        let q = db.query("SELECT 2 + 3 * 4 AS v").unwrap();
        assert_eq!(q.scalar(), Some(&Value::Int(14)));
    }

    #[test]
    fn avg_and_empty_aggregate() {
        let mut db = db_with_data();
        let q = db
            .query("SELECT AVG(salary) FROM emp WHERE dept = 'eng'")
            .unwrap();
        assert_eq!(q.scalar(), Some(&Value::Float(110.0)));
        let q = db
            .query("SELECT COUNT(*), SUM(salary) FROM emp WHERE dept = 'none'")
            .unwrap();
        assert_eq!(q.rows[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn like_and_functions() {
        let mut db = db_with_data();
        let q = db
            .query("SELECT UPPER(name) FROM emp WHERE name LIKE '_o%' ORDER BY name")
            .unwrap();
        let names: Vec<String> = q.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["BOB"]);
    }

    #[test]
    fn streaming_query() {
        let db = {
            let mut d = db_with_data();
            d.execute("CREATE INDEX by_dept ON emp (dept)").unwrap();
            d
        };
        let mut count = 0;
        let n = db
            .query_streaming("SELECT name FROM emp WHERE dept = 'eng'", |_| {
                count += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(count, 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = db_with_data();
        db.execute("INSERT INTO emp (id, name) VALUES (9, 'zed')")
            .unwrap();
        let q = db
            .query("SELECT dept, salary FROM emp WHERE id = 9")
            .unwrap();
        assert_eq!(q.rows[0], vec![Value::Null, Value::Null]);
    }

    #[test]
    fn interval_join_plan_selected() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE node (pre INT, size INT, name TEXT);
             INSERT INTO node VALUES (0, 3, 'a'), (1, 1, 'b'), (2, 0, 'c'), (3, 0, 'd');",
        )
        .unwrap();
        // Descendants of each 'a': pre in (a.pre, a.pre + a.size].
        let (_, phys) = db
            .plan_select(
                "SELECT d.name FROM node a, node d \
                 WHERE a.name = 'a' AND d.pre > a.pre AND d.pre <= a.pre + a.size",
            )
            .unwrap();
        let text = explain_physical(&phys);
        assert!(text.contains("IntervalJoin"), "{text}");
        let q = db
            .query(
                "SELECT d.name FROM node a, node d \
                 WHERE a.name = 'a' AND d.pre > a.pre AND d.pre <= a.pre + a.size \
                 ORDER BY d.pre",
            )
            .unwrap();
        let names: Vec<String> = q.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["b", "c", "d"]);
    }

    #[test]
    fn explain_returns_plan_rows() {
        let mut db = db_with_data();
        let q = db.query("EXPLAIN SELECT * FROM emp WHERE id = 1").unwrap();
        assert!(!q.rows.is_empty());
        assert_eq!(q.columns, vec!["plan"]);
    }

    #[test]
    fn explain_analyze_reports_actuals() {
        let mut db = db_with_data();
        let q = db
            .query("EXPLAIN ANALYZE SELECT name FROM emp WHERE salary > 95")
            .unwrap();
        let text: String = q.rows.iter().map(|r| r[0].to_string() + "\n").collect();
        assert!(text.contains("est="), "{text}");
        assert!(text.contains("act=2"), "{text}");
        assert!(text.contains("q-error:"), "{text}");
        assert!(text.contains("time="), "{text}");
    }

    #[test]
    fn query_profiled_mirrors_plan_shape() {
        let mut db = db_with_data();
        db.execute("CREATE INDEX by_dept ON emp (dept)").unwrap();
        let (q, profile) = db
            .query_profiled("SELECT name FROM emp WHERE dept = 'eng'")
            .unwrap();
        assert_eq!(q.rows.len(), 2);
        assert_eq!(profile.stats.rows_out, 2);
        // The root consumes what its child produced.
        let mut labels = Vec::new();
        profile.visit(&mut |n| labels.push(n.label.clone()));
        assert!(
            labels.iter().any(|l| l.starts_with("IndexScan")),
            "{labels:?}"
        );
    }

    #[test]
    fn limit_trip_names_operator_and_limit() {
        let mut db = db_with_data();
        db.limits.max_intermediate_rows = Some(2);
        let err = db
            .query("SELECT name FROM emp ORDER BY salary")
            .unwrap_err();
        let DbError::ResourceExhausted(msg) = err else {
            panic!("expected ResourceExhausted");
        };
        assert!(msg.contains("Sort"), "{msg}");
        assert!(msg.contains("max_intermediate_rows = 2"), "{msg}");
        // Profiled runs record the trip in the operator's profile node.
        let run = {
            let (_, physical) = db
                .plan_select("SELECT name FROM emp ORDER BY salary")
                .unwrap();
            run_profiled(&physical, &db.catalog, &db.limits).unwrap()
        };
        assert!(run.rows.is_err());
        let trip = run.profile.limit_trip().expect("trip recorded");
        assert!(trip.contains("Sort"), "{trip}");
    }

    #[test]
    fn create_table_if_not_exists() {
        let mut db = db_with_data();
        assert!(db.execute("CREATE TABLE emp (x INT)").is_err());
        db.execute("CREATE TABLE IF NOT EXISTS emp (x INT)")
            .unwrap();
    }

    #[test]
    fn snapshot_pins_state_across_later_commits() {
        let mut db = db_with_data();
        let before = db.epoch();
        let snap = db.snapshot();
        assert!(snap.is_snapshot());
        assert_eq!(snap.epoch(), before);
        db.execute("INSERT INTO emp VALUES (9, 'new', 1, 1.0)")
            .unwrap();
        assert_eq!(db.epoch(), before + 1);
        // The snapshot keeps answering at its epoch; the live handle moved on.
        let frozen = snap.query_readonly("SELECT COUNT(name) FROM emp").unwrap();
        let live = db.query_readonly("SELECT COUNT(name) FROM emp").unwrap();
        let count = |q: crate::QueryResult| q.scalar().and_then(Value::as_int).unwrap();
        assert_eq!(count(live), count(frozen) + 1);
        assert_eq!(snap.epoch(), before);
    }

    #[test]
    fn snapshot_refuses_writes() {
        let db = db_with_data();
        let mut snap = db.snapshot();
        let err = snap.execute("DELETE FROM emp").unwrap_err();
        assert!(matches!(err, DbError::ReadOnlySnapshot(_)), "{err}");
        let err = snap
            .bulk_insert("emp", vec![vec![Value::Int(1)]])
            .unwrap_err();
        assert!(matches!(err, DbError::ReadOnlySnapshot(_)), "{err}");
    }
}
