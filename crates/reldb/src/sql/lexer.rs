//! SQL tokenizer.

use crate::error::{DbError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (unquoted identifiers are kept verbatim; the
    /// parser matches keywords case-insensitively).
    Ident(String),
    /// `"quoted identifier"`.
    QuotedIdent(String),
    /// Numeric literal, `42` or `1.5`.
    Number(String),
    /// `'string literal'` with doubled-quote escaping resolved.
    String(String),
    /// Punctuation / operators.
    Symbol(Symbol),
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||`
    Concat,
}

impl Token {
    /// Keyword check, case-insensitive, on unquoted identifiers only.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            b')' => {
                out.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            b',' => {
                out.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            b'.' if !b.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false) => {
                out.push(Token::Symbol(Symbol::Dot));
                i += 1;
            }
            b';' => {
                out.push(Token::Symbol(Symbol::Semicolon));
                i += 1;
            }
            b'*' => {
                out.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            b'+' => {
                out.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            b'-' => {
                out.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            b'/' => {
                out.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            b'%' => {
                out.push(Token::Symbol(Symbol::Percent));
                i += 1;
            }
            b'=' => {
                out.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Symbol::NotEq));
                i += 2;
            }
            b'<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Symbol(Symbol::LtEq));
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Symbol(Symbol::NotEq));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            },
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Symbol::GtEq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            b'|' if b.get(i + 1) == Some(&b'|') => {
                out.push(Token::Symbol(Symbol::Concat));
                i += 2;
            }
            b'\'' => {
                let (s, ni) = lex_string(input, i)?;
                out.push(Token::String(s));
                i = ni;
            }
            b'"' => {
                let end = input[i + 1..]
                    .find('"')
                    .ok_or_else(|| DbError::Syntax("unterminated quoted identifier".into()))?;
                out.push(Token::QuotedIdent(input[i + 1..i + 1 + end].to_string()));
                i += end + 2;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                // Scientific notation.
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                out.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Syntax(format!(
                    "unexpected character {:?} at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let b = input.as_bytes();
    let mut i = start + 1;
    let mut s = String::new();
    loop {
        if i >= b.len() {
            return Err(DbError::Syntax("unterminated string literal".into()));
        }
        if b[i] == b'\'' {
            if b.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(b[i]);
            s.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 10.5;").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert!(toks.contains(&Token::Symbol(Symbol::GtEq)));
        assert!(toks.contains(&Token::Number("10.5".into())));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(Symbol::Semicolon));
    }

    #[test]
    fn strings_with_escaped_quotes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::String("it's".into())]);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <> b != c <= d >= e || f").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Symbol::NotEq,
                Symbol::NotEq,
                Symbol::LtEq,
                Symbol::GtEq,
                Symbol::Concat
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing\n, 2").unwrap();
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, Token::Number(_)))
                .count(),
            2
        );
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"My Table\".col").unwrap();
        assert_eq!(toks[0], Token::QuotedIdent("My Table".into()));
        assert_eq!(toks[1], Token::Symbol(Symbol::Dot));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'héllo ☃'").unwrap();
        assert_eq!(toks, vec![Token::String("héllo ☃".into())]);
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("t1.c2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t1".into()),
                Token::Symbol(Symbol::Dot),
                Token::Ident("c2".into())
            ]
        );
    }
}
