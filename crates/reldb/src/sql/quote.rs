//! The quoting seam: the only blessed way to splice dynamic strings into
//! SQL text. `xmlrel-lint --sql` treats these two functions as taint
//! sanitizers; any other path from untrusted text into SQL assembly fails
//! the gate (see DESIGN.md §16).

/// Quote a string as a SQL string literal.
///
/// Wraps the value in single quotes and doubles embedded single quotes,
/// which is the only escape the engine's lexer recognizes. The result is
/// always exactly one literal token to the SQL lexer, regardless of
/// quotes, semicolons, comment markers, or multibyte content in `s`.
#[must_use]
pub fn sql_lit(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Make a string safe to splice where SQL expects a bare identifier
/// (table or column position).
///
/// A value that is already a safe identifier (`[A-Za-z_][A-Za-z0-9_]*`)
/// is returned unchanged, so routing schema names produced by the
/// shredder's `sanitize` discipline through this seam is behavior-neutral.
/// Anything else is repaired: every other character becomes `_`, and an
/// `x` is prefixed when the result would be empty or start with a digit.
/// The output therefore can never terminate the surrounding statement or
/// open a literal, whatever `s` contains.
#[must_use]
pub fn sql_ident(s: &str) -> String {
    let safe = !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if safe {
        return s.to_string();
    }
    let mut out: String = s
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, 'x');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_doubles_single_quotes() {
        assert_eq!(sql_lit("O'Brien"), "'O''Brien'");
        assert_eq!(sql_lit(""), "''");
        assert_eq!(sql_lit("a;b--c\"d"), "'a;b--c\"d'");
    }

    #[test]
    fn lit_is_one_token_to_the_lexer() {
        for hostile in ["x'; DROP TABLE t; --", "''", "a\nb", "日本語 ' quote"] {
            let lit = sql_lit(hostile);
            let toks = crate::sql::lexer::tokenize(&lit).expect("lexes");
            assert_eq!(
                toks,
                vec![crate::sql::lexer::Token::String(hostile.to_string())],
                "{lit:?}"
            );
        }
    }

    #[test]
    fn ident_passes_safe_names_through() {
        for ok in ["edge", "bin_el_book", "t0", "_x", "T_Item9"] {
            assert_eq!(sql_ident(ok), ok);
        }
    }

    #[test]
    fn ident_repairs_hostile_names() {
        assert_eq!(sql_ident("bad name"), "bad_name");
        assert_eq!(sql_ident("t;drop"), "t_drop");
        assert_eq!(sql_ident("9lives"), "x9lives");
        assert_eq!(sql_ident(""), "x");
        assert_eq!(sql_ident("a'b--c"), "a_b__c");
    }
}
