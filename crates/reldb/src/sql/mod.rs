//! SQL front end: tokenizer, AST, and parser.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod quote;

pub use ast::{Expr, SelectStmt, Statement};
pub use parser::{parse_script, parse_statement};
pub use quote::{sql_ident, sql_lit};
