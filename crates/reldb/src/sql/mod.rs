//! SQL front end: tokenizer, AST, and parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, SelectStmt, Statement};
pub use parser::{parse_script, parse_statement};
