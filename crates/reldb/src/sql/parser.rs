//! Recursive-descent SQL parser.

use crate::error::{DbError, Result};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Symbol, Token};
use crate::value::{DataType, Value};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    if !p.at_end() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parse a semicolon-separated script.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.peek_symbol(Symbol::Semicolon) {
            return Err(p.err("expected ';' between statements"));
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> DbError {
        match self.peek() {
            Some(t) => DbError::Syntax(format!("{msg} (at {t:?})")),
            None => DbError::Syntax(format!("{msg} (at end of input)")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn peek_symbol(&self, s: Symbol) -> bool {
        matches!(self.peek(), Some(Token::Symbol(x)) if *x == s)
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.peek_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            Some(Token::QuotedIdent(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    // ---- statements ----------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            return Ok(Statement::Explain {
                analyze,
                stmt: Box::new(self.statement()?),
            });
        }
        if self.peek_kw("select") {
            return Ok(Statement::Select(Box::new(self.select()?)));
        }
        if self.eat_kw("create") {
            return self.create();
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let if_exists = self.eat_kw("if") && {
                self.expect_kw("exists")?;
                true
            };
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_symbol(Symbol::Eq)?;
                assignments.push((col, self.expr()?));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                predicate,
            });
        }
        Err(self.err("expected a statement"))
    }

    fn create(&mut self) -> Result<Statement> {
        let unique = self.eat_kw("unique");
        if self.eat_kw("index") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_symbol(Symbol::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            });
        }
        if unique {
            return Err(self.err("expected INDEX after UNIQUE"));
        }
        self.expect_kw("table")?;
        let if_not_exists = self.eat_kw("if") && {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        };
        let name = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty = self.data_type()?;
            let mut not_null = false;
            let mut primary_key = false;
            loop {
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    not_null = true;
                } else if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    primary_key = true;
                    not_null = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                ty,
                not_null,
                primary_key,
            });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let t = self.ident()?;
        match t.as_str() {
            "int" | "integer" | "bigint" => Ok(DataType::Int),
            "float" | "real" | "double" => Ok(DataType::Float),
            "text" | "varchar" | "char" | "string" => {
                // Optional length, ignored: VARCHAR(100).
                if self.eat_symbol(Symbol::LParen) {
                    self.bump();
                    self.expect_symbol(Symbol::RParen)?;
                }
                Ok(DataType::Text)
            }
            "bool" | "boolean" => Ok(DataType::Bool),
            other => Err(DbError::Syntax(format!("unknown type {other:?}"))),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_symbol(Symbol::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(Symbol::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                row.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    // ---- select ----------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut stmt = SelectStmt::empty();
        stmt.distinct = self.eat_kw("distinct");
        loop {
            stmt.projections.push(self.select_item()?);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        if self.eat_kw("from") {
            stmt.from = Some(self.table_ref()?);
        }
        if self.eat_kw("where") {
            stmt.predicate = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("union") {
            self.expect_kw("all")?;
            stmt.union_all = Some(Box::new(self.select()?));
            return Ok(stmt);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                stmt.order_by.push((e, asc));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            stmt.limit = Some(self.unsigned()?);
        }
        if self.eat_kw("offset") {
            stmt.offset = Some(self.unsigned()?);
        }
        Ok(stmt)
    }

    fn unsigned(&mut self) -> Result<u64> {
        match self.bump() {
            Some(Token::Number(n)) => n
                .parse()
                .map_err(|_| DbError::Syntax(format!("expected unsigned integer, got {n:?}"))),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected unsigned integer"))
            }
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `ident.*`
        if let (
            Some(Token::Ident(q)),
            Some(Token::Symbol(Symbol::Dot)),
            Some(Token::Symbol(Symbol::Star)),
        ) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let q = q.to_ascii_lowercase();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        // `AS alias` or a bare non-reserved identifier.
        let has_alias =
            self.eat_kw("as") || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.eat_kw("cross") {
                self.expect_kw("join")?;
                JoinKind::Cross
            } else if self.eat_kw("join") {
                JoinKind::Inner
            } else if self.eat_symbol(Symbol::Comma) {
                JoinKind::Cross
            } else {
                return Ok(left);
            };
            let right = self.table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("on")?;
                Some(self.expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat_symbol(Symbol::LParen) {
            if self.peek_kw("select") {
                let query = self.select()?;
                self.expect_symbol(Symbol::RParen)?;
                self.eat_kw("as");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            // Parenthesized join tree.
            let inner = self.table_ref()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let has_alias =
            self.eat_kw("as") || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            e = Expr::bin(BinOp::Or, e, self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            e = Expr::bin(BinOp::And, e, self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let e = self.additive()?;
        // Postfix predicates.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(e),
                negated,
            });
        }
        let negated = self.eat_kw("not");
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(e),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(e),
                list,
                negated,
            });
        }
        if self.eat_kw("like") {
            let pat = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(pat),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.additive()?;
                Ok(Expr::bin(op, e, rhs))
            }
            None => Ok(e),
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinOp::Sub,
                Some(Token::Symbol(Symbol::Concat)) => BinOp::Concat,
                _ => return Ok(e),
            };
            self.pos += 1;
            e = Expr::bin(op, e, self.multiplicative()?);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinOp::Mod,
                _ => return Ok(e),
            };
            self.pos += 1;
            e = Expr::bin(op, e, self.unary()?);
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Number(n)) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|f| Expr::Literal(Value::Float(f)))
                        .map_err(|_| DbError::Syntax(format!("bad number {n:?}")))
                } else {
                    n.parse::<i64>()
                        .map(|i| Expr::Literal(Value::Int(i)))
                        .map_err(|_| DbError::Syntax(format!("bad number {n:?}")))
                }
            }
            Some(Token::String(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Symbol(Symbol::LParen)) => {
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Symbol(Symbol::Star)) => Ok(Expr::Star),
            Some(Token::Ident(id)) => self.ident_expr(id),
            Some(Token::QuotedIdent(id)) => self.column_tail(id),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected expression"))
            }
        }
    }

    fn ident_expr(&mut self, id: String) -> Result<Expr> {
        let lower = id.to_ascii_lowercase();
        match lower.as_str() {
            "null" => return Ok(Expr::Literal(Value::Null)),
            "true" => return Ok(Expr::Literal(Value::Bool(true))),
            "false" => return Ok(Expr::Literal(Value::Bool(false))),
            _ if is_reserved(&lower) => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("reserved word used as expression"));
            }
            _ => {}
        }
        if self.eat_symbol(Symbol::LParen) {
            // Function call.
            let mut args = Vec::new();
            if !self.peek_symbol(Symbol::RParen) {
                loop {
                    if self.eat_symbol(Symbol::Star) {
                        args.push(Expr::Star);
                    } else {
                        args.push(self.expr()?);
                    }
                    if !self.eat_symbol(Symbol::Comma) {
                        break;
                    }
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Function { name: lower, args });
        }
        self.column_tail(lower)
    }

    fn column_tail(&mut self, first: String) -> Result<Expr> {
        if self.eat_symbol(Symbol::Dot) {
            let col = self.ident()?;
            Ok(Expr::Column {
                qualifier: Some(first),
                name: col,
            })
        } else {
            Ok(Expr::Column {
                qualifier: None,
                name: first,
            })
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select", "from", "where", "group", "by", "having", "order", "limit", "offset", "union",
        "all", "distinct", "as", "join", "inner", "left", "right", "outer", "cross", "on", "and",
        "or", "not", "in", "between", "like", "is", "null", "insert", "into", "values", "update",
        "set", "delete", "create", "drop", "table", "index", "unique", "primary", "key", "if",
        "exists", "explain", "asc", "desc", "true", "false",
    ];
    RESERVED.contains(&word.to_ascii_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_roundtrip() {
        let s = parse_statement(
            "CREATE TABLE edge (src INT NOT NULL, ord INT, label TEXT, tgt INT, val TEXT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "edge");
                assert_eq!(columns.len(), 5);
                assert!(columns[0].not_null);
                assert!(!columns[1].not_null);
                assert!(!if_not_exists);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn primary_key_flag() {
        let s = parse_statement("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        match s {
            Statement::CreateTable { columns, .. } => {
                assert!(columns[0].primary_key);
                assert!(columns[0].not_null);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Value::text("y")));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn select_with_everything() {
        let s = parse_statement(
            "SELECT t.a AS x, COUNT(*) FROM t WHERE t.b = 3 AND t.c LIKE 'p%' \
             GROUP BY t.a HAVING COUNT(*) > 1 ORDER BY x DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.projections.len(), 2);
        assert!(sel.predicate.is_some());
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].1);
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, Some(2));
    }

    #[test]
    fn joins_left_deep() {
        let s = parse_statement("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y")
            .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let TableRef::Join { kind, left, .. } = sel.from.unwrap() else {
            panic!()
        };
        assert_eq!(kind, JoinKind::Left);
        assert!(matches!(
            *left,
            TableRef::Join {
                kind: JoinKind::Inner,
                ..
            }
        ));
    }

    #[test]
    fn comma_join_is_cross() {
        let s = parse_statement("SELECT * FROM a, b WHERE a.x = b.x").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(
            sel.from.unwrap(),
            TableRef::Join {
                kind: JoinKind::Cross,
                on: None,
                ..
            }
        ));
    }

    #[test]
    fn subquery_in_from() {
        let s = parse_statement("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.from.unwrap(), TableRef::Subquery { alias, .. } if alias == "sub"));
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(sel) = parse_statement("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.projections[0] else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("{expr:?}")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let Statement::Select(sel) =
            parse_statement("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap()
        else {
            panic!()
        };
        let Expr::Binary { op: BinOp::Or, .. } = sel.predicate.unwrap() else {
            panic!("OR must be the top operator")
        };
    }

    #[test]
    fn between_in_like_not() {
        let Statement::Select(sel) = parse_statement(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1,2) AND c IS NOT NULL",
        )
        .unwrap() else {
            panic!()
        };
        let p = sel.predicate.unwrap();
        let s = format!("{p:?}");
        assert!(s.contains("Between"));
        assert!(s.contains("InList"));
        assert!(s.contains("IsNull"));
    }

    #[test]
    fn union_all_chains() {
        let Statement::Select(sel) =
            parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v")
                .unwrap()
        else {
            panic!()
        };
        let second = sel.union_all.unwrap();
        assert!(second.union_all.is_some());
    }

    #[test]
    fn explain_wraps() {
        let s = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
        let s = parse_statement("EXPLAIN ANALYZE SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn errors_are_syntax() {
        assert!(matches!(
            parse_statement("SELEC 1"),
            Err(DbError::Syntax(_))
        ));
        assert!(matches!(
            parse_statement("SELECT FROM"),
            Err(DbError::Syntax(_))
        ));
        assert!(matches!(
            parse_statement("SELECT 1 extra garbage ,"),
            Err(DbError::Syntax(_))
        ));
    }

    #[test]
    fn update_and_delete() {
        let s = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE c = 2").unwrap();
        match s {
            Statement::Update {
                assignments,
                predicate,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(predicate.is_some());
            }
            _ => unreachable!(),
        }
        let s = parse_statement("DELETE FROM t").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                predicate: None,
                ..
            }
        ));
    }

    #[test]
    fn negative_numbers_and_nulls() {
        let Statement::Select(sel) = parse_statement("SELECT -3, NULL, -x").unwrap() else {
            panic!()
        };
        assert_eq!(sel.projections.len(), 3);
    }
}
