//! SQL abstract syntax tree.

use crate::value::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// `IF NOT EXISTS` given.
        if_not_exists: bool,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (cols)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table the index is on.
        table: String,
        /// Indexed column names.
        columns: Vec<String>,
        /// Uniqueness constraint.
        unique: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// `IF EXISTS` given.
        if_exists: bool,
    },
    /// `INSERT INTO table [(cols)] VALUES (..), (..)`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Literal rows.
        rows: Vec<Vec<Expr>>,
    },
    /// `SELECT ...`.
    Select(Box<SelectStmt>),
    /// `DELETE FROM table [WHERE ..]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        predicate: Option<Expr>,
    },
    /// `UPDATE table SET c = e, .. [WHERE ..]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        assignments: Vec<(String, Expr)>,
        /// Row filter.
        predicate: Option<Expr>,
    },
    /// `EXPLAIN [ANALYZE] <select>` — returns the physical plan as text
    /// rows; with ANALYZE the query also runs and each operator reports
    /// estimated vs. actual rows plus its runtime counters.
    Explain {
        /// True for `EXPLAIN ANALYZE`: execute and report actuals.
        analyze: bool,
        /// The explained statement (must be a SELECT).
        stmt: Box<Statement>,
    },
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// NOT NULL given.
    pub not_null: bool,
    /// PRIMARY KEY given (implies a unique index).
    pub primary_key: bool,
}

/// A SELECT statement (one arm of a UNION chain).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `DISTINCT` given.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// FROM clause (None = scalar select, e.g. `SELECT 1+1`).
    pub from: Option<TableRef>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY expressions with ascending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT count.
    pub limit: Option<u64>,
    /// OFFSET count.
    pub offset: Option<u64>,
    /// Chained `UNION ALL` arm.
    pub union_all: Option<Box<SelectStmt>>,
}

impl SelectStmt {
    /// An empty SELECT skeleton.
    pub fn empty() -> SelectStmt {
        SelectStmt {
            distinct: false,
            projections: Vec::new(),
            from: None,
            predicate: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            union_all: None,
        }
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// Projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table {
        /// Table name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// Derived table `(SELECT ..) alias`.
    Subquery {
        /// The subquery.
        query: Box<SelectStmt>,
        /// Mandatory alias.
        alias: String,
    },
    /// A join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (None only for CROSS).
        on: Option<Expr>,
    },
}

/// Join kinds in the implemented subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
    /// CROSS JOIN.
    Cross,
}

/// Scalar/boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified.
    Column {
        /// Table name or alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call (scalar or aggregate, resolved at planning).
    Function {
        /// Function name, lowercase.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `COUNT(*)` argument marker.
    Star,
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (v, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Column shorthand.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Qualified column shorthand.
    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary op shorthand.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// `AND` of two expressions.
    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::And, l, r)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `NOT`
    Not,
    /// `-`
    Neg,
}
