//! Join operators: hash, nested-loop, and interval (structural) joins.

use std::collections::HashMap;

use crate::error::Result;
use crate::exec::{Executor, Meter};
use crate::plan::expr::{value_to_bool, ScalarExpr};
use crate::sql::ast::JoinKind;
use crate::value::{Row, Value};

/// Hash join: builds on the right input, probes with the left.
/// Supports INNER and LEFT OUTER.
pub struct HashJoinExec<'a> {
    left: Box<dyn Executor + 'a>,
    right: Option<Box<dyn Executor + 'a>>,
    kind: JoinKind,
    left_keys: &'a [ScalarExpr],
    right_keys: &'a [ScalarExpr],
    residual: Option<&'a ScalarExpr>,
    right_arity: usize,
    table: HashMap<Vec<Value>, Vec<Row>>,
    buffered: usize,
    meter: Meter,
    /// Current probe row and its pending matches.
    probe: Option<(Row, Vec<Row>, usize, bool)>,
}

impl<'a> HashJoinExec<'a> {
    /// Create a hash join executor. `meter` carries the intermediate-row
    /// cap bounding the build-side buffer and records runtime counters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Box<dyn Executor + 'a>,
        right: Box<dyn Executor + 'a>,
        kind: JoinKind,
        left_keys: &'a [ScalarExpr],
        right_keys: &'a [ScalarExpr],
        residual: Option<&'a ScalarExpr>,
        right_arity: usize,
        meter: Meter,
    ) -> HashJoinExec<'a> {
        HashJoinExec {
            left,
            right: Some(right),
            kind,
            left_keys,
            right_keys,
            residual,
            right_arity,
            table: HashMap::new(),
            buffered: 0,
            meter,
            probe: None,
        }
    }

    fn build(&mut self) -> Result<()> {
        let Some(mut right) = self.right.take() else {
            return Ok(());
        };
        while let Some(row) = right.next()? {
            self.meter.poll("HashJoin build")?;
            let mut key = Vec::with_capacity(self.right_keys.len());
            let mut has_null = false;
            for e in self.right_keys {
                let v = e.eval(&row)?;
                has_null |= v.is_null();
                key.push(v);
            }
            if has_null {
                continue; // NULL keys never join.
            }
            self.meter.buffered_row(&row);
            self.table.entry(key).or_default().push(row);
            self.buffered += 1;
            self.meter.admit("HashJoin build", self.buffered)?;
        }
        Ok(())
    }
}

impl Executor for HashJoinExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.right.is_some() {
            self.build()?;
        }
        loop {
            if let Some((lrow, matches, pos, emitted)) = &mut self.probe {
                while *pos < matches.len() {
                    self.meter.poll("HashJoin probe")?;
                    let rrow = &matches[*pos];
                    *pos += 1;
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    if let Some(res) = self.residual {
                        self.meter.comparisons(1);
                        if value_to_bool(&res.eval(&joined)?) != Some(true) {
                            continue;
                        }
                    }
                    *emitted = true;
                    return Ok(Some(joined));
                }
                // Probe row exhausted; null-extend for LEFT if unmatched.
                let unmatched = !*emitted && self.kind == JoinKind::Left;
                let lrow_snapshot = if unmatched { Some(lrow.clone()) } else { None };
                self.probe = None;
                if let Some(mut l) = lrow_snapshot {
                    l.extend(std::iter::repeat_n(Value::Null, self.right_arity));
                    return Ok(Some(l));
                }
            }
            match self.left.next()? {
                None => return Ok(None),
                Some(lrow) => {
                    let mut key = Vec::with_capacity(self.left_keys.len());
                    let mut has_null = false;
                    for e in self.left_keys {
                        let v = e.eval(&lrow)?;
                        has_null |= v.is_null();
                        key.push(v);
                    }
                    let matches = if has_null {
                        Vec::new()
                    } else {
                        self.meter.probe();
                        self.table.get(&key).cloned().unwrap_or_default()
                    };
                    self.probe = Some((lrow, matches, 0, false));
                }
            }
        }
    }
}

/// Index nested-loop join: probes a B+-tree index on the inner base table
/// once per outer row.
pub struct IndexNestedLoopJoinExec<'a> {
    left: Box<dyn Executor + 'a>,
    table: &'a crate::table::Table,
    index: &'a crate::table::Index,
    left_key: &'a ScalarExpr,
    right_filter: Option<&'a ScalarExpr>,
    residual: Option<&'a ScalarExpr>,
    kind: JoinKind,
    right_arity: usize,
    meter: Meter,
    /// Current outer row with pending inner matches.
    probe: Option<(Row, Vec<usize>, usize, bool)>,
}

impl<'a> IndexNestedLoopJoinExec<'a> {
    /// Create the operator.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Box<dyn Executor + 'a>,
        table: &'a crate::table::Table,
        index: &'a crate::table::Index,
        left_key: &'a ScalarExpr,
        right_filter: Option<&'a ScalarExpr>,
        residual: Option<&'a ScalarExpr>,
        kind: JoinKind,
        right_arity: usize,
        meter: Meter,
    ) -> IndexNestedLoopJoinExec<'a> {
        IndexNestedLoopJoinExec {
            left,
            table,
            index,
            left_key,
            right_filter,
            residual,
            kind,
            right_arity,
            meter,
            probe: None,
        }
    }
}

impl Executor for IndexNestedLoopJoinExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some((lrow, rids, pos, emitted)) = &mut self.probe {
                while *pos < rids.len() {
                    self.meter.poll("IndexNestedLoopJoin probe")?;
                    let rid = rids[*pos];
                    *pos += 1;
                    let Some(rrow) = self.table.get(rid) else {
                        continue;
                    };
                    if let Some(f) = self.right_filter {
                        self.meter.comparisons(1);
                        if value_to_bool(&f.eval(rrow)?) != Some(true) {
                            continue;
                        }
                    }
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    if let Some(res) = self.residual {
                        self.meter.comparisons(1);
                        if value_to_bool(&res.eval(&joined)?) != Some(true) {
                            continue;
                        }
                    }
                    *emitted = true;
                    return Ok(Some(joined));
                }
                let unmatched = !*emitted && self.kind == JoinKind::Left;
                let lrow_snapshot = if unmatched { Some(lrow.clone()) } else { None };
                self.probe = None;
                if let Some(mut l) = lrow_snapshot {
                    l.extend(std::iter::repeat_n(Value::Null, self.right_arity));
                    return Ok(Some(l));
                }
            }
            match self.left.next()? {
                None => return Ok(None),
                Some(lrow) => {
                    let key = self.left_key.eval(&lrow)?;
                    let rids = if key.is_null() {
                        Vec::new()
                    } else {
                        self.meter.probe();
                        // Prefix lookup on the (possibly composite) index.
                        let lo = vec![key.clone()];
                        let hi = {
                            let mut h = vec![key];
                            for _ in 1..self.index.columns.len() {
                                h.push(Value::Text("\u{10FFFF}\u{10FFFF}".into()));
                            }
                            h
                        };
                        let mut out = Vec::new();
                        for (_, postings) in self.index.tree.range(
                            std::ops::Bound::Included(&lo),
                            std::ops::Bound::Included(&hi),
                        ) {
                            out.extend_from_slice(postings);
                        }
                        out
                    };
                    self.probe = Some((lrow, rids, 0, false));
                }
            }
        }
    }
}

/// Nested-loop join: materializes the right input, loops per left row.
pub struct NestedLoopJoinExec<'a> {
    left: Box<dyn Executor + 'a>,
    right: Option<Box<dyn Executor + 'a>>,
    kind: JoinKind,
    on: Option<&'a ScalarExpr>,
    right_arity: usize,
    right_rows: Vec<Row>,
    meter: Meter,
    probe: Option<(Row, usize, bool)>,
}

impl<'a> NestedLoopJoinExec<'a> {
    /// Create a nested-loop join executor. `meter` carries the
    /// intermediate-row cap bounding the materialized inner side.
    pub fn new(
        left: Box<dyn Executor + 'a>,
        right: Box<dyn Executor + 'a>,
        kind: JoinKind,
        on: Option<&'a ScalarExpr>,
        right_arity: usize,
        meter: Meter,
    ) -> NestedLoopJoinExec<'a> {
        NestedLoopJoinExec {
            left,
            right: Some(right),
            kind,
            on,
            right_arity,
            right_rows: Vec::new(),
            meter,
            probe: None,
        }
    }
}

impl Executor for NestedLoopJoinExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut right) = self.right.take() {
            while let Some(r) = right.next()? {
                self.meter.poll("NestedLoopJoin inner")?;
                self.meter.buffered_row(&r);
                self.right_rows.push(r);
                self.meter
                    .admit("NestedLoopJoin inner", self.right_rows.len())?;
            }
        }
        loop {
            if let Some((lrow, pos, emitted)) = &mut self.probe {
                while *pos < self.right_rows.len() {
                    self.meter.poll("NestedLoopJoin probe")?;
                    let rrow = &self.right_rows[*pos];
                    *pos += 1;
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    if let Some(on) = self.on {
                        self.meter.comparisons(1);
                        if value_to_bool(&on.eval(&joined)?) != Some(true) {
                            continue;
                        }
                    }
                    *emitted = true;
                    return Ok(Some(joined));
                }
                let unmatched = !*emitted && self.kind == JoinKind::Left;
                let lrow_snapshot = if unmatched { Some(lrow.clone()) } else { None };
                self.probe = None;
                if let Some(mut l) = lrow_snapshot {
                    l.extend(std::iter::repeat_n(Value::Null, self.right_arity));
                    return Ok(Some(l));
                }
            }
            match self.left.next()? {
                None => return Ok(None),
                Some(lrow) => self.probe = Some((lrow, 0, false)),
            }
        }
    }
}

/// Interval (structural) join: the right input is materialized and sorted
/// by its key column; for each left row the `[lo, hi]` window is located by
/// binary search. This reproduces the access pattern of the published
/// structural-join algorithms (sorted inputs, output proportional scan),
/// and is the physical operator behind descendant-axis queries in the
/// interval mapping scheme.
pub struct IntervalJoinExec<'a> {
    left: Box<dyn Executor + 'a>,
    right: Option<Box<dyn Executor + 'a>>,
    right_key: usize,
    lo: &'a ScalarExpr,
    hi: &'a ScalarExpr,
    lo_strict: bool,
    hi_strict: bool,
    residual: Option<&'a ScalarExpr>,
    sorted: Vec<Row>,
    meter: Meter,
    probe: Option<(Row, usize, Value)>,
}

impl<'a> IntervalJoinExec<'a> {
    /// Create an interval join executor. `meter` carries the
    /// intermediate-row cap bounding the sorted inner side.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Box<dyn Executor + 'a>,
        right: Box<dyn Executor + 'a>,
        right_key: usize,
        lo: &'a ScalarExpr,
        hi: &'a ScalarExpr,
        lo_strict: bool,
        hi_strict: bool,
        residual: Option<&'a ScalarExpr>,
        meter: Meter,
    ) -> IntervalJoinExec<'a> {
        IntervalJoinExec {
            left,
            right: Some(right),
            right_key,
            lo,
            hi,
            lo_strict,
            hi_strict,
            residual,
            sorted: Vec::new(),
            meter,
            probe: None,
        }
    }
}

impl Executor for IntervalJoinExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut right) = self.right.take() {
            while let Some(r) = right.next()? {
                self.meter.poll("IntervalJoin inner")?;
                self.meter.buffered_row(&r);
                self.sorted.push(r);
                self.meter.admit("IntervalJoin inner", self.sorted.len())?;
            }
            let key = self.right_key;
            let mut comparisons = 0u64;
            self.sorted.sort_by(|a, b| {
                comparisons += 1;
                a[key].cmp(&b[key])
            });
            self.meter.comparisons(comparisons);
        }
        loop {
            if let Some((lrow, pos, hi)) = &mut self.probe {
                while *pos < self.sorted.len() {
                    self.meter.poll("IntervalJoin probe")?;
                    let rrow = &self.sorted[*pos];
                    let k = &rrow[self.right_key];
                    self.meter.comparisons(1);
                    let above = if self.hi_strict { k >= hi } else { k > hi };
                    if above {
                        break;
                    }
                    *pos += 1;
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    if let Some(res) = self.residual {
                        self.meter.comparisons(1);
                        if value_to_bool(&res.eval(&joined)?) != Some(true) {
                            continue;
                        }
                    }
                    return Ok(Some(joined));
                }
                self.probe = None;
            }
            match self.left.next()? {
                None => return Ok(None),
                Some(lrow) => {
                    let lo = self.lo.eval(&lrow)?;
                    let hi = self.hi.eval(&lrow)?;
                    if lo.is_null() || hi.is_null() {
                        continue;
                    }
                    // Binary search for the first right row in range.
                    self.meter.probe();
                    let key = self.right_key;
                    let lo_strict = self.lo_strict;
                    let start = self.sorted.partition_point(|r| {
                        if lo_strict {
                            r[key] <= lo
                        } else {
                            r[key] < lo
                        }
                    });
                    self.probe = Some((lrow, start, hi));
                }
            }
        }
    }
}
