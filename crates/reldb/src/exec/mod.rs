//! Volcano-style executor: each operator is a pull iterator over rows.
//!
//! Execution can optionally be *profiled*: [`build_executor_profiled`]
//! wraps every operator with a rows/wall-time shim and hands each one a
//! [`Meter`] for operator-specific counters, producing an [`ExecProfile`]
//! tree (estimated vs. actual cardinality per node) after the run.

mod aggregate;
mod join;
mod profile;

use std::ops::Bound;
use std::time::{Duration, Instant};

use crate::catalog::Catalog;
use crate::error::{DbError, Result};
use crate::plan::cost::{report_physical, CostNode};
use crate::plan::expr::{value_to_bool, ScalarExpr};
use crate::plan::physical::PhysicalPlan;
use crate::value::{Row, Value};

pub use aggregate::HashAggregateExec;
pub use join::{HashJoinExec, IndexNestedLoopJoinExec, IntervalJoinExec, NestedLoopJoinExec};
pub use profile::{row_data_bytes, ExecProfile, Meter, OpStats, ProfileHandle, ProfileRollup};
pub use xmlrel_obs::cancel::CancelToken;

use profile::ProfiledExec;

/// A pull-based operator.
pub trait Executor {
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// A wall-clock execution deadline.
///
/// Operators poll it cooperatively (via [`Meter::poll`]) and abort with
/// [`DbError::DeadlineExceeded`] once it passes; a query never blocks past
/// its deadline by more than one polling stride of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline(Instant::now() + budget)
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_millis(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// A deadline at an absolute instant.
    pub fn at(when: Instant) -> Deadline {
        Deadline(when)
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.0
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.0.saturating_duration_since(Instant::now())
    }
}

/// Configurable execution resource limits. `None` means unlimited; the
/// default is fully unlimited. Exceeding a limit aborts the query with
/// [`DbError::ResourceExhausted`], [`DbError::DeadlineExceeded`], or
/// [`DbError::Cancelled`] instead of exhausting memory or hanging.
#[derive(Debug, Clone, Default)]
pub struct ExecLimits {
    /// Cap on rows materialized into a query result.
    pub max_rows: Option<usize>,
    /// Cap on rows buffered inside any single materializing operator
    /// (sort buffers, hash-join build sides, nested-loop inner rows,
    /// aggregate groups, DISTINCT sets).
    pub max_intermediate_rows: Option<usize>,
    /// Wall-clock deadline for the whole execution; polled inside every
    /// blocking operator loop.
    pub deadline: Option<Deadline>,
    /// Cooperative cancellation flag; polled alongside the deadline.
    pub cancel: Option<CancelToken>,
}

impl ExecLimits {
    /// These limits with a deadline `ms` milliseconds from now.
    pub fn with_timeout_ms(mut self, ms: u64) -> ExecLimits {
        self.deadline = Some(Deadline::after_millis(ms));
        self
    }

    /// These limits observing `token` for cancellation.
    pub fn with_cancel(mut self, token: &CancelToken) -> ExecLimits {
        self.cancel = Some(token.clone());
        self
    }

    /// Unstrided cancel/deadline check for phase boundaries (commit,
    /// bulk-insert batches, translate/publish steps). `op` names the
    /// phase in the resulting error. Operator loops use the strided
    /// [`Meter::poll`] instead.
    pub fn poll(&self, op: &str) -> Result<()> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(cancel_trip(op));
            }
        }
        if let Some(d) = &self.deadline {
            if d.expired() {
                return Err(deadline_trip(op));
            }
        }
        Ok(())
    }
}

/// Build the [`DbError::Cancelled`] for `op` and bump the trip counter.
pub(crate) fn cancel_trip(op: &str) -> DbError {
    xmlrel_obs::metrics::counter_inc("queries_cancelled_total");
    DbError::Cancelled(format!("{op} observed cancellation"))
}

/// Build the [`DbError::DeadlineExceeded`] for `op` and bump the trip
/// counter.
pub(crate) fn deadline_trip(op: &str) -> DbError {
    xmlrel_obs::metrics::counter_inc("queries_timed_out_total");
    DbError::DeadlineExceeded(format!("{op} exceeded the query deadline"))
}

/// Build an executor tree for a physical plan over a catalog, with no
/// resource limits.
pub fn build_executor<'a>(
    plan: &'a PhysicalPlan,
    catalog: &'a Catalog,
) -> Result<Box<dyn Executor + 'a>> {
    build_executor_limited(plan, catalog, &ExecLimits::default())
}

/// Build an executor tree enforcing `limits` on materializing operators.
pub fn build_executor_limited<'a>(
    plan: &'a PhysicalPlan,
    catalog: &'a Catalog,
    limits: &ExecLimits,
) -> Result<Box<dyn Executor + 'a>> {
    Ok(build_node(plan, catalog, limits, None)?.0)
}

/// Build a *profiled* executor tree: every operator is wrapped with a
/// rows/wall-time recorder and metered for probes, comparisons, and buffer
/// bytes. The returned [`ProfileHandle`] snapshots into an
/// [`ExecProfile`] once (or while) the executor runs; its estimates come
/// from the same cost model as `EXPLAIN`.
pub fn build_executor_profiled<'a>(
    plan: &'a PhysicalPlan,
    catalog: &'a Catalog,
    limits: &ExecLimits,
) -> Result<(Box<dyn Executor + 'a>, ProfileHandle)> {
    let report = report_physical(catalog, plan);
    let (exec, handle) = build_node(plan, catalog, limits, Some(&report.root))?;
    let handle = handle
        .ok_or_else(|| DbError::Runtime("profiled build produced no profile handle".into()))?;
    Ok((exec, handle))
}

/// Recursive builder shared by the plain and profiled paths. When `cost`
/// is present the node is profiled, using the cost node's label and
/// estimated cardinality (the cost tree mirrors the plan tree exactly).
fn build_node<'a>(
    plan: &'a PhysicalPlan,
    catalog: &'a Catalog,
    limits: &ExecLimits,
    cost: Option<&CostNode>,
) -> Result<(Box<dyn Executor + 'a>, Option<ProfileHandle>)> {
    let meter = Meter::new(limits, cost.is_some());
    let mut kids: Vec<ProfileHandle> = Vec::new();
    let mut next_child = 0usize;
    let exec: Box<dyn Executor + 'a> = {
        let kids = &mut kids;
        let next_child = &mut next_child;
        let mut build = move |p: &'a PhysicalPlan| -> Result<Box<dyn Executor + 'a>> {
            let child_cost = cost.and_then(|c| c.children.get(*next_child));
            *next_child += 1;
            let (e, h) = build_node(p, catalog, limits, child_cost)?;
            if let Some(h) = h {
                kids.push(h);
            }
            Ok(e)
        };
        match plan {
            PhysicalPlan::SeqScan { table } => {
                let t = catalog.table(table)?;
                Box::new(SeqScanExec {
                    iter: Box::new(t.scan().map(|(_, r)| r)),
                    meter: meter.clone(),
                })
            }
            PhysicalPlan::IndexScan {
                table,
                index,
                lower,
                upper,
                residual,
            } => {
                let t = catalog.table(table)?;
                let idx = t
                    .indexes
                    .iter()
                    .find(|i| i.name == *index)
                    .ok_or_else(|| DbError::Binding(format!("no index {index:?}")))?;
                // The tree keys are composite; bound on the leading column only.
                let to_key = |b: &Bound<Value>, lower_side: bool| -> Bound<Vec<Value>> {
                    match b {
                        Bound::Unbounded => Bound::Unbounded,
                        Bound::Included(v) => {
                            if lower_side {
                                Bound::Included(vec![v.clone()])
                            } else {
                                // Inclusive upper on a composite prefix: extend
                                // with a maximal sentinel so all suffixes match.
                                Bound::Included(max_key_after(v.clone(), idx.columns.len()))
                            }
                        }
                        Bound::Excluded(v) => {
                            if lower_side {
                                Bound::Excluded(max_key_after(v.clone(), idx.columns.len()))
                            } else {
                                Bound::Excluded(vec![v.clone()])
                            }
                        }
                    }
                };
                let lo = to_key(lower, true);
                let hi = to_key(upper, false);
                let mut rids = Vec::new();
                meter.probe();
                for (_, postings) in idx.tree.range(bound_ref(&lo), bound_ref(&hi)) {
                    rids.extend_from_slice(postings);
                }
                meter.buffered_bytes(rids.len() as u64 * 8);
                Box::new(IndexScanExec {
                    table: t,
                    rids,
                    pos: 0,
                    residual: residual.as_ref(),
                    meter: meter.clone(),
                })
            }
            PhysicalPlan::Filter { input, predicate } => Box::new(FilterExec {
                input: build(input)?,
                predicate,
                meter: meter.clone(),
            }),
            PhysicalPlan::Project { input, exprs } => Box::new(ProjectExec {
                input: build(input)?,
                exprs,
            }),
            PhysicalPlan::HashJoin {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
                right_arity,
            } => Box::new(HashJoinExec::new(
                build(left)?,
                build(right)?,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                *right_arity,
                meter.clone(),
            )),
            PhysicalPlan::IndexNestedLoopJoin {
                left,
                table,
                index,
                left_key,
                right_filter,
                residual,
                kind,
                right_arity,
            } => {
                let t = catalog.table(table)?;
                let idx = t
                    .indexes
                    .iter()
                    .find(|i| i.name == *index)
                    .ok_or_else(|| DbError::Binding(format!("no index {index:?}")))?;
                Box::new(IndexNestedLoopJoinExec::new(
                    build(left)?,
                    t,
                    idx,
                    left_key,
                    right_filter.as_ref(),
                    residual.as_ref(),
                    *kind,
                    *right_arity,
                    meter.clone(),
                ))
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
                right_arity,
            } => Box::new(NestedLoopJoinExec::new(
                build(left)?,
                build(right)?,
                *kind,
                on.as_ref(),
                *right_arity,
                meter.clone(),
            )),
            PhysicalPlan::IntervalJoin {
                left,
                right,
                right_key,
                lo,
                hi,
                lo_strict,
                hi_strict,
                residual,
            } => Box::new(IntervalJoinExec::new(
                build(left)?,
                build(right)?,
                *right_key,
                lo,
                hi,
                *lo_strict,
                *hi_strict,
                residual.as_ref(),
                meter.clone(),
            )),
            PhysicalPlan::Sort { input, keys } => Box::new(SortExec {
                input: Some(build(input)?),
                keys,
                sorted: Vec::new(),
                pos: 0,
                meter: meter.clone(),
            }),
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
            } => Box::new(HashAggregateExec::new(
                build(input)?,
                group_by,
                aggs,
                meter.clone(),
            )),
            PhysicalPlan::Limit {
                input,
                limit,
                offset,
            } => Box::new(LimitExec {
                input: build(input)?,
                remaining: limit.map(|l| l as usize),
                to_skip: *offset as usize,
            }),
            PhysicalPlan::Distinct { input } => Box::new(DistinctExec {
                input: build(input)?,
                seen: std::collections::HashSet::new(),
                meter: meter.clone(),
            }),
            PhysicalPlan::UnionAll { inputs } => {
                let mut execs = Vec::new();
                for i in inputs {
                    execs.push(build(i)?);
                }
                execs.reverse();
                Box::new(UnionAllExec {
                    pending: execs,
                    current: None,
                    meter: meter.clone(),
                })
            }
            PhysicalPlan::Values { rows } => Box::new(ValuesExec { rows, pos: 0 }),
        }
    };
    match cost {
        None => Ok((exec, None)),
        Some(c) => {
            let cell = meter
                .cell()
                .ok_or_else(|| DbError::Runtime("profiled meter has no cell".into()))?;
            let exec: Box<dyn Executor + 'a> = Box::new(ProfiledExec {
                inner: exec,
                cell: cell.clone(),
            });
            Ok((
                exec,
                Some(ProfileHandle {
                    label: c.label.clone(),
                    est_rows: c.cost.rows,
                    cell,
                    children: kids,
                }),
            ))
        }
    }
}

fn bound_ref(b: &Bound<Vec<Value>>) -> Bound<&Vec<Value>> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

/// A composite key that sorts after every key starting with `v` when the
/// index has `arity` columns: `[v, Text(max), Text(max), ...]`.
fn max_key_after(v: Value, arity: usize) -> Vec<Value> {
    let mut key = vec![v];
    for _ in 1..arity {
        key.push(Value::Text("\u{10FFFF}\u{10FFFF}".into()));
    }
    key
}

/// Run a plan to completion, materializing all rows, with no limits.
pub fn run_to_vec(plan: &PhysicalPlan, catalog: &Catalog) -> Result<Vec<Row>> {
    run_to_vec_limited(plan, catalog, &ExecLimits::default())
}

/// Fail the result materialization once it exceeds `max_rows`.
fn admit_result(limits: &ExecLimits, len: usize) -> Result<()> {
    match limits.max_rows {
        Some(max) if len > max => {
            xmlrel_obs::metrics::counter_inc("exec_limit_trips_total");
            Err(DbError::ResourceExhausted(format!(
                "result materialization produced {len} rows, exceeding max_rows = {max}"
            )))
        }
        _ => Ok(()),
    }
}

/// Run a plan to completion enforcing `limits`; the materialized result
/// itself is capped by `limits.max_rows`.
pub fn run_to_vec_limited(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    limits: &ExecLimits,
) -> Result<Vec<Row>> {
    let mut exec = build_executor_limited(plan, catalog, limits)?;
    let root = Meter::new(limits, false);
    let mut out = Vec::new();
    while let Some(row) = exec.next()? {
        root.poll("result materialization")?;
        out.push(row);
        admit_result(limits, out.len())?;
    }
    Ok(out)
}

/// The outcome of a profiled run: the rows (or the error that stopped
/// them) plus the [`ExecProfile`] of whatever work was done. The profile
/// survives failures deliberately — a limit trip is exactly when you want
/// to see which operator was doing what.
pub struct ProfiledRun {
    /// Materialized rows, or the execution error.
    pub rows: Result<Vec<Row>>,
    /// Runtime profile of the (possibly partial) execution.
    pub profile: ExecProfile,
}

/// Run a plan to completion with profiling enabled. The outer `Result`
/// fails only when the executor cannot be *built* (e.g. a missing index);
/// execution errors are reported inside [`ProfiledRun::rows`] so the
/// profile is still available.
pub fn run_profiled(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    limits: &ExecLimits,
) -> Result<ProfiledRun> {
    let (mut exec, handle) = build_executor_profiled(plan, catalog, limits)?;
    let root = Meter::new(limits, false);
    let mut out = Vec::new();
    let rows = loop {
        match exec.next() {
            Err(e) => break Err(e),
            Ok(None) => break Ok(std::mem::take(&mut out)),
            Ok(Some(row)) => {
                if let Err(e) = root.poll("result materialization") {
                    break Err(e);
                }
                out.push(row);
                if let Err(e) = admit_result(limits, out.len()) {
                    break Err(e);
                }
            }
        }
    };
    drop(exec);
    Ok(ProfiledRun {
        rows,
        profile: handle.snapshot(),
    })
}

// ---- leaf and unary operators --------------------------------------------

struct SeqScanExec<'a> {
    iter: Box<dyn Iterator<Item = &'a Row> + 'a>,
    meter: Meter,
}

impl Executor for SeqScanExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        self.meter.poll("SeqScan")?;
        Ok(self.iter.next().cloned())
    }
}

struct IndexScanExec<'a> {
    table: &'a crate::table::Table,
    rids: Vec<usize>,
    pos: usize,
    residual: Option<&'a ScalarExpr>,
    meter: Meter,
}

impl Executor for IndexScanExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        while self.pos < self.rids.len() {
            self.meter.poll("IndexScan")?;
            let rid = self.rids[self.pos];
            self.pos += 1;
            let Some(row) = self.table.get(rid) else {
                continue;
            };
            if let Some(res) = self.residual {
                self.meter.comparisons(1);
                if value_to_bool(&res.eval(row)?) != Some(true) {
                    continue;
                }
            }
            return Ok(Some(row.clone()));
        }
        Ok(None)
    }
}

struct FilterExec<'a> {
    input: Box<dyn Executor + 'a>,
    predicate: &'a ScalarExpr,
    meter: Meter,
}

impl Executor for FilterExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            self.meter.poll("Filter")?;
            self.meter.comparisons(1);
            if value_to_bool(&self.predicate.eval(&row)?) == Some(true) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectExec<'a> {
    input: Box<dyn Executor + 'a>,
    exprs: &'a [ScalarExpr],
}

impl Executor for ProjectExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in self.exprs {
                    out.push(e.eval(&row)?);
                }
                Ok(Some(out))
            }
        }
    }
}

struct SortExec<'a> {
    input: Option<Box<dyn Executor + 'a>>,
    keys: &'a [(ScalarExpr, bool)],
    sorted: Vec<Row>,
    pos: usize,
    meter: Meter,
}

impl Executor for SortExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let mut rows: Vec<(Vec<Value>, Row)> = Vec::new();
            while let Some(row) = input.next()? {
                self.meter.poll("Sort")?;
                let mut key = Vec::with_capacity(self.keys.len());
                for (e, _) in self.keys {
                    key.push(e.eval(&row)?);
                }
                self.meter.buffered_row(&row);
                rows.push((key, row));
                self.meter.admit("Sort", rows.len())?;
            }
            let keys = self.keys;
            let mut comparisons = 0u64;
            rows.sort_by(|(ka, _), (kb, _)| {
                comparisons += 1;
                for (i, (_, asc)) in keys.iter().enumerate() {
                    let ord = ka[i].cmp(&kb[i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.meter.comparisons(comparisons);
            self.sorted = rows.into_iter().map(|(_, r)| r).collect();
        }
        if self.pos < self.sorted.len() {
            let r = std::mem::take(&mut self.sorted[self.pos]);
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

struct LimitExec<'a> {
    input: Box<dyn Executor + 'a>,
    remaining: Option<usize>,
    to_skip: usize,
}

impl Executor for LimitExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        while self.to_skip > 0 {
            if self.input.next()?.is_none() {
                return Ok(None);
            }
            self.to_skip -= 1;
        }
        if let Some(rem) = &mut self.remaining {
            if *rem == 0 {
                return Ok(None);
            }
            *rem -= 1;
        }
        self.input.next()
    }
}

struct DistinctExec<'a> {
    input: Box<dyn Executor + 'a>,
    seen: std::collections::HashSet<Row>,
    meter: Meter,
}

impl Executor for DistinctExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            self.meter.poll("Distinct")?;
            self.meter.probe();
            if self.seen.insert(row.clone()) {
                self.meter.buffered_row(&row);
                self.meter.admit("Distinct", self.seen.len())?;
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct UnionAllExec<'a> {
    /// Remaining inputs in reverse order (pop from the back).
    pending: Vec<Box<dyn Executor + 'a>>,
    current: Option<Box<dyn Executor + 'a>>,
    meter: Meter,
}

impl Executor for UnionAllExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            self.meter.poll("UnionAll")?;
            if let Some(cur) = &mut self.current {
                if let Some(row) = cur.next()? {
                    return Ok(Some(row));
                }
                self.current = None;
            }
            match self.pending.pop() {
                Some(next) => self.current = Some(next),
                None => return Ok(None),
            }
        }
    }
}

struct ValuesExec<'a> {
    rows: &'a [Vec<ScalarExpr>],
    pos: usize,
}

impl Executor for ValuesExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let exprs = &self.rows[self.pos];
        self.pos += 1;
        let empty: Row = Vec::new();
        let mut out = Vec::with_capacity(exprs.len());
        for e in exprs {
            out.push(e.eval(&empty)?);
        }
        Ok(Some(out))
    }
}
