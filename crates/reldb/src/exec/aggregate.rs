//! Hash aggregation.

use std::collections::HashMap;

use crate::error::{DbError, Result};
use crate::exec::{Executor, Meter};
use crate::plan::expr::{AggFunc, ScalarExpr};
use crate::value::{Row, Value};

/// Accumulator for one aggregate over one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum { acc: Option<Value>, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count | AggFunc::CountStar => AggState::Count(0),
            AggFunc::Sum | AggFunc::Avg => AggState::Sum {
                acc: None,
                count: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None for "no argument": always counts.
                // COUNT(e) gets Some(v): counts non-NULL.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum { acc, count } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *count += 1;
                        *acc = Some(match acc.take() {
                            None => val,
                            Some(prev) => add(prev, val)?,
                        });
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().map(|c| val < *c).unwrap_or(true) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().map(|c| val > *c).unwrap_or(true) {
                        *cur = Some(val);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self, func: AggFunc) -> Value {
        match (func, self) {
            (AggFunc::Count | AggFunc::CountStar, AggState::Count(n)) => Value::Int(n),
            (AggFunc::Sum, AggState::Sum { acc, .. }) => acc.unwrap_or(Value::Null),
            (AggFunc::Avg, AggState::Sum { acc, count }) => match acc {
                Some(v) if count > 0 => Value::Float(v.as_float().unwrap_or(0.0) / count as f64),
                _ => Value::Null,
            },
            (AggFunc::Min, AggState::Min(v)) | (AggFunc::Max, AggState::Max(v)) => {
                v.unwrap_or(Value::Null)
            }
            _ => Value::Null,
        }
    }
}

fn add(a: Value, b: Value) -> Result<Value> {
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
        _ => {
            let x = a
                .as_float()
                .ok_or_else(|| DbError::Type(format!("SUM over non-number {a}")))?;
            let y = b
                .as_float()
                .ok_or_else(|| DbError::Type(format!("SUM over non-number {b}")))?;
            Ok(Value::Float(x + y))
        }
    }
}

/// Hash-aggregate operator: consumes its input at first `next()`.
pub struct HashAggregateExec<'a> {
    input: Option<Box<dyn Executor + 'a>>,
    group_by: &'a [ScalarExpr],
    aggs: &'a [(AggFunc, Option<ScalarExpr>)],
    output: Vec<Row>,
    pos: usize,
    meter: Meter,
}

impl<'a> HashAggregateExec<'a> {
    /// Create the operator. `meter` carries the intermediate-row cap
    /// bounding the number of distinct groups.
    pub fn new(
        input: Box<dyn Executor + 'a>,
        group_by: &'a [ScalarExpr],
        aggs: &'a [(AggFunc, Option<ScalarExpr>)],
        meter: Meter,
    ) -> HashAggregateExec<'a> {
        HashAggregateExec {
            input: Some(input),
            group_by,
            aggs,
            output: Vec::new(),
            pos: 0,
            meter,
        }
    }

    fn consume(&mut self) -> Result<()> {
        let Some(mut input) = self.input.take() else {
            return Ok(());
        };
        // Group order = first-seen order (deterministic given the input).
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        while let Some(row) = input.next()? {
            self.meter.poll("HashAggregate")?;
            let mut key = Vec::with_capacity(self.group_by.len());
            for g in self.group_by {
                key.push(g.eval(&row)?);
            }
            self.meter.probe();
            let states = match groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    self.meter.buffered_row(&key);
                    order.push(key.clone());
                    self.meter.admit("HashAggregate groups", order.len())?;
                    groups.entry(key.clone()).or_insert_with(|| {
                        self.aggs.iter().map(|(f, _)| AggState::new(*f)).collect()
                    })
                }
            };
            for (i, (_, arg)) in self.aggs.iter().enumerate() {
                let v = match arg {
                    Some(e) => Some(e.eval(&row)?),
                    None => None,
                };
                states[i].update(v)?;
            }
        }
        // Global aggregate over an empty input still emits one row.
        if groups.is_empty() && self.group_by.is_empty() {
            let row: Row = self
                .aggs
                .iter()
                .map(|(f, _)| AggState::new(*f).finish(*f))
                .collect();
            self.output.push(row);
            return Ok(());
        }
        for key in order {
            let states = groups.remove(&key).ok_or_else(|| {
                DbError::Runtime("aggregate group vanished between passes".into())
            })?;
            let mut row = key;
            for (state, (f, _)) in states.into_iter().zip(self.aggs) {
                row.push(state.finish(*f));
            }
            self.output.push(row);
        }
        Ok(())
    }
}

impl Executor for HashAggregateExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.input.is_some() {
            self.consume()?;
        }
        if self.pos < self.output.len() {
            let r = std::mem::take(&mut self.output[self.pos]);
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}
