//! Per-operator runtime statistics.
//!
//! A profiled execution wraps every operator in the tree with a thin
//! [`Executor`] shim that counts produced rows and inclusive wall time,
//! while the operators themselves report work-specific counters — index
//! probes, predicate comparisons, buffered bytes — through a [`Meter`].
//! After the run, [`ProfileHandle::snapshot`] freezes the counters into an
//! [`ExecProfile`] tree mirroring the plan shape, each node annotated with
//! the optimizer's *estimated* cardinality so estimated-vs-actual (and the
//! q-error of the PR-3 cost model) can be rendered side by side.
//!
//! Counters live in `Arc<Mutex<…>>` cells shared between the wrapper and
//! the operator, so a profiled executor tree — and the [`ProfileHandle`]
//! observing it — is `Send + Sync` and can run on any serving thread.
//! Profiling is opt-in per query and each cell is touched by exactly one
//! executor thread, so the mutexes are uncontended in practice; they exist
//! to make the sharing sound, not to coordinate.

use std::sync::atomic::{AtomicU64, Ordering};
// Per-operator stats cells are touched on a POLL_STRIDE hot path by
// exactly one thread; timed-wrapper bookkeeping would distort the very
// numbers these cells exist to measure, so they stay raw.
// lint:allow(no-untimed-lock): uncontended per-operator hot cells
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::error::{DbError, Result};
use crate::exec::{cancel_trip, deadline_trip, CancelToken, Deadline, ExecLimits, Executor};
use crate::value::{Row, Value};

/// How many [`Meter::poll`] calls elapse between wall-clock reads. The
/// cancel flag (an atomic load) is checked on every call; `Instant::now`
/// only every `POLL_STRIDE`-th call, starting with the first, so a
/// pre-expired deadline trips on the first row and a live one costs one
/// clock read per stride of rows.
const POLL_STRIDE: u64 = 64;

/// Counters recorded by one operator during one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows this operator produced.
    pub rows_out: u64,
    /// Index/hash-table lookups performed (one per descent or probe).
    pub probes: u64,
    /// Predicate/key comparisons evaluated.
    pub comparisons: u64,
    /// Bytes buffered in sort/build/materialization buffers (data bytes:
    /// eight per value plus text payload, so the number is
    /// platform-independent).
    pub buffered_bytes: u64,
    /// Inclusive wall time spent inside this subtree, in nanoseconds.
    pub wall_nanos: u64,
    /// Set when an [`ExecLimits`](crate::exec::ExecLimits) cap fired in
    /// this operator: the full diagnostic (operator, limit, observed size).
    pub limit_trip: Option<String>,
}

/// Approximate data footprint of a buffered row: eight bytes per value
/// plus text payload. Deliberately ignores allocator overhead and enum
/// layout so profiles compare across platforms.
pub fn row_data_bytes(row: &Row) -> u64 {
    row.iter()
        .map(|v| {
            8 + match v {
                Value::Text(s) => s.len() as u64,
                _ => 0,
            }
        })
        .sum()
}

/// The shared counter cell behind one profiled operator.
pub(crate) type StatsCell = Arc<Mutex<OpStats>>; // lint:allow(no-untimed-lock): uncontended hot cell

/// Lock a stats cell, recovering from poisoning: the counters are plain
/// data, so a panic mid-update leaves them merely stale, never invalid.
// lint:allow(no-untimed-lock): same uncontended per-operator cell as above
fn stats(cell: &Mutex<OpStats>) -> MutexGuard<'_, OpStats> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A per-operator instrument handed to executors at build time. Carries
/// the `max_intermediate_rows` cap, the deadline, and the cancel token so
/// limit/deadline trips are attributed to the operator that fired them;
/// counter updates are no-ops when the operator is not being profiled.
#[derive(Default)]
pub struct Meter {
    cap: Option<usize>,
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
    tick: AtomicU64,
    cell: Option<StatsCell>,
}

impl Clone for Meter {
    fn clone(&self) -> Meter {
        Meter {
            cap: self.cap,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            tick: AtomicU64::new(self.tick.load(Ordering::Relaxed)),
            cell: self.cell.clone(),
        }
    }
}

impl Meter {
    /// A meter enforcing `limits`; records counters only when `profiled`.
    pub fn new(limits: &ExecLimits, profiled: bool) -> Meter {
        Meter {
            cap: limits.max_intermediate_rows,
            deadline: limits.deadline,
            cancel: limits.cancel.clone(),
            tick: AtomicU64::new(0),
            cell: profiled.then(StatsCell::default),
        }
    }

    /// Cooperative cancellation/deadline check for blocking operator
    /// loops. Fails with [`DbError::Cancelled`] when the query's
    /// [`CancelToken`] has tripped, and with [`DbError::DeadlineExceeded`]
    /// once the wall-clock deadline passes (checked every
    /// `POLL_STRIDE`-th call to keep the hot loop cheap). The diagnostic
    /// names `op` and is recorded into the profile when one is being
    /// collected.
    pub fn poll(&self, op: &str) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.record_trip(cancel_trip(op)));
            }
        }
        if let Some(d) = &self.deadline {
            let t = self.tick.fetch_add(1, Ordering::Relaxed);
            if t.is_multiple_of(POLL_STRIDE) && d.expired() {
                return Err(self.record_trip(deadline_trip(op)));
            }
        }
        Ok(())
    }

    /// Record a trip diagnostic into the profile cell, pass the error on.
    fn record_trip(&self, err: DbError) -> DbError {
        if let Some(c) = &self.cell {
            stats(c).limit_trip = Some(err.to_string());
        }
        err
    }

    pub(crate) fn cell(&self) -> Option<StatsCell> {
        self.cell.clone()
    }

    /// Count one index/hash probe.
    pub fn probe(&self) {
        if let Some(c) = &self.cell {
            stats(c).probes += 1;
        }
    }

    /// Count `n` predicate/key comparisons.
    pub fn comparisons(&self, n: u64) {
        if let Some(c) = &self.cell {
            stats(c).comparisons += n;
        }
    }

    /// Account a row entering a materialization buffer.
    pub fn buffered_row(&self, row: &Row) {
        if let Some(c) = &self.cell {
            stats(c).buffered_bytes += row_data_bytes(row);
        }
    }

    /// Account raw buffered bytes (e.g. an index scan's rid list).
    pub fn buffered_bytes(&self, n: u64) {
        if let Some(c) = &self.cell {
            stats(c).buffered_bytes += n;
        }
    }

    /// Fail with [`DbError::ResourceExhausted`] once `op`'s buffer holds
    /// more than the configured `max_intermediate_rows`. The diagnostic
    /// names the operator and the limit that fired, and is also recorded
    /// into the profile when one is being collected.
    pub fn admit(&self, op: &str, len: usize) -> Result<()> {
        match self.cap {
            Some(max) if len > max => {
                let msg =
                    format!("{op} buffered {len} rows, exceeding max_intermediate_rows = {max}");
                if let Some(c) = &self.cell {
                    stats(c).limit_trip = Some(msg.clone());
                }
                xmlrel_obs::metrics::counter_inc("exec_limit_trips_total");
                Err(DbError::ResourceExhausted(msg))
            }
            _ => Ok(()),
        }
    }
}

/// Wrapper measuring rows-out and inclusive wall time of one operator.
pub(crate) struct ProfiledExec<'a> {
    pub(crate) inner: Box<dyn Executor + 'a>,
    pub(crate) cell: StatsCell,
}

impl Executor for ProfiledExec<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        let start = Instant::now();
        let result = self.inner.next();
        let mut s = stats(&self.cell);
        s.wall_nanos += start.elapsed().as_nanos() as u64;
        if matches!(result, Ok(Some(_))) {
            s.rows_out += 1;
        }
        result
    }
}

/// Live handle onto one profiled operator (and its children), produced by
/// [`build_executor_profiled`](crate::exec::build_executor_profiled).
/// Counters keep updating while the executor runs; [`snapshot`] freezes
/// them.
///
/// [`snapshot`]: ProfileHandle::snapshot
pub struct ProfileHandle {
    pub(crate) label: String,
    pub(crate) est_rows: f64,
    pub(crate) cell: StatsCell,
    pub(crate) children: Vec<ProfileHandle>,
}

impl ProfileHandle {
    /// Freeze the counters into an owned [`ExecProfile`] tree.
    pub fn snapshot(&self) -> ExecProfile {
        let children: Vec<ExecProfile> = self.children.iter().map(|c| c.snapshot()).collect();
        let rows_in = children.iter().map(|c| c.stats.rows_out).sum();
        ExecProfile {
            label: self.label.clone(),
            est_rows: self.est_rows,
            rows_in,
            stats: stats(&self.cell).clone(),
            children,
        }
    }
}

/// What one operator actually did, with the optimizer's estimate alongside:
/// one node per physical operator, tree shape identical to the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Operator label, identical to the cost report's (`SeqScan elem`,
    /// `HashJoin Inner keys=1`, …).
    pub label: String,
    /// The cost model's estimated output cardinality for this node.
    pub est_rows: f64,
    /// Rows consumed from child operators (sum of children's `rows_out`).
    pub rows_in: u64,
    /// Runtime counters.
    pub stats: OpStats,
    /// Child profiles in plan order.
    pub children: Vec<ExecProfile>,
}

/// Aggregated counters over a whole profile tree (for bench rollups).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileRollup {
    /// Number of operators in the plan.
    pub operators: u64,
    /// Rows produced by the root.
    pub root_rows: u64,
    /// Total probes across all operators.
    pub probes: u64,
    /// Total comparisons across all operators.
    pub comparisons: u64,
    /// Total buffered bytes across all operators.
    pub buffered_bytes: u64,
    /// Largest per-node q-error (estimated vs. actual cardinality).
    pub max_q_error: f64,
}

impl ExecProfile {
    /// The q-error of this node: `max(est/actual, actual/est)`, both sides
    /// floored at one row so empty results don't divide by zero. 1.0 is a
    /// perfect estimate.
    pub fn q_error(&self) -> f64 {
        let est = self.est_rows.max(1.0);
        let actual = (self.stats.rows_out as f64).max(1.0);
        (est / actual).max(actual / est)
    }

    /// q-errors of every node in the tree, pre-order.
    pub fn q_errors(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.visit(&mut |n| out.push(n.q_error()));
        out
    }

    /// `(median, max)` q-error over the tree.
    pub fn q_error_summary(&self) -> (f64, f64) {
        let mut errs = self.q_errors();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = errs[errs.len() / 2];
        let max = errs.last().copied().unwrap_or(1.0);
        (median, max)
    }

    /// Visit every node, pre-order.
    pub fn visit<F: FnMut(&ExecProfile)>(&self, f: &mut F) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Sum the counters over the whole tree.
    pub fn rollup(&self) -> ProfileRollup {
        let mut r = ProfileRollup {
            root_rows: self.stats.rows_out,
            max_q_error: 1.0,
            ..ProfileRollup::default()
        };
        self.visit(&mut |n| {
            r.operators += 1;
            r.probes += n.stats.probes;
            r.comparisons += n.stats.comparisons;
            r.buffered_bytes += n.stats.buffered_bytes;
            r.max_q_error = r.max_q_error.max(n.q_error());
        });
        r
    }

    /// Any limit-trip diagnostic recorded in the tree (the first, if any).
    pub fn limit_trip(&self) -> Option<String> {
        let mut found = None;
        self.visit(&mut |n| {
            if found.is_none() {
                found.clone_from(&n.stats.limit_trip);
            }
        });
        found
    }

    /// Render the tree with estimated vs. actual per operator, plus a
    /// closing q-error summary line. `with_time` includes per-node wall
    /// time; disable it for deterministic (golden) output.
    pub fn render(&self, with_time: bool) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, with_time);
        let (median, max) = self.q_error_summary();
        out.push_str(&format!(
            "q-error: median={median:.2} max={max:.2} over {} operators\n",
            self.q_errors().len()
        ));
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, with_time: bool) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{}  (est={} act={} in={} probes={} cmp={} buf={}B",
            self.label,
            fmt_est(self.est_rows),
            self.stats.rows_out,
            self.rows_in,
            self.stats.probes,
            self.stats.comparisons,
            self.stats.buffered_bytes
        ));
        if with_time {
            out.push_str(&format!(
                " time={:.3}ms",
                self.stats.wall_nanos as f64 / 1_000_000.0
            ));
        }
        out.push(')');
        if let Some(trip) = &self.stats.limit_trip {
            out.push_str(&format!(" !limit: {trip}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1, with_time);
        }
    }
}

/// Estimates render like the cost report: rounded to a whole row.
fn fmt_est(v: f64) -> String {
    format!("{:.0}", v.max(0.0))
}
