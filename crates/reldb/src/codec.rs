//! Byte-level encoding shared by the WAL and snapshot formats.
//!
//! Little-endian fixed-width integers, length-prefixed strings, tagged
//! values. Every decode path returns [`DbError::Corrupt`] instead of
//! panicking — recovery code relies on this to detect torn or damaged
//! records and stop cleanly.

use crate::error::{DbError, Result};
use crate::schema::{Column, Schema};
use crate::value::{DataType, Row, Value};

// ---- CRC32 (IEEE 802.3) ----------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC32 checksum of `data` (IEEE polynomial, as used by zip/png).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- writing ---------------------------------------------------------------

/// Bounds-check a length before narrowing it to the u32 wire width.
///
/// Lengths beyond `u32::MAX` cannot be represented in the frame format;
/// encoding them with `as` would silently truncate and produce a frame
/// that decodes to the wrong shape (or fails CRC-valid decode later).
pub(crate) fn len_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| {
        DbError::ResourceExhausted(format!(
            "{what} length {n} exceeds the u32 wire format limit"
        ))
    })
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    put_u32(out, len_u32(s.len(), "string")?);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_u8(out, *b as u8);
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 3);
            put_f64(out, *f);
        }
        Value::Text(s) => {
            put_u8(out, 4);
            put_str(out, s)?;
        }
    }
    Ok(())
}

pub(crate) fn put_row(out: &mut Vec<u8>, row: &Row) -> Result<()> {
    put_u32(out, len_u32(row.len(), "row")?);
    for v in row {
        put_value(out, v)?;
    }
    Ok(())
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) -> Result<()> {
    put_u32(out, len_u32(schema.columns.len(), "schema")?);
    for c in &schema.columns {
        put_str(out, &c.name)?;
        put_u8(
            out,
            match c.ty {
                DataType::Int => 0,
                DataType::Float => 1,
                DataType::Text => 2,
                DataType::Bool => 3,
            },
        );
        put_u8(out, c.nullable as u8);
    }
    Ok(())
}

// ---- reading ---------------------------------------------------------------

/// A bounds-checked cursor over a byte buffer.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> DbError {
    DbError::Corrupt(format!("truncated or malformed {what}"))
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        let b = self.take(1, "u8")?;
        b.first().copied().ok_or_else(|| corrupt("u8"))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(
            b.try_into().map_err(|_| corrupt("u32"))?,
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(
            b.try_into().map_err(|_| corrupt("u64"))?,
        ))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        // A length beyond the buffer means a torn/corrupt record.
        let b = self.take(len, "string")?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt("utf-8 string"))
    }

    pub(crate) fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Text(self.str()?),
            t => return Err(DbError::Corrupt(format!("unknown value tag {t}"))),
        })
    }

    pub(crate) fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            // Each value takes at least one byte; reject absurd counts
            // before allocating.
            return Err(corrupt("row"));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    pub(crate) fn schema(&mut self) -> Result<Schema> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(corrupt("schema"));
        }
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.str()?;
            let ty = match self.u8()? {
                0 => DataType::Int,
                1 => DataType::Float,
                2 => DataType::Text,
                3 => DataType::Bool,
                t => return Err(DbError::Corrupt(format!("unknown type tag {t}"))),
            };
            let nullable = self.u8()? != 0;
            cols.push(Column { name, ty, nullable });
        }
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC32("123456789") = 0xCBF43926 is the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.75),
            Value::text("héllo <xml>"),
        ];
        let mut buf = Vec::new();
        put_row(&mut buf, &vals).unwrap();
        let mut r = Reader::new(&buf);
        assert_eq!(r.row().unwrap(), vals);
        assert!(r.is_empty());
    }

    #[test]
    fn schema_round_trip() {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Float),
            Column::new("ok", DataType::Bool),
        ])
        .unwrap();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema).unwrap();
        assert_eq!(Reader::new(&buf).schema().unwrap(), schema);
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_row(&mut buf, &vec![Value::text("abcdefgh"), Value::Int(1)]).unwrap();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                matches!(r.row(), Err(DbError::Corrupt(_))),
                "cut at {cut} must be Corrupt"
            );
        }
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Reader::new(&buf).row().is_err());
        assert!(Reader::new(&buf).str().is_err());
    }
}
