//! Runtime values and column data types.

use std::cmp::Ordering;
use std::fmt;

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        })
    }
}

/// A runtime value.
///
/// `Value` has a *total* order (`NULL < BOOL < INT/FLOAT < TEXT`, floats via
/// `total_cmp`, ints and floats compared numerically within the numeric
/// class) so it can key B+-trees and sort operators directly. SQL
/// three-valued comparison semantics are layered on top in the expression
/// evaluator, not here.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
}

impl Value {
    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Convenience constructor from a &str.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Integer content, if the value is an INT.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text content, if the value is TEXT.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Float content, coercing INT.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean content, if the value is BOOL.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerce to `ty` when a lossless/natural conversion exists
    /// (INT→FLOAT, TEXT→INT/FLOAT parse, anything→TEXT); NULL passes through.
    pub fn coerce(self, ty: DataType) -> Option<Value> {
        match (&self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Text(_), DataType::Text)
            | (Value::Bool(_), DataType::Bool) => Some(self),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Some(Value::Int(*f as i64)),
            (Value::Text(s), DataType::Int) => s.trim().parse().ok().map(Value::Int),
            (Value::Text(s), DataType::Float) => s.trim().parse().ok().map(Value::Float),
            (v, DataType::Text) => Some(Value::Text(v.to_string())),
            _ => None,
        }
    }

    /// Class rank used by the total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// SQL comparison: `None` when either side is NULL, otherwise the
    /// numeric/text ordering. Cross-class non-numeric comparisons compare
    /// by class rank (deterministic, like SQLite's affinity fallback).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }
}

/// Checked row access: the value at `i`, or SQL NULL when the row is
/// narrower than expected. Result-decoding code uses this instead of `[]`
/// so a schema drift surfaces as NULL handling, never a panic.
pub fn row_val(row: &[Value], i: usize) -> &Value {
    const NULL: Value = Value::Null;
    row.get(i).unwrap_or(&NULL)
}

/// Checked accessor: the INT at column `i`, if present.
pub fn row_int(row: &[Value], i: usize) -> Option<i64> {
    row.get(i).and_then(Value::as_int)
}

/// Checked accessor: the TEXT at column `i`, if present.
pub fn row_text(row: &[Value], i: usize) -> Option<&str> {
    row.get(i).and_then(Value::as_text)
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash alike because they
            // compare equal; hash the float bit pattern of the value.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// A tuple of values.
pub type Row = Vec<Value>;

/// Approximate in-memory footprint of a value in bytes, used by storage
/// accounting (experiment E1).
pub fn value_size(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 1,
        Value::Int(_) => 8,
        Value::Float(_) => 8,
        Value::Text(s) => 16 + s.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_classes() {
        let mut vals = [
            Value::text("a"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::text("a"));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(2).coerce(DataType::Float),
            Some(Value::Float(2.0))
        );
        assert_eq!(
            Value::text("42").coerce(DataType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(Value::text("x").coerce(DataType::Int), None);
        assert_eq!(Value::Int(7).coerce(DataType::Text), Some(Value::text("7")));
        assert_eq!(Value::Null.coerce(DataType::Int), Some(Value::Null));
        assert_eq!(Value::Float(3.0).coerce(DataType::Int), Some(Value::Int(3)));
        assert_eq!(Value::Float(3.5).coerce(DataType::Int), None);
    }

    #[test]
    fn hash_consistent_with_eq_across_numeric_classes() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(5)), h(&Value::Float(5.0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }

    #[test]
    fn value_sizes() {
        assert_eq!(value_size(&Value::Int(1)), 8);
        assert_eq!(value_size(&Value::text("abcd")), 20);
    }
}
